//! Integration: every benchmark query parses, binds, plans, and returns
//! identical results across all execution modes and several join orders.

use rpt_core::{Database, Mode, QueryOptions};
use rpt_workloads::{dsb, job, tpcds, tpch, Workload};

fn database_for(w: &Workload) -> Database {
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }
    db
}

/// Floating-point sums differ in the last ulps across join orders
/// (summation order); compare with a relative tolerance.
fn rows_equalish(a: &[Vec<rpt_common::ScalarValue>], b: &[Vec<rpt_common::ScalarValue>]) -> bool {
    use rpt_common::ScalarValue::*;
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Float64(x), Float64(y)) => {
                        (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
                    }
                    _ => va == vb,
                })
        })
}

fn check_workload(w: &Workload) {
    let db = database_for(w);
    for q in &w.queries {
        let bound = db
            .bind_sql(&q.sql)
            .unwrap_or_else(|e| panic!("{} {}: bind failed: {e}", w.name, q.id));
        assert_eq!(
            bound.num_relations(),
            q.num_joins + 1,
            "{} {}: relation count",
            w.name,
            q.id
        );
        assert_eq!(
            bound.is_alpha_acyclic(),
            !q.cyclic,
            "{} {}: acyclicity flag mismatch",
            w.name,
            q.id
        );
        // Baseline is ground truth; every other mode must agree.
        let base = db
            .query(&q.sql, &QueryOptions::new(Mode::Baseline))
            .unwrap_or_else(|e| panic!("{} {}: baseline failed: {e}", w.name, q.id));
        for mode in [
            Mode::BloomJoin,
            Mode::PredicateTransfer,
            Mode::RobustPredicateTransfer,
            Mode::Yannakakis,
        ] {
            let r = db
                .query(&q.sql, &QueryOptions::new(mode))
                .unwrap_or_else(|e| panic!("{} {} {mode:?}: failed: {e}", w.name, q.id));
            assert!(
                rows_equalish(&r.sorted_rows(), &base.sorted_rows()),
                "{} {} {mode:?}: wrong result",
                w.name,
                q.id
            );
        }
    }
}

#[test]
fn tpch_all_queries_all_modes() {
    check_workload(&tpch(0.02, 11));
}

#[test]
fn job_all_queries_all_modes() {
    check_workload(&job(0.02, 12));
}

#[test]
fn tpcds_all_queries_all_modes() {
    check_workload(&tpcds(0.02, 13));
}

#[test]
fn dsb_all_queries_all_modes() {
    check_workload(&dsb(0.02, 14));
}

#[test]
fn random_orders_preserve_results() {
    let w = tpch(0.02, 21);
    let db = database_for(&w);
    let q = db.bind_sql(&w.query("q3").unwrap().sql).unwrap();
    let base = db
        .execute(&q, &QueryOptions::new(Mode::Baseline))
        .unwrap()
        .sorted_rows();
    let graph = q.graph();
    for seed in 0..6 {
        let order = rpt_core::random_left_deep(&graph, seed);
        for mode in [Mode::Baseline, Mode::RobustPredicateTransfer] {
            let r = db
                .execute(
                    &q,
                    &QueryOptions::new(mode)
                        .with_order(rpt_core::JoinOrder::LeftDeep(order.clone())),
                )
                .unwrap();
            assert!(
                rows_equalish(&r.sorted_rows(), &base),
                "seed {seed} mode {mode:?}"
            );
        }
        let bushy = rpt_core::random_bushy(&graph, seed);
        let r = db
            .execute(
                &q,
                &QueryOptions::new(Mode::RobustPredicateTransfer)
                    .with_order(rpt_core::JoinOrder::Bushy(bushy)),
            )
            .unwrap();
        assert!(rows_equalish(&r.sorted_rows(), &base), "bushy seed {seed}");
    }
}

#[test]
fn tpcds_q29_is_alpha_but_not_gamma_acyclic() {
    // §5.1.1: "Query 29 is acyclic but not γ-acyclic ... certain join
    // orders are unsafe." Verify both the classification and that
    // SafeSubjoin flags an unsafe subjoin of the real query graph.
    let w = tpcds(0.02, 61);
    let db = database_for(&w);
    let qd = w.query("q29").unwrap();
    let q = db.bind_sql(&qd.sql).unwrap();
    assert!(q.is_alpha_acyclic(), "q29 must be α-acyclic");
    assert!(!q.is_gamma_acyclic(), "q29 must not be γ-acyclic");
    let graph = q.graph();
    // By Theorem 3.6, some connected subjoin must be unsafe.
    let n = graph.num_relations();
    let mut found_unsafe = false;
    for mask in 1u32..(1 << n) {
        let subset: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        if subset.len() < 2 || subset.len() == n {
            continue;
        }
        let (sub, _) = graph.induced_subgraph(&subset);
        if sub.is_connected() && !rpt_graph::safe_subjoin(&graph, &subset) {
            found_unsafe = true;
            break;
        }
    }
    assert!(
        found_unsafe,
        "α-not-γ query must have an unsafe connected subjoin"
    );
    // And the guaranteed-safe Yannakakis order passes the check end to end.
    let order = rpt_graph::safe_subjoin::yannakakis_order(&graph).unwrap();
    assert!(rpt_graph::safe_join_order(&graph, &order));
}

#[test]
fn transfer_schedule_pipelines_have_expected_shape() {
    // JOB 3a under RPT must contain one CreateBF pipeline per semi-join in
    // the forward+backward schedule (modulo the §4.3 prunings), visible in
    // the pipeline trace.
    let w = job(0.02, 62);
    let db = database_for(&w);
    let qd = w.query("3a").unwrap();
    let q = db.bind_sql(&qd.sql).unwrap();
    let mut opts = QueryOptions::new(Mode::RobustPredicateTransfer);
    opts.prune_backward = false;
    opts.prune_trivial = false;
    let r = db.execute(&q, &opts).unwrap();
    // Pipeline entries only: `[merge]`-prefixed entries echo the pipeline
    // label once per partitioned sink merge.
    let createbf_count = r
        .trace
        .iter()
        .filter(|(label, _)| !label.starts_with('[') && label.contains("createbf"))
        .count();
    // 4 relations → 3 forward + 3 backward semi-joins.
    assert_eq!(createbf_count, 6, "trace: {:?}", r.trace);
    // With pruning on, the count can only shrink.
    let r2 = db
        .execute(&q, &QueryOptions::new(Mode::RobustPredicateTransfer))
        .unwrap();
    let pruned_count = r2
        .trace
        .iter()
        .filter(|(label, _)| !label.starts_with('[') && label.contains("createbf"))
        .count();
    assert!(pruned_count <= createbf_count);
    assert_eq!(r.sorted_rows(), r2.sorted_rows());
}

#[test]
fn baseline_has_no_bloom_work_and_pt_variants_do() {
    let w = tpch(0.02, 63);
    let db = database_for(&w);
    let qd = w.query("q3").unwrap();
    let q = db.bind_sql(&qd.sql).unwrap();
    let base = db.execute(&q, &QueryOptions::new(Mode::Baseline)).unwrap();
    assert_eq!(base.metrics.bloom_probe_in, 0);
    assert_eq!(base.metrics.bloom_build_rows, 0);
    let rpt = db
        .execute(&q, &QueryOptions::new(Mode::RobustPredicateTransfer))
        .unwrap();
    assert!(rpt.metrics.bloom_build_rows > 0);
    assert!(rpt.metrics.bloom_probe_in > 0);
    assert!(rpt.metrics.bloom_nanos > 0);
    // Yannakakis uses exact semi-joins, no blooms.
    let yan = db
        .execute(&q, &QueryOptions::new(Mode::Yannakakis))
        .unwrap();
    assert_eq!(yan.metrics.bloom_build_rows, 0);
}
