//! SQL feature coverage, end-to-end: every surface-area feature of the
//! dialect exercised through parse → bind → optimize → plan → execute,
//! verified against hand-computed answers.

use rpt_common::{DataType, Field, ScalarValue, Schema, Vector};
use rpt_core::{Database, Mode, QueryOptions};
use rpt_storage::Table;

fn db() -> Database {
    let mut db = Database::new();
    db.register_table(
        Table::new(
            "emp",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("dept_id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("salary", DataType::Float64),
                Field::new("active", DataType::Bool),
            ]),
            vec![
                Vector::from_i64((0..12).collect()),
                Vector::from_i64((0..12).map(|i| i % 3).collect()),
                Vector::from_utf8(
                    (0..12)
                        .map(|i| {
                            if i % 4 == 0 {
                                format!("Anna{i}")
                            } else {
                                format!("Bob{i}")
                            }
                        })
                        .collect(),
                ),
                Vector::from_f64((0..12).map(|i| 1000.0 + 100.0 * i as f64).collect()),
                Vector::from_bool((0..12).map(|i| i % 2 == 0).collect()),
            ],
        )
        .expect("valid emp table"),
    );
    db.register_table(
        Table::new(
            "dept",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Vector::from_i64(vec![0, 1, 2]),
                Vector::from_utf8(vec!["eng".into(), "ops".into(), "hr".into()]),
            ],
        )
        .expect("valid dept table"),
    );
    db
}

/// Run under RPT and return the rows exactly as the engine ordered them —
/// queries that need a defined order say so with ORDER BY.
fn q(db: &Database, sql: &str) -> Vec<Vec<ScalarValue>> {
    db.query(sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
        .unwrap_or_else(|e| panic!("query failed: {e}\n{sql}"))
        .rows
}

#[test]
fn projection_and_aliases() {
    let db = db();
    let rows = q(
        &db,
        "SELECT e.name AS who, e.salary FROM emp e WHERE e.id = 3",
    );
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], ScalarValue::Utf8("Bob3".into()));
    assert_eq!(rows[0][1], ScalarValue::Float64(1300.0));
    let r = db
        .query(
            "SELECT e.name AS who FROM emp e WHERE e.id = 0",
            &QueryOptions::new(Mode::Baseline),
        )
        .unwrap();
    assert_eq!(r.schema.fields[0].name, "who");
}

#[test]
fn aggregates_global_and_grouped() {
    let db = db();
    let rows = q(
        &db,
        "SELECT COUNT(*), SUM(emp.salary), MIN(emp.id), MAX(emp.id), AVG(emp.salary) FROM emp",
    );
    assert_eq!(rows[0][0], ScalarValue::Int64(12));
    assert_eq!(rows[0][2], ScalarValue::Int64(0));
    assert_eq!(rows[0][3], ScalarValue::Int64(11));
    let grouped = q(
        &db,
        "SELECT d.name, COUNT(*) AS c FROM emp e, dept d \
         WHERE e.dept_id = d.id GROUP BY d.name ORDER BY d.name",
    );
    assert_eq!(
        grouped,
        vec![
            vec![ScalarValue::Utf8("eng".into()), ScalarValue::Int64(4)],
            vec![ScalarValue::Utf8("hr".into()), ScalarValue::Int64(4)],
            vec![ScalarValue::Utf8("ops".into()), ScalarValue::Int64(4)],
        ]
    );
}

#[test]
fn order_by_limit_offset() {
    let db = db();
    // Plain scan: top salaries descending, skipping the single highest.
    let rows = q(
        &db,
        "SELECT e.id, e.salary FROM emp e ORDER BY e.salary DESC LIMIT 3 OFFSET 1",
    );
    assert_eq!(
        rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
        vec![
            ScalarValue::Int64(10),
            ScalarValue::Int64(9),
            ScalarValue::Int64(8)
        ]
    );
    // Ordinal key, ascending default.
    let rows = q(&db, "SELECT e.name, e.id FROM emp e ORDER BY 2 LIMIT 2");
    assert_eq!(rows[0][1], ScalarValue::Int64(0));
    assert_eq!(rows[1][1], ScalarValue::Int64(1));
    // Joins + GROUP BY + ORDER BY an aggregate alias + LIMIT, end to end.
    let rows = q(
        &db,
        "SELECT d.name, SUM(e.salary) AS s FROM emp e, dept d \
         WHERE e.dept_id = d.id GROUP BY d.name ORDER BY s DESC LIMIT 2",
    );
    assert_eq!(
        rows,
        vec![
            vec![ScalarValue::Utf8("hr".into()), ScalarValue::Float64(6600.0)],
            vec![
                ScalarValue::Utf8("ops".into()),
                ScalarValue::Float64(6200.0)
            ],
        ]
    );
    // LIMIT without ORDER BY: any 5 rows, deterministically chosen.
    let rows = q(&db, "SELECT e.id FROM emp e LIMIT 5");
    assert_eq!(rows.len(), 5);
    // The TopK bound kept every sort run at limit + offset rows or fewer.
    let r = db
        .query(
            "SELECT e.id FROM emp e ORDER BY e.id LIMIT 3 OFFSET 1",
            &QueryOptions::new(Mode::RobustPredicateTransfer),
        )
        .expect("topk query");
    assert!(r.metrics.sort_max_run_rows <= 4, "{:?}", r.metrics);
}

#[test]
fn where_features() {
    let db = db();
    // IN list
    assert_eq!(
        q(&db, "SELECT COUNT(*) FROM emp WHERE emp.id IN (1, 3, 5)")[0][0],
        ScalarValue::Int64(3)
    );
    // BETWEEN
    assert_eq!(
        q(
            &db,
            "SELECT COUNT(*) FROM emp WHERE emp.salary BETWEEN 1200 AND 1400"
        )[0][0],
        ScalarValue::Int64(3)
    );
    // LIKE prefix + contains
    assert_eq!(
        q(&db, "SELECT COUNT(*) FROM emp WHERE emp.name LIKE 'Anna%'")[0][0],
        ScalarValue::Int64(3)
    );
    assert_eq!(
        q(&db, "SELECT COUNT(*) FROM emp WHERE emp.name LIKE '%ob1%'")[0][0],
        ScalarValue::Int64(3) // Bob1, Bob10, Bob11
    );
    // NOT / <> / OR precedence
    assert_eq!(
        q(
            &db,
            "SELECT COUNT(*) FROM emp WHERE NOT emp.id = 0 AND (emp.id < 2 OR emp.id > 10)"
        )[0][0],
        ScalarValue::Int64(2) // 1 and 11
    );
    // boolean literal comparison
    assert_eq!(
        q(&db, "SELECT COUNT(*) FROM emp WHERE emp.active = TRUE")[0][0],
        ScalarValue::Int64(6)
    );
}

#[test]
fn arithmetic_in_select_and_where() {
    let db = db();
    let rows = q(
        &db,
        "SELECT emp.salary * 2 + 1 AS doubled FROM emp WHERE emp.id = 1",
    );
    assert_eq!(rows[0][0], ScalarValue::Float64(2201.0));
    assert_eq!(
        q(&db, "SELECT COUNT(*) FROM emp WHERE emp.id * 2 = 8")[0][0],
        ScalarValue::Int64(1)
    );
}

#[test]
fn residual_or_across_relations() {
    let db = db();
    // (e cond AND d cond) OR (e cond AND d cond): unpushable, residual.
    let rows = q(
        &db,
        "SELECT COUNT(*) FROM emp e, dept d WHERE e.dept_id = d.id \
         AND ((d.name = 'eng' AND e.salary < 1500) OR (d.name = 'hr' AND e.salary > 1500))",
    );
    // eng = dept 0: ids 0,3,6,9 → salaries 1000,1300,1600,1900 → <1500: 2
    // hr = dept 2: ids 2,5,8,11 → salaries 1200,1500,1800,2100 → >1500: 2
    assert_eq!(rows[0][0], ScalarValue::Int64(4));
}

#[test]
fn star_select() {
    let db = db();
    let r = db
        .query(
            "SELECT * FROM emp e, dept d WHERE e.dept_id = d.id AND e.id = 0",
            &QueryOptions::new(Mode::Baseline),
        )
        .unwrap();
    assert_eq!(r.schema.len(), 7); // 5 emp + 2 dept columns
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn error_paths_are_reported() {
    let db = db();
    let opts = QueryOptions::new(Mode::Baseline);
    assert!(db.query("SELECT FROM emp", &opts).is_err()); // parse
    assert!(db.query("SELECT * FROM missing", &opts).is_err()); // bind: table
    assert!(db.query("SELECT nope FROM emp", &opts).is_err()); // bind: column
                                                               // Cartesian product rejected at planning.
    let err = db
        .query("SELECT COUNT(*) FROM emp e, dept d", &opts)
        .unwrap_err();
    assert!(
        err.to_string().contains("Cartesian") || err.to_string().contains("disconnected"),
        "unexpected error: {err}"
    );
}

#[test]
fn case_insensitive_keywords() {
    let db = db();
    assert_eq!(
        q(&db, "select count(*) from emp where emp.id between 0 and 3")[0][0],
        ScalarValue::Int64(4)
    );
}
