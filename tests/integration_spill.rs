//! The §5.4 storage paths: disk-resident tables and memory-capped
//! (spilling) transfer-phase buffers must not change any query result.

use rpt_core::{Database, Mode, QueryOptions};
use rpt_storage::disk::{write_table, DiskTable};
use rpt_workloads::{tpch, Workload};

fn database_for(w: &Workload) -> Database {
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }
    db
}

#[test]
fn spill_limit_does_not_change_results() {
    let w = tpch(0.05, 51);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_spill_{}", std::process::id()));
    for qd in w.acyclic_queries() {
        let unbounded = db
            .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap_or_else(|e| panic!("{}: {e}", qd.id));
        // A 64 KiB cap forces nearly every transfer buffer to spill.
        let spilled = db
            .query(
                &qd.sql,
                &QueryOptions::new(Mode::RobustPredicateTransfer).with_spill(64 * 1024, &dir),
            )
            .unwrap_or_else(|e| panic!("{} (spill): {e}", qd.id));
        assert_eq!(
            unbounded.sorted_rows(),
            spilled.sorted_rows(),
            "{}: spill changed the result",
            qd.id
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_roundtrip_preserves_query_results() {
    let w = tpch(0.03, 52);
    let mem_db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_disk_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Write all tables, read them back, rebuild the database from disk.
    let mut disk_db = Database::new();
    for t in &w.tables {
        let path = dir.join(format!("{}.rptc", t.name));
        write_table(t, &path, 2048).unwrap();
        let loaded = DiskTable::open(t.name.clone(), &path)
            .unwrap()
            .load()
            .unwrap();
        assert_eq!(loaded.num_rows(), t.num_rows(), "{}", t.name);
        disk_db.register_table(loaded);
    }
    for qd in &w.queries {
        let a = mem_db
            .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap();
        let b = disk_db
            .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "{}", qd.id);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_works_multithreaded() {
    let w = tpch(0.05, 53);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_spill_mt_{}", std::process::id()));
    let qd = w.query("q3").unwrap();
    let reference = db
        .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
        .unwrap();
    let spilled_mt = db
        .query(
            &qd.sql,
            &QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_threads(4)
                .with_spill(32 * 1024, &dir),
        )
        .unwrap();
    assert_eq!(reference.sorted_rows(), spilled_mt.sorted_rows());
    std::fs::remove_dir_all(&dir).ok();
}
