//! The §5.4 storage paths: disk-resident tables and memory-capped
//! (spilling) transfer-phase buffers must not change any query result —
//! including when the buffers are hash-partitioned and only some
//! partitions overflow their share of the cap.

use proptest::prelude::*;
use rpt_common::hash::hash_i64;
use rpt_common::{DataChunk, DataType, Field, Partitioner, ScalarValue, Schema, Vector};
use rpt_core::{Database, Mode, QueryOptions};
use rpt_exec::operators::buffer::{BufferSink, BufferSinkFactory};
use rpt_exec::{
    BloomSink, ExecContext, JoinHashTable, Resources, SchedulerKind, Sink, SinkFactory,
};
use rpt_storage::disk::{write_table, DiskTable};
use rpt_storage::Table;
use rpt_workloads::{tpch, Workload};

fn database_for(w: &Workload) -> Database {
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }
    db
}

#[test]
fn spill_limit_does_not_change_results() {
    let w = tpch(0.05, 51);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_spill_{}", std::process::id()));
    for qd in w.acyclic_queries() {
        let unbounded = db
            .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap_or_else(|e| panic!("{}: {e}", qd.id));
        // A 64 KiB cap forces nearly every transfer buffer to spill.
        let spilled = db
            .query(
                &qd.sql,
                &QueryOptions::new(Mode::RobustPredicateTransfer).with_spill(64 * 1024, &dir),
            )
            .unwrap_or_else(|e| panic!("{} (spill): {e}", qd.id));
        assert_eq!(
            unbounded.sorted_rows(),
            spilled.sorted_rows(),
            "{}: spill changed the result",
            qd.id
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_roundtrip_preserves_query_results() {
    let w = tpch(0.03, 52);
    let mem_db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_disk_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Write all tables, read them back, rebuild the database from disk.
    let mut disk_db = Database::new();
    for t in &w.tables {
        let path = dir.join(format!("{}.rptc", t.name));
        write_table(t, &path, 2048).unwrap();
        let loaded = DiskTable::open(t.name.clone(), &path)
            .unwrap()
            .load()
            .unwrap();
        assert_eq!(loaded.num_rows(), t.num_rows(), "{}", t.name);
        disk_db.register_table(loaded);
    }
    for qd in &w.queries {
        let a = mem_db
            .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap();
        let b = disk_db
            .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "{}", qd.id);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Partitioned sinks under a spill cap must not change any query result:
/// the cap is split across partitions, so some partitions spill while
/// others stay resident, and the restored buffers feed the join phase.
#[test]
fn partitioned_spill_does_not_change_results() {
    let w = tpch(0.05, 54);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_pspill_{}", std::process::id()));
    for qd in w.acyclic_queries() {
        let reference = db
            .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap_or_else(|e| panic!("{}: {e}", qd.id));
        let partitioned_spill = db
            .query(
                &qd.sql,
                &QueryOptions::new(Mode::RobustPredicateTransfer)
                    .with_partition_count(4)
                    .with_spill(64 * 1024, &dir),
            )
            .unwrap_or_else(|e| panic!("{} (partitioned spill): {e}", qd.id));
        // Partitioning reorders the chunks feeding float aggregates, so
        // float sums may differ in the last ulp; everything else must be
        // exactly equal.
        assert_rows_approx_eq(
            &reference.sorted_rows(),
            &partitioned_spill.sorted_rows(),
            &qd.id,
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Exact equality except for Float64 values, which are compared with a
/// relative epsilon (chunk reordering changes float summation order).
fn assert_rows_approx_eq(a: &[Vec<ScalarValue>], b: &[Vec<ScalarValue>], id: &str) {
    assert_eq!(a.len(), b.len(), "{id}: row count differs");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len(), "{id}: arity differs");
        for (x, y) in ra.iter().zip(rb) {
            match (x, y) {
                (ScalarValue::Float64(u), ScalarValue::Float64(v)) => {
                    let tol = 1e-9 * u.abs().max(v.abs()).max(1.0);
                    assert!((u - v).abs() <= tol, "{id}: {u} vs {v}");
                }
                _ => assert_eq!(x, y, "{id}: {x:?} vs {y:?}"),
            }
        }
    }
}

/// Drive a partitioned `BufferSink` directly with skewed data so exactly
/// one partition overflows its share of the cap: that partition spills,
/// the others stay resident, and the restored buffer probes correctly.
#[test]
fn spilling_one_partition_keeps_others_resident() {
    let dir = std::env::temp_dir().join(format!("rpt_it_pspill_skew_{}", std::process::id()));
    let partitions = 4usize;
    let hot_key = 42i64;
    let hot_partition = Partitioner::new(partitions).of_hash(hash_i64(hot_key));
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]);

    // 64 KiB cap / 1 thread / 4 partitions = 16 KiB per partition buffer.
    // The hot partition receives 4000 × 16-byte rows (~62 KiB) and must
    // spill; the 60 spread rows stay resident everywhere else.
    let ctx = ExecContext::new()
        .with_partitions(partitions)
        .with_spill(64 * 1024, &dir);
    let factory = BufferSinkFactory::new(
        0,
        schema,
        vec![BloomSink {
            filter_id: 0,
            key_cols: vec![0],
            expected_keys: 4096,
            fpr: 0.02,
        }],
    );
    let mut sink = factory.make(&ctx).unwrap();
    for chunk_idx in 0..8 {
        let keys = vec![hot_key; 500];
        let vals: Vec<i64> = (0..500).map(|j| chunk_idx * 500 + j).collect();
        sink.sink(
            DataChunk::new(vec![Vector::from_i64(keys), Vector::from_i64(vals)]),
            &ctx,
        )
        .unwrap();
    }
    let spread_keys: Vec<i64> = (100..160).collect();
    let spread_vals: Vec<i64> = (4000..4060).collect();
    sink.sink(
        DataChunk::new(vec![
            Vector::from_i64(spread_keys.clone()),
            Vector::from_i64(spread_vals),
        ]),
        &ctx,
    )
    .unwrap();

    let sink = sink
        .into_any()
        .downcast::<BufferSink>()
        .expect("buffer sink state");
    for (p, stats) in sink.spill_stats().into_iter().enumerate() {
        if p == hot_partition {
            assert!(stats.chunks_spilled > 0, "hot partition never spilled");
        } else {
            assert_eq!(stats.chunks_spilled, 0, "partition {p} spilled");
        }
    }

    // Restore: finalize publishes every partition (spilled chunks are read
    // back), and the rebuilt buffer probes like the original rows.
    let res = Resources::with_partitions(1, 1, 0, partitions);
    sink.finalize(&res).unwrap();
    let chunks = res.buffer(0).unwrap();
    let total: usize = chunks.iter().map(|c| c.num_rows()).sum();
    assert_eq!(total, 4060);
    let hot_rows: usize = res
        .buffer_partition(0, hot_partition)
        .unwrap()
        .iter()
        .map(|c| c.num_rows())
        .sum();
    assert!(hot_rows >= 4000, "hot partition restored {hot_rows} rows");

    let restored: Vec<DataChunk> = chunks.iter().map(|c| c.as_ref().clone()).collect();
    let ht = JoinHashTable::build(&restored, vec![0]).unwrap();
    let probe = DataChunk::new(vec![Vector::from_i64(vec![hot_key, 130, 999])]);
    let (mut pr, mut br) = (vec![], vec![]);
    ht.probe(&probe, &[0], &mut pr, &mut br);
    assert_eq!(pr.iter().filter(|&&p| p == 0).count(), 4000);
    assert_eq!(pr.iter().filter(|&&p| p == 1).count(), 1);
    assert_eq!(pr.iter().filter(|&&p| p == 2).count(), 0);
    // The CreateBF filter built over the same stream has no false negatives.
    let filter = res.filter(0).unwrap();
    assert!(filter.probe_i64(hot_key));
    for &k in &spread_keys {
        assert!(filter.probe_i64(k));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Drive the full-sort sink (no LIMIT → spill-capped runs) directly with
/// skewed chunk sizes so exactly one partition overflows its share of the
/// cap: that partition spills to disk, the merge still yields exactly
/// ordered output, and no `rpt_spill_*` file survives the query.
#[test]
fn sort_spills_one_partition_and_merges_in_order() {
    use rpt_exec::{cmp_scalar_rows, SortKey, SortSinkFactory};

    let dir = std::env::temp_dir().join(format!("rpt_it_sortspill_{}", std::process::id()));
    let partitions = 4usize;
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]);
    // 32 KiB cap / 1 thread / 4 partitions = 8 KiB per partition run.
    let ctx = ExecContext::new()
        .with_partitions(partitions)
        .with_spill(32 * 1024, &dir);
    let keys = vec![SortKey {
        col: 0,
        desc: true,
        nulls_first: true,
    }];
    let factory = SortSinkFactory::new(0, keys.clone(), None, 0, schema);
    let mut sink = factory.make(&ctx).unwrap();

    // Chunks are routed round-robin, so every 4th chunk lands in the same
    // partition. Make those 500 rows (~8 KiB each, overflowing the 8 KiB
    // share) and the rest 8 rows (resident everywhere else).
    let mut expected: Vec<Vec<ScalarValue>> = Vec::new();
    let mut next = 0i64;
    for i in 0..16 {
        let n = if i % partitions == 0 { 500 } else { 8 };
        let ks: Vec<i64> = (0..n).map(|j| (next + j) * 7919 % 10007).collect();
        let vs: Vec<i64> = (next..next + n).collect();
        next += n;
        for (k, v) in ks.iter().zip(&vs) {
            expected.push(vec![ScalarValue::Int64(*k), ScalarValue::Int64(*v)]);
        }
        sink.sink(
            DataChunk::new(vec![Vector::from_i64(ks), Vector::from_i64(vs)]),
            &ctx,
        )
        .unwrap();
    }

    // Each SpillBuffer opens its own rpt_spill_* file on first overflow:
    // exactly one partition's run must have spilled by now.
    let spill_files = |d: &std::path::Path| -> usize {
        std::fs::read_dir(d)
            .map(|it| {
                it.filter(|e| {
                    e.as_ref()
                        .map(|e| e.file_name().to_string_lossy().starts_with("rpt_spill_"))
                        .unwrap_or(false)
                })
                .count()
            })
            .unwrap_or(0)
    };
    assert_eq!(spill_files(&dir), 1, "exactly one partition should spill");

    let res = Resources::new(1, 0, 0);
    factory
        .merge_partitioned("sort", vec![sink], &ctx, &res)
        .unwrap();
    let rows: Vec<Vec<ScalarValue>> = res
        .buffer(0)
        .unwrap()
        .iter()
        .flat_map(|c| c.rows())
        .collect();
    expected.sort_unstable_by(|a, b| cmp_scalar_rows(&keys, a, b));
    assert_eq!(expected, rows, "merged output out of order or incomplete");
    assert_eq!(spill_files(&dir), 0, "spill files leaked past the merge");
    std::fs::remove_dir_all(&dir).ok();
}

/// End-to-end: a full ORDER BY (no LIMIT) under a tiny spill cap returns
/// exactly the unbounded run's ordered rows, and leaves no spill files.
#[test]
fn sort_under_spill_pressure_end_to_end() {
    let w = tpch(0.05, 55);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_sortspill_e2e_{}", std::process::id()));
    let sql = "SELECT l.l_orderkey, l.l_quantity, l.l_extendedprice FROM lineitem l \
               WHERE l.l_quantity > 5 ORDER BY 3 DESC, 1";
    let unbounded = db
        .query(
            sql,
            &QueryOptions::new(Mode::RobustPredicateTransfer).with_partition_count(4),
        )
        .unwrap();
    let spilled = db
        .query(
            sql,
            &QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_partition_count(4)
                .with_spill(8 * 1024, &dir),
        )
        .unwrap();
    // Raw columns, no aggregation: the ordered rows must match exactly.
    assert_eq!(
        unbounded.rows, spilled.rows,
        "spill changed the sorted output"
    );
    assert!(
        unbounded.rows.len() > 1000,
        "query too small to pressure the cap"
    );
    let leftovers = std::fs::read_dir(&dir)
        .map(|it| {
            it.filter(|e| {
                e.as_ref()
                    .map(|e| e.file_name().to_string_lossy().starts_with("rpt_spill_"))
                    .unwrap_or(false)
            })
            .count()
        })
        .unwrap_or(0);
    assert_eq!(leftovers, 0, "rpt_spill_* files left behind");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_works_multithreaded() {
    let w = tpch(0.05, 53);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_spill_mt_{}", std::process::id()));
    let qd = w.query("q3").unwrap();
    let reference = db
        .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
        .unwrap();
    let spilled_mt = db
        .query(
            &qd.sql,
            &QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_threads(4)
                .with_spill(32 * 1024, &dir),
        )
        .unwrap();
    // Multi-threaded morsel claiming reorders the chunks feeding q3's float
    // SUM, so compare with the same ulp tolerance as the partitioned runs.
    assert_rows_approx_eq(&reference.sorted_rows(), &spilled_mt.sorted_rows(), "q3-mt");
    std::fs::remove_dir_all(&dir).ok();
}

// --------------------------------------------- compressed spill + governor

fn count_spill_files(d: &std::path::Path) -> usize {
    std::fs::read_dir(d)
        .map(|it| {
            it.filter(|e| {
                e.as_ref()
                    .map(|e| e.file_name().to_string_lossy().starts_with("rpt_spill_"))
                    .unwrap_or(false)
            })
            .count()
        })
        .unwrap_or(0)
}

/// The block-encoded spill format must at least halve the bytes written
/// for compressible Int64 runs versus the decoded raw format, restore the
/// exact same rows, and record the compression-ratio gauge — the PR's
/// headline byte-reduction claim, asserted at the sink level where the
/// input is controlled.
#[test]
fn encoded_spill_at_least_halves_written_bytes() {
    let dir = std::env::temp_dir().join(format!("rpt_it_encspill_{}", std::process::id()));
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]);
    let mut legs = Vec::new();
    for encoded in [true, false] {
        // Pin to one partition: the `Resources` below declares a
        // single-partition layout whatever RPT_PARTITION_COUNT says.
        let ctx = ExecContext::new()
            .with_partitions(1)
            .with_spill(4 * 1024, &dir)
            .with_spill_encoding(encoded);
        let factory = BufferSinkFactory::new(0, schema.clone(), vec![]);
        let mut sink = factory.make(&ctx).unwrap();
        for c in 0..8i64 {
            // Narrow-range keys (RLE/FOR-friendly) + a slowly growing value
            // column: both land far under their 8-byte raw width.
            let ks: Vec<i64> = (0..512).map(|j| 100 + (j % 40)).collect();
            let vs: Vec<i64> = (0..512).map(|j| c * 512 + j).collect();
            sink.sink(
                DataChunk::new(vec![Vector::from_i64(ks), Vector::from_i64(vs)]),
                &ctx,
            )
            .unwrap();
        }
        let res = Resources::new(1, 0, 0);
        sink.finalize(&res).unwrap();
        let rows: Vec<Vec<ScalarValue>> = res
            .buffer(0)
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .collect();
        let m = ctx.metrics.summary();
        assert!(
            m.spill_bytes_written > 0,
            "encoded={encoded}: never spilled"
        );
        assert!(
            m.spill_bytes_read >= m.spill_bytes_written,
            "encoded={encoded}: restore read {} < wrote {}",
            m.spill_bytes_read,
            m.spill_bytes_written
        );
        legs.push((rows, m));
    }
    let (enc_rows, enc) = &legs[0];
    let (raw_rows, raw) = &legs[1];
    assert_eq!(enc_rows, raw_rows, "spill format changed restored rows");
    assert!(
        enc.spill_bytes_written * 2 <= raw.spill_bytes_written,
        "encoded spill {}B not >=2x smaller than decoded {}B",
        enc.spill_bytes_written,
        raw.spill_bytes_written
    );
    assert!(
        enc.spill_compression_ratio_pct >= 200,
        "compression gauge {} below 200 (2x)",
        enc.spill_compression_ratio_pct
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A sink dropped mid-query — spilled runs on disk, never finalized —
/// must unlink its spill files on drop (the file-lifecycle guarantee the
/// startup orphan sweep only backstops for killed processes).
#[test]
fn dropped_sink_mid_query_leaves_no_spill_files() {
    let dir = std::env::temp_dir().join(format!("rpt_it_dropspill_{}", std::process::id()));
    let schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
    let ctx = ExecContext::new().with_spill(1024, &dir);
    let factory = BufferSinkFactory::new(0, schema, vec![]);
    let mut sink = factory.make(&ctx).unwrap();
    for _ in 0..4 {
        sink.sink(
            DataChunk::new(vec![Vector::from_i64((0..512).collect())]),
            &ctx,
        )
        .unwrap();
    }
    assert!(count_spill_files(&dir) >= 1, "sink never spilled");
    drop(sink);
    assert_eq!(
        count_spill_files(&dir),
        0,
        "dropped sink leaked spill files"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The query-wide memory governor: a tiny `memory_budget_bytes` makes the
/// largest resident sink spill even though no per-buffer cap is set, the
/// query result is unchanged, the eviction counter records it, and no
/// spill file survives the query.
#[test]
fn memory_governor_evicts_across_sinks_without_changing_results() {
    let w = tpch(0.05, 56);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_govspill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let qd = w.query("q3").unwrap();
    let reference = db
        .query(&qd.sql, &QueryOptions::new(Mode::RobustPredicateTransfer))
        .unwrap();
    let mut opts = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_partition_count(4)
        .with_memory_budget(Some(1024));
    opts.spill_dir = dir.clone();
    let governed = db.query(&qd.sql, &opts).unwrap();
    assert_rows_approx_eq(
        &reference.sorted_rows(),
        &governed.sorted_rows(),
        "q3-governed",
    );
    assert!(
        governed.metrics.spill_victim_evictions >= 1,
        "governor never evicted under a 1 KiB budget: {:?}",
        governed.metrics
    );
    assert!(
        governed.metrics.spill_bytes_written > 0,
        "eviction wrote no spill bytes"
    );
    assert_eq!(count_spill_files(&dir), 0, "governed run leaked files");
    // An unconstrained budget keeps everything resident: no evictions.
    let roomy = db
        .query(
            &qd.sql,
            &QueryOptions::new(Mode::RobustPredicateTransfer).with_memory_budget(Some(1 << 30)),
        )
        .unwrap();
    assert_eq!(roomy.metrics.spill_victim_evictions, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Overlapped spill restore on the global scheduler: with one worker the
/// FIFO queue runs every `SpillIo` prefetch before the merge that consumes
/// it, so every spilled partition restores from cache (`prefetch_hits`);
/// disabling prefetch forces the synchronous re-read path
/// (`prefetch_misses`) — and with a single worker no overlap nanoseconds
/// can ever be attributed. Both legs return identical rows.
#[test]
fn spill_prefetch_hits_cache_under_global_scheduler() {
    let w = tpch(0.05, 57);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_it_prefspill_{}", std::process::id()));
    let qd = w.query("q3").unwrap();
    let base = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_partition_count(4)
        .with_scheduler(SchedulerKind::Global)
        .with_workers(1)
        .with_threads(1)
        .with_spill(1, &dir);
    let on = db.query(&qd.sql, &base).unwrap();
    assert!(
        on.metrics.spill_prefetch_hits >= 1,
        "prefetch never hit: {:?}",
        on.metrics
    );
    // One worker: a prefetch can never run while another task executes.
    assert_eq!(on.metrics.spill_io_overlap_nanos, 0);
    let off = db
        .query(&qd.sql, &base.clone().with_spill_prefetch(false))
        .unwrap();
    assert_eq!(
        off.metrics.spill_prefetch_hits, 0,
        "prefetch ran while disabled"
    );
    assert!(
        off.metrics.spill_prefetch_misses >= 1,
        "no synchronous restore recorded: {:?}",
        off.metrics
    );
    assert_eq!(off.metrics.spill_io_overlap_nanos, 0);
    // threads == 1 on the global scheduler is bit-deterministic, so the
    // two legs must agree exactly — prefetch only changes *where* restore
    // bytes come from, never their content or order.
    assert_eq!(on.rows, off.rows, "prefetch changed the result");
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------ spill-leg property test

fn spill_prop_db(keys_a: &[i64], keys_b: &[i64]) -> Database {
    let mk = |name: &str, cols: Vec<(&str, Vector)>| {
        let schema = Schema::new(
            cols.iter()
                .map(|(n, v)| Field::new(*n, v.data_type()))
                .collect(),
        );
        Table::new(name, schema, cols.into_iter().map(|(_, v)| v).collect()).expect("valid table")
    };
    let mut db = Database::new();
    db.register_table(mk("pa", vec![("k", Vector::from_i64(keys_a.to_vec()))]));
    db.register_table(mk(
        "pb",
        vec![
            ("k", Vector::from_i64(keys_b.to_vec())),
            (
                "j",
                Vector::from_i64(keys_b.iter().map(|k| k % 5).collect()),
            ),
        ],
    ));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random join+GROUP BY instances: resident, forced decoded spill, and
    /// forced compressed spill return identical rows across partition
    /// counts and all three schedulers (integer aggregates, so equality is
    /// exact even on the multithreaded legs).
    #[test]
    fn spill_legs_agree_with_resident(
        keys_a in proptest::collection::vec(0i64..12, 1..60),
        keys_b in proptest::collection::vec(0i64..12, 1..60),
    ) {
        let db = spill_prop_db(&keys_a, &keys_b);
        let dir = std::env::temp_dir().join(format!("rpt_it_propspill_{}", std::process::id()));
        let sql = "SELECT pb.j, COUNT(*) AS c, SUM(pa.k) AS s FROM pa, pb \
                   WHERE pa.k = pb.k GROUP BY pb.j";
        for parts in [1usize, 8] {
            for sched in [
                SchedulerKind::Global,
                SchedulerKind::Scoped,
                SchedulerKind::Stealing,
            ] {
                let base = QueryOptions::new(Mode::RobustPredicateTransfer)
                    .with_partition_count(parts)
                    .with_scheduler(sched)
                    .with_threads(2)
                    .with_workers(4);
                let resident = db.query(sql, &base).unwrap().sorted_rows();
                // A 1-byte cap forces every chunk of every buffer to spill.
                let decoded = db
                    .query(sql, &base.clone().with_spill(1, &dir).with_spill_encoding(false))
                    .unwrap()
                    .sorted_rows();
                let compressed = db
                    .query(sql, &base.clone().with_spill(1, &dir).with_spill_encoding(true))
                    .unwrap()
                    .sorted_rows();
                prop_assert_eq!(&resident, &decoded, "decoded parts={} {:?}", parts, sched);
                prop_assert_eq!(&resident, &compressed, "compressed parts={} {:?}", parts, sched);
            }
        }
        prop_assert_eq!(count_spill_files(&dir), 0, "spill files leaked");
        std::fs::remove_dir_all(&dir).ok();
    }
}
