//! Differential query corpus: ~20 full queries (filters, multi-way joins,
//! GROUP BY, ORDER BY / LIMIT / OFFSET) over the TPC-H, TPC-DS, JOB, and
//! DSB generators, each executed through every
//! `partition_count {1,8} × scheduler {global,scoped,steal} ×
//! repartition_elide {on,off} × agg_fast {on,off} × storage_encoding
//! {on,off}` leg and compared — in exact row order —
//! against a naive single-threaded reference: the unordered query run at
//! `Baseline / threads=1 / partition_count=1`, gathered into rows, sorted
//! with `sort_unstable_by` under the engine's published total-order
//! comparator ([`rpt_exec::cmp_scalar_rows`]), then sliced by
//! OFFSET/LIMIT. Only float aggregate cells are compared with a relative
//! tolerance (summation order shifts the last ulps across join orders);
//! everything else must match exactly, including position.

use rpt_common::ScalarValue;
use rpt_core::{Database, Mode, QueryOptions, SchedulerKind};
use rpt_exec::{cmp_scalar_rows, SortKey};
use rpt_workloads::{dsb, job, tpcds, tpch, Workload};

/// One corpus entry: the unordered query body, the ordering suffix the
/// engine executes, and the same ordering bound to output positions
/// (`(output_pos, desc, nulls_first)`) for the reference sort.
struct CorpusQuery {
    id: &'static str,
    base: &'static str,
    suffix: &'static str,
    keys: &'static [(usize, bool, bool)],
    limit: Option<usize>,
    offset: usize,
}

impl CorpusQuery {
    fn sql(&self) -> String {
        format!("{} {}", self.base, self.suffix)
    }

    fn sort_keys(&self) -> Vec<SortKey> {
        self.keys
            .iter()
            .map(|&(col, desc, nulls_first)| SortKey {
                col,
                desc,
                nulls_first,
            })
            .collect()
    }
}

const TPCH_QUERIES: &[CorpusQuery] = &[
    CorpusQuery {
        id: "h_orders_topk",
        base: "SELECT o.o_orderkey, o.o_totalprice FROM orders o \
               WHERE o.o_totalprice > 200000",
        suffix: "ORDER BY 2 DESC LIMIT 15 OFFSET 2",
        keys: &[(1, true, true)],
        limit: Some(15),
        offset: 2,
    },
    CorpusQuery {
        id: "h_lineitem_ship",
        base: "SELECT l.l_orderkey, l.l_quantity, l.l_shipdate FROM lineitem l \
               WHERE l.l_shipdate < 300",
        suffix: "ORDER BY 3 DESC NULLS FIRST, 1 NULLS LAST LIMIT 20",
        keys: &[(2, true, true), (0, false, false)],
        limit: Some(20),
        offset: 0,
    },
    CorpusQuery {
        id: "h_mkt_revenue",
        base: "SELECT c.c_mktsegment, COUNT(*) AS cnt, SUM(l.l_extendedprice) AS revenue \
               FROM customer c, orders o, lineitem l \
               WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
                 AND o.o_orderdate < 1200 GROUP BY c.c_mktsegment",
        suffix: "ORDER BY revenue DESC LIMIT 3",
        keys: &[(2, true, true)],
        limit: Some(3),
        offset: 0,
    },
    CorpusQuery {
        id: "h_nation_suppliers",
        base: "SELECT n.n_name, COUNT(*) AS cnt FROM supplier s, nation n \
               WHERE s.s_nationkey = n.n_nationkey GROUP BY n.n_name",
        suffix: "ORDER BY n.n_name",
        keys: &[(0, false, false)],
        limit: None,
        offset: 0,
    },
    CorpusQuery {
        id: "h_returns_by_nation",
        base: "SELECT n.n_name, SUM(l.l_extendedprice) AS revenue \
               FROM customer c, orders o, lineitem l, nation n \
               WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
                 AND c.c_nationkey = n.n_nationkey AND l.l_returnflag = 'R' \
               GROUP BY n.n_name",
        suffix: "ORDER BY 2 DESC, 1 LIMIT 5",
        keys: &[(1, true, true), (0, false, false)],
        limit: Some(5),
        offset: 0,
    },
    CorpusQuery {
        id: "h_parts_by_size",
        base: "SELECT p.p_size, p.p_type, COUNT(*) AS cnt FROM part p, partsupp ps \
               WHERE p.p_partkey = ps.ps_partkey AND p.p_size < 26 \
               GROUP BY p.p_size, p.p_type",
        suffix: "ORDER BY 1, 2 LIMIT 25",
        keys: &[(0, false, false), (1, false, false)],
        limit: Some(25),
        offset: 0,
    },
    CorpusQuery {
        id: "h_brand_counts",
        base: "SELECT p.p_brand, p.p_type, COUNT(*) AS supplier_cnt \
               FROM partsupp ps, part p, supplier s \
               WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey \
                 AND p.p_brand <> 'Brand#45' GROUP BY p.p_brand, p.p_type",
        suffix: "ORDER BY 3 DESC, 1 ASC, 2 ASC LIMIT 10",
        keys: &[(2, true, true), (0, false, false), (1, false, false)],
        limit: Some(10),
        offset: 0,
    },
    CorpusQuery {
        id: "h_priority_counts",
        base: "SELECT o.o_orderpriority, COUNT(*) AS cnt FROM orders o, lineitem l \
               WHERE o.o_orderkey = l.l_orderkey AND o.o_orderdate BETWEEN 100 AND 1500 \
               GROUP BY o.o_orderpriority",
        suffix: "ORDER BY 1",
        keys: &[(0, false, false)],
        limit: None,
        offset: 0,
    },
];

const TPCDS_QUERIES: &[CorpusQuery] = &[
    CorpusQuery {
        id: "ds_year_profit",
        base: "SELECT d.d_year, COUNT(*) AS cnt, SUM(ss.ss_net_profit) AS profit \
               FROM store_sales ss, date_dim d, item i \
               WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk \
                 AND d.d_moy = 11 GROUP BY d.d_year",
        suffix: "ORDER BY 1 LIMIT 8",
        keys: &[(0, false, false)],
        limit: Some(8),
        offset: 0,
    },
    CorpusQuery {
        id: "ds_brand_counts",
        base: "SELECT d.d_year, i.i_brand, COUNT(*) AS cnt \
               FROM date_dim d, store_sales ss, item i \
               WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk \
                 AND d.d_moy = 12 GROUP BY d.d_year, i.i_brand",
        suffix: "ORDER BY 3 DESC, 2, 1 LIMIT 12",
        keys: &[(2, true, true), (1, false, false), (0, false, false)],
        limit: Some(12),
        offset: 0,
    },
    CorpusQuery {
        id: "ds_brand_topk_offset",
        base: "SELECT i.i_brand, COUNT(*) AS cnt \
               FROM date_dim d, store_sales ss, item i \
               WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk \
                 AND d.d_moy = 11 GROUP BY i.i_brand",
        suffix: "ORDER BY 2 DESC, 1 LIMIT 7 OFFSET 3",
        keys: &[(1, true, true), (0, false, false)],
        limit: Some(7),
        offset: 3,
    },
    CorpusQuery {
        id: "ds_category_sort",
        base: "SELECT i.i_category, COUNT(*) AS cnt, SUM(ss.ss_net_profit) AS profit \
               FROM date_dim d, store_sales ss, item i \
               WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk \
                 AND d.d_year = 2000 GROUP BY i.i_category",
        suffix: "ORDER BY i.i_category",
        keys: &[(0, false, false)],
        limit: None,
        offset: 0,
    },
    CorpusQuery {
        id: "ds_state_counts",
        base: "SELECT ca.ca_state, COUNT(*) AS cnt \
               FROM store_sales ss, store s, customer_address ca, date_dim d \
               WHERE ss.ss_store_sk = s.s_store_sk AND ss.ss_sold_date_sk = d.d_date_sk \
                 AND ss.ss_addr_sk = ca.ca_address_sk AND d.d_year = 1999 \
               GROUP BY ca.ca_state",
        suffix: "ORDER BY 2 DESC, 1 LIMIT 6",
        keys: &[(1, true, true), (0, false, false)],
        limit: Some(6),
        offset: 0,
    },
];

const JOB_QUERIES: &[CorpusQuery] = &[
    CorpusQuery {
        id: "job_year_counts",
        base: "SELECT t.production_year, COUNT(*) AS cnt \
               FROM title t, movie_keyword mk, keyword k \
               WHERE t.id = mk.movie_id AND mk.keyword_id = k.id \
                 AND k.keyword LIKE '%sequel%' GROUP BY t.production_year",
        suffix: "ORDER BY 2 DESC, 1 LIMIT 10",
        keys: &[(1, true, true), (0, false, false)],
        limit: Some(10),
        offset: 0,
    },
    CorpusQuery {
        id: "job_country_counts",
        base: "SELECT cn.country_code, COUNT(*) AS cnt \
               FROM company_name cn, movie_companies mc, title t \
               WHERE cn.id = mc.company_id AND mc.movie_id = t.id \
                 AND t.production_year > 1990 GROUP BY cn.country_code",
        suffix: "ORDER BY 1 LIMIT 5",
        keys: &[(0, false, false)],
        limit: Some(5),
        offset: 0,
    },
    CorpusQuery {
        id: "job_info_counts",
        base: "SELECT mi.info, COUNT(*) AS cnt \
               FROM movie_info mi, title t, info_type it \
               WHERE mi.movie_id = t.id AND mi.info_type_id = it.id \
                 AND t.production_year BETWEEN 1950 AND 2000 GROUP BY mi.info",
        suffix: "ORDER BY 2 DESC, 1 ASC LIMIT 8",
        keys: &[(1, true, true), (0, false, false)],
        limit: Some(8),
        offset: 0,
    },
    CorpusQuery {
        id: "job_titles_plain",
        base: "SELECT t.title, t.production_year \
               FROM title t, movie_keyword mk, keyword k \
               WHERE t.id = mk.movie_id AND mk.keyword_id = k.id \
                 AND k.keyword = 'character-name-in-title'",
        suffix: "ORDER BY 2 DESC, 1 LIMIT 15",
        keys: &[(1, true, true), (0, false, false)],
        limit: Some(15),
        offset: 0,
    },
];

const DSB_QUERIES: &[CorpusQuery] = &[
    CorpusQuery {
        id: "dsb_year_counts",
        base: "SELECT d.d_year, COUNT(*) AS cnt FROM store_sales ss, date_dim d \
               WHERE ss.ss_sold_date_sk = d.d_date_sk AND d.d_moy = 4 \
               GROUP BY d.d_year",
        suffix: "ORDER BY 1 DESC LIMIT 5",
        keys: &[(0, true, true)],
        limit: Some(5),
        offset: 0,
    },
    CorpusQuery {
        id: "dsb_brand_qty",
        base: "SELECT i.i_brand, COUNT(*) AS cnt, SUM(ss.ss_quantity) AS qty \
               FROM store_sales ss, item i, date_dim d \
               WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_date_sk = d.d_date_sk \
                 AND d.d_year = 2000 GROUP BY i.i_brand",
        suffix: "ORDER BY 3 DESC, 1 LIMIT 10",
        keys: &[(2, true, true), (0, false, false)],
        limit: Some(10),
        offset: 0,
    },
    CorpusQuery {
        id: "dsb_dep_counts",
        base: "SELECT hd.hd_dep_count, COUNT(*) AS cnt \
               FROM store_sales ss, household_demographics hd \
               WHERE ss.ss_hdemo_sk = hd.hd_demo_sk GROUP BY hd.hd_dep_count",
        suffix: "ORDER BY 1 LIMIT 12",
        keys: &[(0, false, false)],
        limit: Some(12),
        offset: 0,
    },
    CorpusQuery {
        id: "dsb_sales_scan",
        base: "SELECT ss.ss_ticket_number, ss.ss_quantity \
               FROM store_sales ss, date_dim d \
               WHERE ss.ss_sold_date_sk = d.d_date_sk AND d.d_moy = 1 \
                 AND ss.ss_quantity > 95",
        suffix: "ORDER BY 2 DESC, 1 LIMIT 25 OFFSET 5",
        keys: &[(1, true, true), (0, false, false)],
        limit: Some(25),
        offset: 5,
    },
];

fn database_for(w: &Workload) -> Database {
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }
    db
}

/// Exact positional equality; float cells get a relative tolerance
/// (aggregate sums differ in the last ulps across join orders).
fn cell_matches(a: &ScalarValue, b: &ScalarValue) -> bool {
    match (a, b) {
        (ScalarValue::Float64(x), ScalarValue::Float64(y)) => {
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        _ => a == b,
    }
}

fn assert_rows_match(expected: &[Vec<ScalarValue>], got: &[Vec<ScalarValue>], what: &str) {
    assert_eq!(expected.len(), got.len(), "{what}: row count");
    for (i, (e, g)) in expected.iter().zip(got).enumerate() {
        assert_eq!(e.len(), g.len(), "{what}: row {i} width");
        for (c, (ev, gv)) in e.iter().zip(g).enumerate() {
            assert!(
                cell_matches(ev, gv),
                "{what}: row {i} col {c}: expected {ev:?}, got {gv:?}\nexpected rows: {expected:?}\ngot rows: {got:?}"
            );
        }
    }
}

/// The naive reference: unordered query at Baseline / threads=1 /
/// partition_count=1, rows sorted with `sort_unstable_by` under the same
/// total order the engine publishes, then OFFSET/LIMIT applied by slicing.
fn reference_rows(db: &Database, q: &CorpusQuery) -> Vec<Vec<ScalarValue>> {
    let opts = QueryOptions::new(Mode::Baseline)
        .with_threads(1)
        .with_partition_count(1);
    let mut rows = db
        .query(q.base, &opts)
        .unwrap_or_else(|e| panic!("{}: reference failed: {e}", q.id))
        .rows;
    let keys = q.sort_keys();
    rows.sort_unstable_by(|a, b| cmp_scalar_rows(&keys, a, b));
    let lo = q.offset.min(rows.len());
    let hi = q
        .limit
        .map(|l| lo.saturating_add(l).min(rows.len()))
        .unwrap_or(rows.len());
    rows[lo..hi].to_vec()
}

fn check_corpus(w: &Workload, corpus: &[CorpusQuery]) {
    let db = database_for(w);
    for q in corpus {
        let expected = reference_rows(&db, q);
        assert!(
            q.limit.is_none() || !expected.is_empty(),
            "{} {}: degenerate corpus query (empty reference)",
            w.name,
            q.id
        );
        let sql = q.sql();
        for parts in [1usize, 8] {
            for sched in [
                SchedulerKind::Global,
                SchedulerKind::Scoped,
                SchedulerKind::Stealing,
            ] {
                for elide in [true, false] {
                    // The agg-fast × storage sub-matrix only multiplies the
                    // default elision leg; the elision-off leg runs once per
                    // scheduler (its interaction surface is the sink route).
                    let combos: &[(bool, bool)] = if elide {
                        &[(true, true), (true, false), (false, true), (false, false)]
                    } else {
                        &[(true, true)]
                    };
                    for &(agg_fast, storage) in combos {
                        let opts = QueryOptions::new(Mode::RobustPredicateTransfer)
                            .with_partition_count(parts)
                            .with_scheduler(sched)
                            .with_threads(2)
                            .with_workers(4)
                            .with_agg_fast(agg_fast)
                            .with_storage_encoding(storage)
                            .with_repartition_elide(elide);
                        let leg = format!(
                            "{} {} [parts={parts} sched={sched:?} elide={elide} agg_fast={agg_fast} storage={storage}]",
                            w.name, q.id
                        );
                        let r = db
                            .query(&sql, &opts)
                            .unwrap_or_else(|e| panic!("{leg}: query failed: {e}"));
                        assert_rows_match(&expected, &r.rows, &leg);
                        // Elision-off must never take the Preserve route.
                        if !elide {
                            assert_eq!(
                                r.metrics.repartition_elided_chunks, 0,
                                "{leg}: elided chunks while disabled"
                            );
                        }
                        // The TopK bound: no sort run may retain more than
                        // limit + offset rows.
                        if let Some(limit) = q.limit {
                            assert!(
                                r.metrics.sort_max_run_rows <= (limit + q.offset) as u64,
                                "{leg}: sort run exceeded the TopK bound: {:?}",
                                r.metrics
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn tpch_corpus_all_legs() {
    check_corpus(&tpch(0.05, 42), TPCH_QUERIES);
}

#[test]
fn tpcds_corpus_all_legs() {
    check_corpus(&tpcds(0.05, 7), TPCDS_QUERIES);
}

#[test]
fn job_corpus_all_legs() {
    check_corpus(&job(0.05, 5), JOB_QUERIES);
}

#[test]
fn dsb_corpus_all_legs() {
    check_corpus(&dsb(0.05, 9), DSB_QUERIES);
}

#[test]
fn corpus_covers_twenty_queries_and_topk_prunes() {
    let total = TPCH_QUERIES.len() + TPCDS_QUERIES.len() + JOB_QUERIES.len() + DSB_QUERIES.len();
    assert!(total >= 20, "corpus shrank to {total} queries");
    // A wide-input TopK query must actually discard rows before the merge
    // (the sink never holds a full sort of its input).
    let w = tpch(0.05, 42);
    let db = database_for(&w);
    let q = &TPCH_QUERIES[1]; // h_lineitem_ship: 3k lineitems, LIMIT 20
    let r = db
        .query(
            &q.sql(),
            &QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_partition_count(8)
                .with_threads(2)
                .with_workers(4),
        )
        .expect("topk query");
    assert!(
        r.metrics.sort_rows_pruned > 0,
        "TopK never pruned: {:?}",
        r.metrics
    );
    assert!(r.metrics.sort_merge_tasks > 0, "{:?}", r.metrics);
}

#[test]
fn single_thread_single_partition_is_bit_deterministic() {
    let w = tpch(0.05, 42);
    let db = database_for(&w);
    for q in &TPCH_QUERIES[..3] {
        let opts = QueryOptions::new(Mode::RobustPredicateTransfer)
            .with_threads(1)
            .with_partition_count(1);
        let a = db.query(&q.sql(), &opts).expect("first run");
        let b = db.query(&q.sql(), &opts).expect("second run");
        // Bitwise equality, floats included — no tolerance.
        assert_eq!(a.rows, b.rows, "{}: nondeterministic output", q.id);
    }
}

/// The forced-spill leg of the corpus: every TPC-H corpus query under a
/// 1 KiB query-wide memory budget (the governor pushes every materializing
/// sink to disk) across partition counts and the global/stealing
/// schedulers, still matching the naive reference row-for-row — and no
/// spill file survives any query.
#[test]
fn tpch_corpus_under_tiny_memory_budget() {
    let w = tpch(0.05, 42);
    let db = database_for(&w);
    let dir = std::env::temp_dir().join(format!("rpt_corpus_budget_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for q in TPCH_QUERIES {
        let expected = reference_rows(&db, q);
        let sql = q.sql();
        for parts in [1usize, 8] {
            for sched in [SchedulerKind::Global, SchedulerKind::Stealing] {
                let mut opts = QueryOptions::new(Mode::RobustPredicateTransfer)
                    .with_partition_count(parts)
                    .with_scheduler(sched)
                    .with_threads(2)
                    .with_workers(4)
                    .with_memory_budget(Some(1024));
                opts.spill_dir = dir.clone();
                let leg = format!("{} [budget parts={parts} sched={sched:?}]", q.id);
                let r = db
                    .query(&sql, &opts)
                    .unwrap_or_else(|e| panic!("{leg}: query failed: {e}"));
                assert_rows_match(&expected, &r.rows, &leg);
            }
        }
    }
    let leftovers = std::fs::read_dir(&dir)
        .map(|it| {
            it.filter(|e| {
                e.as_ref()
                    .map(|e| e.file_name().to_string_lossy().starts_with("rpt_spill_"))
                    .unwrap_or(false)
            })
            .count()
        })
        .unwrap_or(0);
    assert_eq!(leftovers, 0, "budgeted corpus leaked spill files");
    std::fs::remove_dir_all(&dir).ok();
}
