//! Cross-mode correctness on hand-built schemas: chains, stars, composite
//! keys, self-joins, empty results, NULL join keys — all five execution
//! modes must agree with the baseline under arbitrary join orders.
//!
//! Also includes a property test: random join queries over random data,
//! executed under every mode and several random orders, always produce the
//! baseline's result (the engine-level statement of "join ordering does not
//! affect correctness, only cost").

use proptest::prelude::*;
use rpt_common::{DataType, Field, ScalarValue, Schema, Vector};
use rpt_core::{random_left_deep, Database, JoinOrder, Mode, QueryOptions, SchedulerKind};
use rpt_storage::Table;

fn table(name: &str, cols: Vec<(&str, Vector)>) -> Table {
    let schema = Schema::new(
        cols.iter()
            .map(|(n, v)| Field::new(*n, v.data_type()))
            .collect(),
    );
    Table::new(name, schema, cols.into_iter().map(|(_, v)| v).collect()).expect("valid table")
}

fn run_all_modes(db: &Database, sql: &str) -> Vec<(Mode, Vec<Vec<ScalarValue>>)> {
    Mode::ALL
        .iter()
        .map(|&m| {
            let r = db
                .query(sql, &QueryOptions::new(m))
                .unwrap_or_else(|e| panic!("{m:?} failed: {e}"));
            (m, r.sorted_rows())
        })
        .collect()
}

fn assert_modes_agree(db: &Database, sql: &str) {
    let results = run_all_modes(db, sql);
    let (m0, base) = &results[0];
    for (m, rows) in &results[1..] {
        assert_eq!(rows, base, "{m:?} differs from {m0:?} on {sql}");
    }
}

const CHAIN_SQL: &str = "SELECT COUNT(*) FROM a, b, c \
                         WHERE a.k = b.k AND b.j = c.j AND a.v = 2 AND c.tag = 't1'";

fn chain_db() -> Database {
    let mut db = Database::new();
    db.register_table(table(
        "a",
        vec![
            ("k", Vector::from_i64((0..50).collect())),
            ("v", Vector::from_i64((0..50).map(|i| i % 5).collect())),
        ],
    ));
    db.register_table(table(
        "b",
        vec![
            ("k", Vector::from_i64((0..200).map(|i| i % 50).collect())),
            ("j", Vector::from_i64((0..200).map(|i| i % 20).collect())),
        ],
    ));
    db.register_table(table(
        "c",
        vec![
            ("j", Vector::from_i64((0..20).collect())),
            (
                "tag",
                Vector::from_utf8((0..20).map(|i| format!("t{}", i % 3)).collect()),
            ),
        ],
    ));
    db
}

#[test]
fn chain_join_with_filters() {
    assert_modes_agree(&chain_db(), CHAIN_SQL);
}

const COMPOSITE_SQL: &str = "SELECT COUNT(*), SUM(l.pay) FROM left_t l, right_t r \
                             WHERE l.x = r.x AND l.y = r.y";

fn composite_db() -> Database {
    let mut db = Database::new();
    db.register_table(table(
        "left_t",
        vec![
            ("x", Vector::from_i64((0..100).map(|i| i % 10).collect())),
            ("y", Vector::from_i64((0..100).map(|i| i % 7).collect())),
            ("pay", Vector::from_i64((0..100).collect())),
        ],
    ));
    db.register_table(table(
        "right_t",
        vec![
            ("x", Vector::from_i64((0..70).map(|i| i % 10).collect())),
            ("y", Vector::from_i64((0..70).map(|i| i % 7).collect())),
        ],
    ));
    db
}

#[test]
fn composite_key_join() {
    assert_modes_agree(&composite_db(), COMPOSITE_SQL);
}

// 2-hop paths: edges e1 joined to edges e2 on e1.dst = e2.src.
const SELF_JOIN_SQL: &str =
    "SELECT COUNT(*) FROM edges e1, edges e2 WHERE e1.dst = e2.src AND e1.src = 0";

fn edges_db() -> Database {
    let mut db = Database::new();
    db.register_table(table(
        "edges",
        vec![
            ("src", Vector::from_i64((0..100).map(|i| i % 10).collect())),
            (
                "dst",
                Vector::from_i64((0..100).map(|i| (i + 3) % 10).collect()),
            ),
        ],
    ));
    db
}

#[test]
fn self_join_via_aliases() {
    assert_modes_agree(&edges_db(), SELF_JOIN_SQL);
}

const EMPTY_SQL: &str = "SELECT COUNT(*) FROM t1, t2 WHERE t1.k = t2.k";

fn empty_db() -> Database {
    let mut db = Database::new();
    db.register_table(table("t1", vec![("k", Vector::from_i64(vec![1, 2, 3]))]));
    db.register_table(table(
        "t2",
        vec![
            ("k", Vector::from_i64(vec![10, 20])),
            ("z", Vector::from_i64(vec![0, 0])),
        ],
    ));
    db
}

#[test]
fn empty_result_is_consistent() {
    let db = empty_db();
    // Keys never match: output empty, COUNT(*) = 0 everywhere.
    let results = run_all_modes(&db, EMPTY_SQL);
    for (m, rows) in results {
        assert_eq!(rows, vec![vec![ScalarValue::Int64(0)]], "{m:?}");
    }
}

const NULL_KEYS_SQL: &str = "SELECT COUNT(*) FROM n1, n2 WHERE n1.k = n2.k";

fn null_keys_db() -> Database {
    let mut k1 = Vector::new_empty(DataType::Int64);
    k1.push(&ScalarValue::Int64(1)).unwrap();
    k1.push(&ScalarValue::Null).unwrap();
    k1.push(&ScalarValue::Int64(2)).unwrap();
    let mut k2 = Vector::new_empty(DataType::Int64);
    k2.push(&ScalarValue::Null).unwrap();
    k2.push(&ScalarValue::Int64(1)).unwrap();
    let mut db = Database::new();
    db.register_table(table("n1", vec![("k", k1)]));
    db.register_table(table("n2", vec![("k", k2)]));
    db
}

#[test]
fn null_join_keys_never_match() {
    let db = null_keys_db();
    let results = run_all_modes(&db, NULL_KEYS_SQL);
    for (m, rows) in results {
        assert_eq!(rows, vec![vec![ScalarValue::Int64(1)]], "{m:?}");
    }
}

// §3.2's example: R(A,B,C) ⋈ S(A,B) ⋈ T(B,C); only join tree S–R–T.
const ALPHA_NOT_GAMMA_SQL: &str = "SELECT COUNT(*) FROM r3, s2, t2 \
     WHERE r3.a = s2.a AND r3.b = s2.b AND r3.b = t2.b AND r3.c = t2.c";

fn alpha_not_gamma_db() -> Database {
    let mut db = Database::new();
    let n = 40i64;
    db.register_table(table(
        "r3",
        vec![
            ("a", Vector::from_i64((0..n).collect())),
            ("b", Vector::from_i64(vec![1; n as usize])),
            ("c", Vector::from_i64((0..n).collect())),
        ],
    ));
    db.register_table(table(
        "s2",
        vec![
            ("a", Vector::from_i64((0..n).collect())),
            ("b", Vector::from_i64(vec![1; n as usize])),
        ],
    ));
    db.register_table(table(
        "t2",
        vec![
            ("b", Vector::from_i64(vec![1; n as usize])),
            ("c", Vector::from_i64((0..n).collect())),
        ],
    ));
    db
}

#[test]
fn alpha_not_gamma_acyclic_query_runs() {
    let db = alpha_not_gamma_db();
    let sql = ALPHA_NOT_GAMMA_SQL;
    let q = {
        let q = db.bind_sql(sql).unwrap();
        assert!(q.is_alpha_acyclic());
        assert!(!q.is_gamma_acyclic());
        q
    };
    // The unsafe order (S ⋈ T first) still yields correct results — safety
    // is about cost, not correctness.
    let graph = q.graph();
    assert!(!rpt_graph::safe_subjoin(&graph, &[1, 2]));
    assert_modes_agree(&db, sql);
    let bad_order = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_order(JoinOrder::LeftDeep(vec![1, 2, 0]));
    let good_order = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_order(JoinOrder::LeftDeep(vec![1, 0, 2]));
    let bad = db.execute(&q, &bad_order).unwrap();
    let good = db.execute(&q, &good_order).unwrap();
    assert_eq!(bad.sorted_rows(), good.sorted_rows());
    // And the unsafe order really does blow up (quadratic S⋈T).
    assert!(
        bad.metrics.join_output_rows > good.metrics.join_output_rows * 5,
        "unsafe {} vs safe {}",
        bad.metrics.join_output_rows,
        good.metrics.join_output_rows
    );
}

// ------------------------------------------------------------ property test

/// Random 3-table instances: every mode × several random orders must match
/// the baseline count.
fn prop_db(keys_a: &[i64], keys_b: &[i64], keys_c: &[i64]) -> Database {
    let mut db = Database::new();
    db.register_table(table("pa", vec![("k", Vector::from_i64(keys_a.to_vec()))]));
    db.register_table(table(
        "pb",
        vec![
            ("k", Vector::from_i64(keys_b.to_vec())),
            (
                "j",
                Vector::from_i64(keys_b.iter().map(|k| k % 5).collect()),
            ),
        ],
    ));
    db.register_table(table("pc", vec![("j", Vector::from_i64(keys_c.to_vec()))]));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_instances_all_modes_agree(
        keys_a in proptest::collection::vec(0i64..12, 1..60),
        keys_b in proptest::collection::vec(0i64..12, 1..60),
        keys_c in proptest::collection::vec(0i64..5, 1..20),
        order_seed in 0u64..50,
    ) {
        let db = prop_db(&keys_a, &keys_b, &keys_c);
        let sql = "SELECT COUNT(*) FROM pa, pb, pc WHERE pa.k = pb.k AND pb.j = pc.j";
        let q = db.bind_sql(sql).unwrap();
        let base = db
            .execute(&q, &QueryOptions::new(Mode::Baseline))
            .unwrap()
            .sorted_rows();
        let graph = q.graph();
        let order = JoinOrder::LeftDeep(random_left_deep(&graph, order_seed));
        for mode in Mode::ALL {
            let r = db
                .execute(&q, &QueryOptions::new(mode).with_order(order.clone()))
                .unwrap();
            prop_assert_eq!(r.sorted_rows(), base.clone(), "mode {:?}", mode);
        }
    }
}

// ------------------------------------------------- scheduler parity test

/// GROUP BY over the chain schema: 20 groups, SUM + COUNT aggregates, and
/// a SELECT order that forces a reprojection pipeline *consuming* the
/// aggregate buffer (the partitioned aggregate sink's downstream case).
const GROUP_BY_SQL: &str = "SELECT COUNT(*) AS cnt, SUM(b.k) AS s, b.j \
                            FROM b, c WHERE b.j = c.j GROUP BY b.j";

/// Every (database, query) pair exercised in this file.
fn scheduler_parity_cases() -> Vec<(Database, String)> {
    vec![
        (chain_db(), CHAIN_SQL.to_string()),
        (composite_db(), COMPOSITE_SQL.to_string()),
        (edges_db(), SELF_JOIN_SQL.to_string()),
        (empty_db(), EMPTY_SQL.to_string()),
        (null_keys_db(), NULL_KEYS_SQL.to_string()),
        (alpha_not_gamma_db(), ALPHA_NOT_GAMMA_SQL.to_string()),
        (
            prop_db(&[1, 2, 2, 3, 9], &[2, 2, 3, 4, 5, 5], &[0, 1, 2]),
            "SELECT COUNT(*) FROM pa, pb, pc WHERE pa.k = pb.k AND pb.j = pc.j".to_string(),
        ),
        (chain_db(), GROUP_BY_SQL.to_string()),
    ]
}

/// Result parity: every query in this file returns identical rows through
/// the sequential scheduler (`pipeline_parallelism = 1`, which dispatches
/// in stable topological = plan order) and the concurrent DAG scheduler,
/// under every execution mode.
#[test]
fn sequential_and_concurrent_schedulers_agree() {
    for (db, sql) in scheduler_parity_cases() {
        for mode in Mode::ALL {
            let seq = db
                .query(&sql, &QueryOptions::new(mode).with_pipeline_parallelism(1))
                .unwrap_or_else(|e| panic!("seq {mode:?} failed on {sql}: {e}"));
            let conc = db
                .query(&sql, &QueryOptions::new(mode).with_pipeline_parallelism(8))
                .unwrap_or_else(|e| panic!("conc {mode:?} failed on {sql}: {e}"));
            assert_eq!(
                seq.sorted_rows(),
                conc.sorted_rows(),
                "{mode:?} parity failure on {sql}"
            );
            // The DAG scheduler ran and reported stats for both runs.
            for r in [&seq, &conc] {
                assert!(
                    r.trace.iter().any(|(l, _)| l == "[scheduler] pipelines"),
                    "scheduler stats missing from trace: {:?}",
                    r.trace
                );
            }
        }
    }
}

/// Parity matrix: every query in this file, under every mode, must produce
/// identical sorted results at every `partition_count ∈ {1, 2, 8}` ×
/// `pipeline_parallelism ∈ {1, 4}` point — the partitioned sinks and the
/// concurrent scheduler may only change *how* results are materialized,
/// never *what* they contain.
#[test]
fn partition_parallelism_parity_matrix() {
    for (db, sql) in scheduler_parity_cases() {
        for mode in Mode::ALL {
            let mut baseline: Option<Vec<Vec<ScalarValue>>> = None;
            for partition_count in [1usize, 2, 8] {
                for pipeline_parallelism in [1usize, 4] {
                    let r = db
                        .query(
                            &sql,
                            &QueryOptions::new(mode)
                                .with_partition_count(partition_count)
                                .with_pipeline_parallelism(pipeline_parallelism),
                        )
                        .unwrap_or_else(|e| {
                            panic!(
                                "{mode:?} pc={partition_count} pp={pipeline_parallelism} \
                                 failed on {sql}: {e}"
                            )
                        });
                    let rows = r.sorted_rows();
                    match &baseline {
                        None => baseline = Some(rows),
                        Some(b) => assert_eq!(
                            &rows, b,
                            "{mode:?} pc={partition_count} pp={pipeline_parallelism} \
                             differs on {sql}"
                        ),
                    }
                }
            }
        }
    }
}

/// The acceptance check for partitioned sinks: with `partition_count > 1`
/// no sink merge runs on a single thread over the full result. Every
/// partitioned sink must report one merge task per partition, and for
/// pipelines with enough rows to spread, the largest merge task must stay
/// strictly below the pipeline's total.
#[test]
fn partitioned_merges_never_cover_the_full_result() {
    let db = chain_db();
    let partitions = 8u64;
    let r = db
        .query(
            CHAIN_SQL,
            &QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_partition_count(partitions as usize)
                .with_threads(2)
                .with_pipeline_parallelism(4),
        )
        .unwrap();
    // Scheduler-level stats: merges happened and none spanned a full
    // pipeline result (the largest pipeline feeds 200 rows into its sink).
    let stat = |name: &str| {
        r.trace
            .iter()
            .find(|(l, _)| l == name)
            .unwrap_or_else(|| panic!("{name} missing from trace {:?}", r.trace))
            .1
    };
    assert!(stat("[scheduler] merge-tasks") >= partitions);
    assert_eq!(r.metrics.merge_tasks, stat("[scheduler] merge-tasks"));

    // Per-pipeline: every partitioned merge ran `partitions` tasks, and no
    // merge task covered a pipeline's full row count (checked where the
    // hash spread is statistically certain: ≥ 8 rows into the sink).
    let pipeline_rows: Vec<(&str, u64)> = r
        .trace
        .iter()
        .filter(|(l, _)| !l.starts_with('['))
        .map(|(l, n)| (l.as_str(), *n))
        .collect();
    let mut checked = 0;
    for (label, rows) in pipeline_rows {
        let tasks = r
            .trace
            .iter()
            .find(|(l, _)| l == &format!("[merge] {label} tasks"))
            .map(|&(_, n)| n);
        let max_task = r
            .trace
            .iter()
            .find(|(l, _)| l == &format!("[merge] {label} max-task-rows"))
            .map(|&(_, n)| n);
        if let (Some(tasks), Some(max_task)) = (tasks, max_task) {
            assert_eq!(tasks, partitions, "{label}");
            if rows >= 8 {
                assert!(
                    max_task < rows,
                    "{label}: merge task covered {max_task} of {rows} rows"
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 2, "expected ≥2 spread-checked sink merges");
}

/// Global-vs-Scoped scheduler parity: every query in this file, under
/// every mode, returns identical rows through the global worker pool and
/// the legacy scoped scheduler, across the `partition_count × worker-count`
/// matrix. With the default `threads == 1` both schedulers consume chunks
/// in the same order, so equality is exact (floats included).
#[test]
fn global_and_scoped_schedulers_agree() {
    for (db, sql) in scheduler_parity_cases() {
        for mode in Mode::ALL {
            let scoped = db
                .query(
                    &sql,
                    &QueryOptions::new(mode).with_scheduler(SchedulerKind::Scoped),
                )
                .unwrap_or_else(|e| panic!("scoped {mode:?} failed on {sql}: {e}"));
            for partition_count in [1usize, 2, 8] {
                for workers in [1usize, 2, 8] {
                    let global = db
                        .query(
                            &sql,
                            &QueryOptions::new(mode)
                                .with_scheduler(SchedulerKind::Global)
                                .with_partition_count(partition_count)
                                .with_workers(workers),
                        )
                        .unwrap_or_else(|e| {
                            panic!(
                                "global {mode:?} pc={partition_count} w={workers} \
                                 failed on {sql}: {e}"
                            )
                        });
                    assert_eq!(
                        global.sorted_rows(),
                        scoped.sorted_rows(),
                        "{mode:?} pc={partition_count} w={workers} differs on {sql}"
                    );
                    // Deterministic work totals under any scheduling.
                    assert_eq!(
                        global.metrics.intermediate_tuples, scoped.metrics.intermediate_tuples,
                        "{mode:?} pc={partition_count} w={workers} totals differ on {sql}"
                    );
                    // The global scheduler reported its task accounting.
                    for stat in ["[scheduler] pipelines", "[scheduler] tasks"] {
                        assert!(
                            global.trace.iter().any(|(l, _)| l == stat),
                            "{stat} missing from global trace: {:?}",
                            global.trace
                        );
                    }
                }
            }
        }
    }
}

/// GROUP BY matrix (the aggregate-sink acceptance check): a grouped
/// aggregation returns identical groups through the global and scoped
/// schedulers at every `partition_count {1,2,8} × workers {1,2,8}` point,
/// and with `partition_count > 1` its merge runs as per-partition tasks,
/// none of which covers the full group set.
#[test]
fn groupby_partition_worker_matrix_global_vs_scoped() {
    let db = chain_db();
    let baseline = db
        .query(
            GROUP_BY_SQL,
            &QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_scheduler(SchedulerKind::Scoped)
                .with_partition_count(1),
        )
        .unwrap();
    let groups = baseline.rows.len() as u64;
    assert_eq!(groups, 20, "20 distinct b.j groups");
    for kind in [SchedulerKind::Global, SchedulerKind::Scoped] {
        for partition_count in [1usize, 2, 8] {
            for workers in [1usize, 2, 8] {
                for agg_fast in [true, false] {
                    let r = db
                    .query(
                        GROUP_BY_SQL,
                        &QueryOptions::new(Mode::RobustPredicateTransfer)
                            .with_scheduler(kind)
                            .with_partition_count(partition_count)
                            .with_workers(workers)
                            .with_agg_fast(agg_fast),
                    )
                    .unwrap_or_else(|e| {
                        panic!("{kind:?} pc={partition_count} w={workers} fast={agg_fast} failed: {e}")
                    });
                    assert_eq!(
                        r.sorted_rows(),
                        baseline.sorted_rows(),
                        "{kind:?} pc={partition_count} w={workers} fast={agg_fast} differs"
                    );
                    // The GROUP BY key is a single Int64, so the requested
                    // group-table path is the one that actually consumed chunks.
                    if agg_fast {
                        assert!(
                            r.metrics.agg_fast_path_chunks > 0 && r.metrics.agg_generic_chunks == 0,
                            "{kind:?} pc={partition_count} w={workers}: expected fast path, \
                         fast={} generic={}",
                            r.metrics.agg_fast_path_chunks,
                            r.metrics.agg_generic_chunks
                        );
                    } else {
                        assert!(
                            r.metrics.agg_generic_chunks > 0 && r.metrics.agg_fast_path_chunks == 0,
                            "{kind:?} pc={partition_count} w={workers}: expected generic path, \
                         fast={} generic={}",
                            r.metrics.agg_fast_path_chunks,
                            r.metrics.agg_generic_chunks
                        );
                    }
                    if partition_count > 1 {
                        // The GROUP BY merge ran one task per partition and no
                        // task saw all 20 groups.
                        let agg_tasks = r
                            .trace
                            .iter()
                            .find(|(l, _)| {
                                l.starts_with("[merge] aggregate") && l.ends_with("tasks")
                            })
                            .unwrap_or_else(|| {
                                panic!(
                                    "{kind:?} pc={partition_count} w={workers}: no aggregate \
                                 merge tasks in trace {:?}",
                                    r.trace
                                )
                            })
                            .1;
                        assert_eq!(agg_tasks, partition_count as u64);
                        let agg_max = r
                            .trace
                            .iter()
                            .find(|(l, _)| {
                                l.starts_with("[merge] aggregate") && l.ends_with("max-task-rows")
                            })
                            .expect("aggregate merge max-task-rows entry")
                            .1;
                        assert!(
                            agg_max < groups,
                            "{kind:?} pc={partition_count} w={workers}: an aggregate merge \
                         task covered {agg_max} of {groups} groups"
                        );
                    }
                }
            }
        }
    }
}

/// The fast-path acceptance check: on an all-`Int64` GROUP BY the fixed-key
/// tables engage automatically (`agg_fast_path_chunks > 0`), and with
/// `threads == 1` the output rows are *byte-identical* — same rows, same
/// order, exact values — between the fast and generic paths at every
/// partition count.
#[test]
fn agg_fast_path_engages_and_is_byte_identical() {
    let db = chain_db();
    for partition_count in [1usize, 8] {
        let opts = |fast: bool| {
            QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_partition_count(partition_count)
                .with_agg_fast(fast)
        };
        let fast = db.query(GROUP_BY_SQL, &opts(true)).unwrap();
        let generic = db.query(GROUP_BY_SQL, &opts(false)).unwrap();
        assert!(
            fast.metrics.agg_fast_path_chunks > 0,
            "pc={partition_count}: fast path did not engage"
        );
        assert_eq!(fast.metrics.agg_generic_chunks, 0, "pc={partition_count}");
        assert!(
            generic.metrics.agg_generic_chunks > 0,
            "pc={partition_count}"
        );
        assert_eq!(
            generic.metrics.agg_fast_path_chunks, 0,
            "pc={partition_count}"
        );
        // Unsorted, exact comparison: identical routing hashes → identical
        // partition contents → identical encoded-key order and values.
        assert_eq!(
            fast.rows, generic.rows,
            "pc={partition_count}: paths are not byte-identical"
        );
        // The metrics land in the trace for case studies.
        assert!(
            fast.trace
                .iter()
                .any(|(l, v)| l == "[agg] fast-path-chunks" && *v > 0),
            "trace missing fast-path chunks: {:?}",
            fast.trace
        );
    }
}

/// A `Utf8` GROUP BY key packs into the fixed-width fast path when the
/// block storage layer dictionary-encodes the column (32-bit codes), and
/// falls back to the generic tables when encoded storage is off — with
/// identical results either way, across partition counts.
#[test]
fn utf8_group_key_fast_path_follows_storage_encoding() {
    let db = chain_db();
    let sql = "SELECT c.tag, COUNT(*) AS n FROM b, c WHERE b.j = c.j GROUP BY c.tag";
    let mut baseline: Option<Vec<Vec<ScalarValue>>> = None;
    for partition_count in [1usize, 8] {
        for encoded in [true, false] {
            let r = db
                .query(
                    sql,
                    &QueryOptions::new(Mode::RobustPredicateTransfer)
                        .with_partition_count(partition_count)
                        .with_agg_fast(true)
                        .with_storage_encoding(encoded),
                )
                .unwrap();
            if encoded {
                assert!(
                    r.metrics.agg_fast_path_chunks > 0,
                    "pc={partition_count}: dictionary-coded Utf8 key must take the fast path"
                );
                assert_eq!(r.metrics.agg_generic_chunks, 0, "pc={partition_count}");
            } else {
                assert_eq!(
                    r.metrics.agg_fast_path_chunks, 0,
                    "pc={partition_count}: raw-layout Utf8 key must not take the fast path"
                );
                assert!(r.metrics.agg_generic_chunks > 0, "pc={partition_count}");
            }
            assert_eq!(r.rows.len(), 3, "three distinct tags");
            match &baseline {
                None => baseline = Some(r.sorted_rows()),
                Some(b) => assert_eq!(
                    &r.sorted_rows(),
                    b,
                    "pc={partition_count} encoded={encoded}"
                ),
            }
        }
    }
}

/// The transfer phase of a star query has independent per-relation
/// CreateBF builds; the DAG scheduler must surface that parallelism
/// (initially-ready > 1) while still producing the sequential result.
#[test]
fn transfer_pass_exposes_parallelism() {
    let db = chain_db();
    let opts = QueryOptions::new(Mode::RobustPredicateTransfer).with_pipeline_parallelism(8);
    let r = db.query(CHAIN_SQL, &opts).unwrap();
    let ready = r
        .trace
        .iter()
        .find(|(l, _)| l == "[scheduler] initially-ready")
        .map(|&(_, v)| v)
        .unwrap();
    assert!(
        ready > 1,
        "expected >1 initially-ready pipelines, trace: {:?}",
        r.trace
    );
}
