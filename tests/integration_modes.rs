//! Cross-mode correctness on hand-built schemas: chains, stars, composite
//! keys, self-joins, empty results, NULL join keys — all five execution
//! modes must agree with the baseline under arbitrary join orders.
//!
//! Also includes a property test: random join queries over random data,
//! executed under every mode and several random orders, always produce the
//! baseline's result (the engine-level statement of "join ordering does not
//! affect correctness, only cost").

use proptest::prelude::*;
use rpt_common::{DataType, Field, ScalarValue, Schema, Vector};
use rpt_core::{random_left_deep, Database, JoinOrder, Mode, QueryOptions};
use rpt_storage::Table;

fn table(name: &str, cols: Vec<(&str, Vector)>) -> Table {
    let schema = Schema::new(
        cols.iter()
            .map(|(n, v)| Field::new(*n, v.data_type()))
            .collect(),
    );
    Table::new(name, schema, cols.into_iter().map(|(_, v)| v).collect()).expect("valid table")
}

fn run_all_modes(db: &Database, sql: &str) -> Vec<(Mode, Vec<Vec<ScalarValue>>)> {
    Mode::ALL
        .iter()
        .map(|&m| {
            let r = db
                .query(sql, &QueryOptions::new(m))
                .unwrap_or_else(|e| panic!("{m:?} failed: {e}"));
            (m, r.sorted_rows())
        })
        .collect()
}

fn assert_modes_agree(db: &Database, sql: &str) {
    let results = run_all_modes(db, sql);
    let (m0, base) = &results[0];
    for (m, rows) in &results[1..] {
        assert_eq!(rows, base, "{m:?} differs from {m0:?} on {sql}");
    }
}

#[test]
fn chain_join_with_filters() {
    let mut db = Database::new();
    db.register_table(table(
        "a",
        vec![
            ("k", Vector::from_i64((0..50).collect())),
            ("v", Vector::from_i64((0..50).map(|i| i % 5).collect())),
        ],
    ));
    db.register_table(table(
        "b",
        vec![
            ("k", Vector::from_i64((0..200).map(|i| i % 50).collect())),
            ("j", Vector::from_i64((0..200).map(|i| i % 20).collect())),
        ],
    ));
    db.register_table(table(
        "c",
        vec![
            ("j", Vector::from_i64((0..20).collect())),
            ("tag", Vector::from_utf8((0..20).map(|i| format!("t{}", i % 3)).collect())),
        ],
    ));
    assert_modes_agree(
        &db,
        "SELECT COUNT(*) FROM a, b, c \
         WHERE a.k = b.k AND b.j = c.j AND a.v = 2 AND c.tag = 't1'",
    );
}

#[test]
fn composite_key_join() {
    let mut db = Database::new();
    db.register_table(table(
        "left_t",
        vec![
            ("x", Vector::from_i64((0..100).map(|i| i % 10).collect())),
            ("y", Vector::from_i64((0..100).map(|i| i % 7).collect())),
            ("pay", Vector::from_i64((0..100).collect())),
        ],
    ));
    db.register_table(table(
        "right_t",
        vec![
            ("x", Vector::from_i64((0..70).map(|i| i % 10).collect())),
            ("y", Vector::from_i64((0..70).map(|i| i % 7).collect())),
        ],
    ));
    assert_modes_agree(
        &db,
        "SELECT COUNT(*), SUM(l.pay) FROM left_t l, right_t r \
         WHERE l.x = r.x AND l.y = r.y",
    );
}

#[test]
fn self_join_via_aliases() {
    let mut db = Database::new();
    db.register_table(table(
        "edges",
        vec![
            ("src", Vector::from_i64((0..100).map(|i| i % 10).collect())),
            ("dst", Vector::from_i64((0..100).map(|i| (i + 3) % 10).collect())),
        ],
    ));
    // 2-hop paths: edges e1 joined to edges e2 on e1.dst = e2.src.
    assert_modes_agree(
        &db,
        "SELECT COUNT(*) FROM edges e1, edges e2 WHERE e1.dst = e2.src AND e1.src = 0",
    );
}

#[test]
fn empty_result_is_consistent() {
    let mut db = Database::new();
    db.register_table(table(
        "t1",
        vec![("k", Vector::from_i64(vec![1, 2, 3]))],
    ));
    db.register_table(table(
        "t2",
        vec![
            ("k", Vector::from_i64(vec![10, 20])),
            ("z", Vector::from_i64(vec![0, 0])),
        ],
    ));
    // Keys never match: output empty, COUNT(*) = 0 everywhere.
    let results = run_all_modes(&db, "SELECT COUNT(*) FROM t1, t2 WHERE t1.k = t2.k");
    for (m, rows) in results {
        assert_eq!(rows, vec![vec![ScalarValue::Int64(0)]], "{m:?}");
    }
}

#[test]
fn null_join_keys_never_match() {
    let mut k1 = Vector::new_empty(DataType::Int64);
    k1.push(&ScalarValue::Int64(1)).unwrap();
    k1.push(&ScalarValue::Null).unwrap();
    k1.push(&ScalarValue::Int64(2)).unwrap();
    let mut k2 = Vector::new_empty(DataType::Int64);
    k2.push(&ScalarValue::Null).unwrap();
    k2.push(&ScalarValue::Int64(1)).unwrap();
    let mut db = Database::new();
    db.register_table(table("n1", vec![("k", k1)]));
    db.register_table(table("n2", vec![("k", k2)]));
    let results = run_all_modes(&db, "SELECT COUNT(*) FROM n1, n2 WHERE n1.k = n2.k");
    for (m, rows) in results {
        assert_eq!(rows, vec![vec![ScalarValue::Int64(1)]], "{m:?}");
    }
}

#[test]
fn alpha_not_gamma_acyclic_query_runs() {
    // §3.2's example: R(A,B,C) ⋈ S(A,B) ⋈ T(B,C); only join tree S–R–T.
    let mut db = Database::new();
    let n = 40i64;
    db.register_table(table(
        "r3",
        vec![
            ("a", Vector::from_i64((0..n).collect())),
            ("b", Vector::from_i64(vec![1; n as usize])),
            ("c", Vector::from_i64((0..n).collect())),
        ],
    ));
    db.register_table(table(
        "s2",
        vec![
            ("a", Vector::from_i64((0..n).collect())),
            ("b", Vector::from_i64(vec![1; n as usize])),
        ],
    ));
    db.register_table(table(
        "t2",
        vec![
            ("b", Vector::from_i64(vec![1; n as usize])),
            ("c", Vector::from_i64((0..n).collect())),
        ],
    ));
    let sql = "SELECT COUNT(*) FROM r3, s2, t2 \
               WHERE r3.a = s2.a AND r3.b = s2.b AND r3.b = t2.b AND r3.c = t2.c";
    let q = {
        let q = db.bind_sql(sql).unwrap();
        assert!(q.is_alpha_acyclic());
        assert!(!q.is_gamma_acyclic());
        q
    };
    // The unsafe order (S ⋈ T first) still yields correct results — safety
    // is about cost, not correctness.
    let graph = q.graph();
    assert!(!rpt_graph::safe_subjoin(&graph, &[1, 2]));
    assert_modes_agree(&db, sql);
    let bad_order = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_order(JoinOrder::LeftDeep(vec![1, 2, 0]));
    let good_order = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_order(JoinOrder::LeftDeep(vec![1, 0, 2]));
    let bad = db.execute(&q, &bad_order).unwrap();
    let good = db.execute(&q, &good_order).unwrap();
    assert_eq!(bad.sorted_rows(), good.sorted_rows());
    // And the unsafe order really does blow up (quadratic S⋈T).
    assert!(
        bad.metrics.join_output_rows > good.metrics.join_output_rows * 5,
        "unsafe {} vs safe {}",
        bad.metrics.join_output_rows,
        good.metrics.join_output_rows
    );
}

// ------------------------------------------------------------ property test

/// Random 3-table instances: every mode × several random orders must match
/// the baseline count.
fn prop_db(keys_a: &[i64], keys_b: &[i64], keys_c: &[i64]) -> Database {
    let mut db = Database::new();
    db.register_table(table(
        "pa",
        vec![("k", Vector::from_i64(keys_a.to_vec()))],
    ));
    db.register_table(table(
        "pb",
        vec![
            ("k", Vector::from_i64(keys_b.to_vec())),
            ("j", Vector::from_i64(keys_b.iter().map(|k| k % 5).collect())),
        ],
    ));
    db.register_table(table(
        "pc",
        vec![("j", Vector::from_i64(keys_c.to_vec()))],
    ));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_instances_all_modes_agree(
        keys_a in proptest::collection::vec(0i64..12, 1..60),
        keys_b in proptest::collection::vec(0i64..12, 1..60),
        keys_c in proptest::collection::vec(0i64..5, 1..20),
        order_seed in 0u64..50,
    ) {
        let db = prop_db(&keys_a, &keys_b, &keys_c);
        let sql = "SELECT COUNT(*) FROM pa, pb, pc WHERE pa.k = pb.k AND pb.j = pc.j";
        let q = db.bind_sql(sql).unwrap();
        let base = db
            .execute(&q, &QueryOptions::new(Mode::Baseline))
            .unwrap()
            .sorted_rows();
        let graph = q.graph();
        let order = JoinOrder::LeftDeep(random_left_deep(&graph, order_seed));
        for mode in Mode::ALL {
            let r = db
                .execute(&q, &QueryOptions::new(mode).with_order(order.clone()))
                .unwrap();
            prop_assert_eq!(r.sorted_rows(), base.clone(), "mode {:?}", mode);
        }
    }
}
