//! End-to-end tests for the block-encoded storage scan path: zone-map
//! pruning driven by pushed-down literal predicates and by transferred
//! Bloom key ranges must skip blocks (observable in the metrics) while
//! producing results identical to the raw-layout scan, across modes and
//! partition counts.

use rpt_common::chunk::VECTOR_SIZE;
use rpt_common::{DataType, Field, ScalarValue, Schema, Vector};
use rpt_core::{Database, Mode, QueryOptions};
use rpt_storage::Table;

fn table(name: &str, cols: Vec<(&str, Vector)>) -> Table {
    let schema = Schema::new(
        cols.iter()
            .map(|(n, v)| Field::new(*n, v.data_type()))
            .collect(),
    );
    Table::new(name, schema, cols.into_iter().map(|(_, v)| v).collect()).expect("valid table")
}

const FACT_ROWS: i64 = 40_000;

/// `fact.fk` is clustered (row i has fk = i), so zone maps are tight and a
/// selective range or key-range predicate can rule out most blocks.
/// `dim` holds a narrow id band in the middle of the fact's key space.
fn db() -> Database {
    let mut db = Database::new();
    db.register_table(table(
        "fact",
        vec![
            ("fk", Vector::from_i64((0..FACT_ROWS).collect())),
            (
                "val",
                Vector::from_i64((0..FACT_ROWS).map(|i| i % 100).collect()),
            ),
        ],
    ));
    db.register_table(table(
        "dim",
        vec![
            ("id", Vector::from_i64((10_000..10_050).collect())),
            ("flag", Vector::from_i64(vec![1; 50])),
            (
                "name",
                Vector::from_utf8((0..50).map(|i| format!("n{}", i % 5)).collect()),
            ),
        ],
    ));
    db
}

fn opts(mode: Mode, encoded: bool) -> QueryOptions {
    QueryOptions::new(mode).with_storage_encoding(encoded)
}

/// A selective `Int64 col < literal` scan prunes every block whose zone
/// range lies past the literal — and the raw-layout scan agrees on rows
/// while recording no block metrics at all.
#[test]
fn literal_range_scan_prunes_blocks() {
    let db = db();
    let sql = "SELECT COUNT(*) FROM fact WHERE fact.fk < 1000";
    let on = db.query(sql, &opts(Mode::Baseline, true)).unwrap();
    assert_eq!(on.scalar_i64(), Some(1000));
    let total_blocks = (FACT_ROWS as u64).div_ceil(VECTOR_SIZE as u64);
    // Only the first block intersects [0, 1000); all others prune.
    assert_eq!(on.metrics.blocks_scanned, 1, "trace: {:?}", on.trace);
    assert_eq!(on.metrics.blocks_pruned, total_blocks - 1);
    assert!(
        on.trace
            .iter()
            .any(|(l, v)| l.starts_with("[storage]") && *v > 0),
        "trace missing [storage] pruning entry: {:?}",
        on.trace
    );

    let off = db.query(sql, &opts(Mode::Baseline, false)).unwrap();
    assert_eq!(off.scalar_i64(), Some(1000));
    assert_eq!(off.metrics.blocks_scanned, 0);
    assert_eq!(off.metrics.blocks_pruned, 0);
}

/// Predicate transfer plants a Bloom filter on the dim side; the fact scan
/// then skips every block outside the filter's observed build-key range
/// [10000, 10049] — pruning driven by a *transferred* predicate, with no
/// base filter on the fact at all.
#[test]
fn transferred_bloom_range_prunes_fact_blocks() {
    let db = db();
    let sql = "SELECT COUNT(*) FROM fact, dim \
               WHERE fact.fk = dim.id AND dim.flag = 1";
    let rpt = db
        .query(sql, &opts(Mode::RobustPredicateTransfer, true))
        .unwrap();
    assert_eq!(rpt.scalar_i64(), Some(50));
    // The 50-key band covers one (maybe two) fact blocks; the rest prune.
    let total_blocks = (FACT_ROWS as u64).div_ceil(VECTOR_SIZE as u64);
    assert!(
        rpt.metrics.blocks_pruned >= total_blocks - 2,
        "expected most of {total_blocks} fact blocks pruned, got {} (trace: {:?})",
        rpt.metrics.blocks_pruned,
        rpt.trace
    );

    // Same query without predicate transfer: no Bloom filter exists, so
    // every fact block must be scanned.
    let base = db.query(sql, &opts(Mode::Baseline, true)).unwrap();
    assert_eq!(base.scalar_i64(), Some(50));
    assert_eq!(base.metrics.blocks_pruned, 0);
    assert!(base.metrics.blocks_scanned >= total_blocks);

    // And the raw layout agrees on the result.
    let off = db
        .query(sql, &opts(Mode::RobustPredicateTransfer, false))
        .unwrap();
    assert_eq!(off.scalar_i64(), Some(50));
}

/// Utf8 zone-map pruning through the sorted shared dictionary: `cat.grp`
/// is clustered (block `b` holds only the string `s{b}`), so a string
/// literal comparison rules out every non-intersecting block — dict codes
/// are assigned in lexicographic order, making the zone's string bounds
/// exactly the stored code bounds. A `=` literal absent from the
/// dictionary prunes *every* block, and the raw layout agrees on rows
/// throughout.
#[test]
fn utf8_dict_literal_scan_prunes_blocks() {
    let blocks = 4usize;
    let mut db = Database::new();
    db.register_table(table(
        "cat",
        vec![
            (
                "grp",
                Vector::from_utf8(
                    (0..blocks * VECTOR_SIZE)
                        .map(|i| format!("s{}", i / VECTOR_SIZE))
                        .collect(),
                ),
            ),
            (
                "v",
                Vector::from_i64((0..(blocks * VECTOR_SIZE) as i64).collect()),
            ),
        ],
    ));

    // Equality on one block's string: the other three blocks prune.
    let eq = "SELECT COUNT(*) FROM cat WHERE cat.grp = 's2'";
    let on = db.query(eq, &opts(Mode::Baseline, true)).unwrap();
    assert_eq!(on.scalar_i64(), Some(VECTOR_SIZE as i64));
    assert_eq!(on.metrics.blocks_scanned, 1, "trace: {:?}", on.trace);
    assert_eq!(on.metrics.blocks_pruned, blocks as u64 - 1);

    // Range below 's1': only block 0 ("s0") can hold a match.
    let lt = "SELECT COUNT(*) FROM cat WHERE cat.grp < 's1'";
    let on = db.query(lt, &opts(Mode::Baseline, true)).unwrap();
    assert_eq!(on.scalar_i64(), Some(VECTOR_SIZE as i64));
    assert_eq!(on.metrics.blocks_scanned, 1, "trace: {:?}", on.trace);
    assert_eq!(on.metrics.blocks_pruned, blocks as u64 - 1);

    // A literal outside the dictionary can match no row anywhere: every
    // block prunes without decoding a thing.
    let absent = "SELECT COUNT(*) FROM cat WHERE cat.grp = 'zzz'";
    let on = db.query(absent, &opts(Mode::Baseline, true)).unwrap();
    assert_eq!(on.scalar_i64(), Some(0));
    assert_eq!(on.metrics.blocks_scanned, 0, "trace: {:?}", on.trace);
    assert_eq!(on.metrics.blocks_pruned, blocks as u64);

    // The raw layout agrees on rows and records no block metrics.
    for sql in [eq, lt, absent] {
        let off = db.query(sql, &opts(Mode::Baseline, false)).unwrap();
        let on = db.query(sql, &opts(Mode::Baseline, true)).unwrap();
        assert_eq!(on.rows, off.rows, "{sql}");
        assert_eq!(off.metrics.blocks_scanned, 0);
        assert_eq!(off.metrics.blocks_pruned, 0);
    }
}

/// NULL join keys must survive pruning decisions: a block containing NULL
/// keys can never be Bloom-range-pruned (the probe keeps NULL rows only as
/// hash false positives, but literal semantics must not change), and
/// results stay identical to the raw layout.
#[test]
fn null_keys_not_mispruned() {
    let mut db = Database::new();
    // fk: NULLs sprinkled through a clustered key column.
    let mut fk = Vector::new_empty(DataType::Int64);
    for i in 0..6000i64 {
        if i % 97 == 0 {
            fk.push(&ScalarValue::Null).unwrap();
        } else {
            fk.push(&ScalarValue::Int64(i)).unwrap();
        }
    }
    let n = 6000usize;
    db.register_table(table(
        "f",
        vec![("fk", fk), ("v", Vector::from_i64((0..n as i64).collect()))],
    ));
    db.register_table(table(
        "d",
        vec![
            ("id", Vector::from_i64((100..160).collect())),
            ("flag", Vector::from_i64(vec![1; 60])),
        ],
    ));
    let sql = "SELECT COUNT(*) FROM f, d WHERE f.fk = d.id AND d.flag = 1";
    let on = db
        .query(sql, &opts(Mode::RobustPredicateTransfer, true))
        .unwrap();
    let off = db
        .query(sql, &opts(Mode::RobustPredicateTransfer, false))
        .unwrap();
    assert_eq!(on.rows, off.rows);
    // One match per dim id, except ids whose fact row was NULLed out
    // (multiples of 97).
    let expect = (100..160).filter(|i| i % 97 != 0).count() as i64;
    assert_eq!(on.scalar_i64(), Some(expect));
}

/// Full parity sweep: encoded and raw scans return byte-identical sorted
/// rows for filters, joins, and string GROUP BYs, across execution modes
/// and partition counts.
#[test]
fn encoded_and_raw_scans_agree() {
    let db = db();
    let queries = [
        "SELECT COUNT(*) FROM fact WHERE fact.fk >= 39000 AND fact.val < 7",
        "SELECT COUNT(*) FROM fact, dim WHERE fact.fk = dim.id AND dim.flag = 1",
        "SELECT dim.name, COUNT(*) AS n, SUM(fact.val) AS s FROM fact, dim \
         WHERE fact.fk = dim.id GROUP BY dim.name",
        "SELECT dim.name, dim.id FROM dim WHERE dim.id < 10010",
    ];
    for sql in queries {
        for mode in [Mode::Baseline, Mode::RobustPredicateTransfer] {
            for pc in [1usize, 8] {
                let on = db
                    .query(sql, &opts(mode, true).with_partition_count(pc))
                    .unwrap();
                let off = db
                    .query(sql, &opts(mode, false).with_partition_count(pc))
                    .unwrap();
                assert_eq!(
                    on.sorted_rows(),
                    off.sorted_rows(),
                    "{mode:?} pc={pc}: {sql}"
                );
            }
        }
    }
}

/// Multi-column join keys: the transferred Bloom filter tracks one key
/// range *per key position*, so a fact scan prunes on whichever position
/// is selective. Here key `a` is cyclic (every block spans its full 0..100
/// range — position 0 can prune nothing) while key `b` is clustered, so
/// all pruning must come from position 1's observed band — exactly what
/// the old single-key gate threw away.
#[test]
fn multi_column_bloom_key_ranges_prune_fact_blocks() {
    let mut db = Database::new();
    db.register_table(table(
        "fact2",
        vec![
            (
                "a",
                Vector::from_i64((0..FACT_ROWS).map(|i| i % 100).collect()),
            ),
            ("b", Vector::from_i64((0..FACT_ROWS).collect())),
        ],
    ));
    // dim2 matches fact2 rows 10_000..10_050 on (a, b) jointly.
    db.register_table(table(
        "dim2",
        vec![
            (
                "x",
                Vector::from_i64((10_000..10_050).map(|i| i % 100).collect()),
            ),
            ("y", Vector::from_i64((10_000..10_050).collect())),
            ("flag", Vector::from_i64(vec![1; 50])),
        ],
    ));
    let sql = "SELECT COUNT(*) FROM fact2, dim2 \
               WHERE fact2.a = dim2.x AND fact2.b = dim2.y AND dim2.flag = 1";
    let rpt = db
        .query(sql, &opts(Mode::RobustPredicateTransfer, true))
        .unwrap();
    assert_eq!(rpt.scalar_i64(), Some(50));
    let total_blocks = (FACT_ROWS as u64).div_ceil(VECTOR_SIZE as u64);
    assert!(
        rpt.metrics.blocks_pruned >= total_blocks - 2,
        "expected most of {total_blocks} fact blocks pruned via key position 1, got {} (trace: {:?})",
        rpt.metrics.blocks_pruned,
        rpt.trace
    );
    // The raw layout and the baseline agree on the result.
    let off = db
        .query(sql, &opts(Mode::RobustPredicateTransfer, false))
        .unwrap();
    assert_eq!(off.scalar_i64(), Some(50));
    let base = db.query(sql, &opts(Mode::Baseline, true)).unwrap();
    assert_eq!(base.scalar_i64(), Some(50));
    assert_eq!(base.metrics.blocks_pruned, 0);
}
