//! Static plan verifier: positive corpus coverage and negative mutation
//! coverage.
//!
//! Positive: every corpus query's compiled plan verifies clean across
//! `partition_count {1,8} × repartition_elide {on,off}` (statically) and
//! end-to-end under `RPT_PLAN_VERIFY=strict` across all three schedulers.
//!
//! Negative: single mutations of a healthy plan — a dropped dependency
//! edge, a flipped distribution claim, a `Preserve` route on an ineligible
//! pipeline, an orphaned output buffer, a dropped writer claim — must each
//! be rejected with the expected stable rule id (`D6`, `P2`, `P1`, `D5`,
//! `S1`), proving the rule families fire independently.

use proptest::prelude::*;
use rpt_core::{Database, Mode, PhysicalPlan, Planner, QueryOptions, SchedulerKind};
use rpt_exec::{RouteMode, SinkSpec, SourceSpec, VerifyMode};
use rpt_workloads::{tpch, Workload};

fn database_for(w: &Workload) -> Database {
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }
    db
}

/// A small cross-section of plan shapes: scan+filter+topk, join+group-by,
/// a deeper multi-way join, and a wide aggregation.
const CORPUS: &[&str] = &[
    "SELECT o.o_orderkey, o.o_totalprice FROM orders o \
     WHERE o.o_totalprice > 200000 ORDER BY 2 DESC LIMIT 15",
    "SELECT c.c_mktsegment, COUNT(*) AS cnt, SUM(l.l_extendedprice) AS revenue \
     FROM customer c, orders o, lineitem l \
     WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
       AND o.o_orderdate < 1200 GROUP BY c.c_mktsegment ORDER BY revenue DESC",
    "SELECT n.n_name, SUM(l.l_extendedprice) AS revenue \
     FROM customer c, orders o, lineitem l, nation n \
     WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey \
       AND c.c_nationkey = n.n_nationkey AND l.l_returnflag = 'R' \
     GROUP BY n.n_name ORDER BY 2 DESC, 1 LIMIT 5",
    "SELECT p.p_brand, COUNT(*) AS cnt FROM partsupp ps, part p, supplier s \
     WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey \
     GROUP BY p.p_brand ORDER BY 2 DESC, 1 LIMIT 10",
];

fn opts(pc: usize, elide: bool) -> QueryOptions {
    QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_partition_count(pc)
        .with_repartition_elide(elide)
        .with_plan_verify(VerifyMode::Strict)
}

fn compile(db: &Database, sql: &str, o: &QueryOptions) -> PhysicalPlan {
    let q = db.bind_sql(sql).expect("corpus query binds");
    let order = db.choose_order(&q, o).expect("order chosen");
    Planner::new(&q, o)
        .compile(&order.plan())
        .expect("corpus query compiles")
}

#[test]
fn corpus_plans_verify_clean_static() {
    let db = database_for(&tpch(0.05, 42));
    let mut preserve_total = 0usize;
    for sql in CORPUS {
        for pc in [1usize, 8] {
            for elide in [false, true] {
                let o = opts(pc, elide);
                let plan = compile(&db, sql, &o);
                let rep = plan.verify();
                assert!(
                    rep.is_clean(),
                    "pc={pc} elide={elide} sql={sql}: {:?}",
                    rep.errors
                );
                assert!(rep.checks_run > 0);
                if elide && pc > 1 {
                    preserve_total += rep.preserve_routes;
                }
            }
        }
    }
    // Elision must actually fire somewhere in the corpus — every Preserve
    // route above was independently proven eligible by the verifier.
    assert!(preserve_total > 0, "no corpus plan elided a repartition");
}

#[test]
fn corpus_runs_clean_under_strict_all_legs() {
    let db = database_for(&tpch(0.05, 42));
    for sql in CORPUS.iter().take(3) {
        for sched in [
            SchedulerKind::Global,
            SchedulerKind::Scoped,
            SchedulerKind::Stealing,
        ] {
            for pc in [1usize, 8] {
                for elide in [false, true] {
                    let o = opts(pc, elide).with_scheduler(sched).with_workers(4);
                    let r = db.query(sql, &o).unwrap_or_else(|e| {
                        panic!("strict verify failed ({sched:?} pc={pc} elide={elide}): {e}")
                    });
                    assert!(
                        r.metrics.verify_checks_run > 0,
                        "no verify checks recorded ({sched:?} pc={pc} elide={elide})"
                    );
                }
            }
        }
    }
}

/// The scheduler/scan observability counters stay live: a multi-pipeline
/// query populates them all with mutually consistent values. (The
/// `cargo xtask lint` dead-metric rule requires every counter to be
/// asserted somewhere — this is that somewhere for the scheduler family.)
#[test]
fn scheduler_metrics_are_live() {
    let db = database_for(&tpch(0.05, 42));
    let sql = CORPUS[2];
    for sched in [SchedulerKind::Global, SchedulerKind::Stealing] {
        let o = opts(8, true)
            .with_scheduler(sched)
            .with_workers(4)
            .with_threads(2);
        let s = db.query(sql, &o).expect("query runs").metrics;
        assert!(s.scan_rows > 0, "{sched:?}: scan_rows dead");
        assert!(
            s.bloom_probe_out <= s.bloom_probe_in,
            "{sched:?}: probe out {} > in {}",
            s.bloom_probe_out,
            s.bloom_probe_in
        );
        assert!(s.sched_tasks > 0, "{sched:?}: sched_tasks dead");
        assert!(s.sched_workers >= 1, "{sched:?}: sched_workers dead");
        assert!(s.sched_wall_nanos > 0, "{sched:?}: sched_wall_nanos dead");
        assert!(s.sched_busy_nanos > 0, "{sched:?}: sched_busy_nanos dead");
        assert!(
            s.sched_max_queue_depth <= s.sched_tasks,
            "{sched:?}: queue depth {} exceeds task count {}",
            s.sched_max_queue_depth,
            s.sched_tasks
        );
        assert!(
            s.sched_priority_promotions <= s.sched_tasks,
            "{sched:?}: promotions exceed tasks"
        );
        if sched == SchedulerKind::Stealing {
            // Every executed task was either a local-deque hit or a steal.
            assert!(
                s.sched_local_hits + s.sched_steals <= s.sched_tasks,
                "local {} + steals {} > tasks {}",
                s.sched_local_hits,
                s.sched_steals,
                s.sched_tasks
            );
            assert!(
                s.sched_local_hits > 0,
                "stealing pool never hit its own deque"
            );
        }
    }
}

// ---- Mutations: each class must be rejected with its stable rule id ----

fn rule_ids(plan: &PhysicalPlan) -> Vec<&'static str> {
    plan.verify().errors.iter().map(|e| e.rule.id()).collect()
}

fn healthy_plan(pc: usize, elide: bool) -> PhysicalPlan {
    let db = database_for(&tpch(0.05, 42));
    let o = opts(pc, elide);
    let plan = compile(&db, CORPUS[2], &o);
    assert!(plan.verify().is_clean(), "fixture plan must start clean");
    plan
}

#[test]
fn mutation_dropped_dep_edge_is_reads_divergence() {
    let mut plan = healthy_plan(8, true);
    let i = plan
        .deps
        .iter()
        .position(|d| !d.reads.is_empty())
        .expect("some pipeline reads something");
    plan.deps[i].reads.clear();
    let ids = rule_ids(&plan);
    assert!(ids.contains(&"D6"), "expected D6, got {ids:?}");
}

#[test]
fn mutation_dropped_writer_claim_is_writes_divergence() {
    let mut plan = healthy_plan(8, true);
    plan.deps[0].writes.clear();
    let ids = rule_ids(&plan);
    assert!(ids.contains(&"S1"), "expected S1, got {ids:?}");
    // The dangling readers of those grains surface too.
    assert!(ids.contains(&"D2"), "expected D2 alongside S1, got {ids:?}");
}

#[test]
fn mutation_flipped_distribution_claim_is_rejected() {
    let mut plan = healthy_plan(8, true);
    let b = plan
        .distributions
        .iter()
        .position(|d| d.is_some())
        .expect("some buffer carries a distribution claim");
    plan.distributions[b] = Some(vec![41]);
    let ids = rule_ids(&plan);
    assert!(ids.contains(&"P2"), "expected P2, got {ids:?}");
}

#[test]
fn mutation_ineligible_preserve_route_is_rejected() {
    // Compile with elision off so every route starts Radix, then force a
    // Preserve route onto a pipeline that cannot prove eligibility: a
    // table-sourced pipeline has no partitioned input to preserve.
    let mut plan = healthy_plan(8, false);
    let i = plan
        .pipelines
        .iter()
        .position(|p| {
            matches!(&p.source, SourceSpec::Table(_) | SourceSpec::Scan { .. })
                && !matches!(&p.sink, SinkSpec::Sort { .. })
        })
        .expect("plan has a table-sourced pipeline");
    plan.pipelines[i].route = RouteMode::Preserve;
    let ids = rule_ids(&plan);
    assert!(ids.contains(&"P1"), "expected P1, got {ids:?}");
}

#[test]
fn mutation_orphaned_output_buffer_is_rejected() {
    let mut plan = healthy_plan(8, true);
    // Claim the result lives in a brand-new buffer that no pipeline writes.
    plan.num_buffers += 1;
    plan.output_buffer = plan.num_buffers - 1;
    plan.distributions.push(None);
    let ids = rule_ids(&plan);
    assert!(ids.contains(&"D5"), "expected D5, got {ids:?}");
}

#[test]
fn mutation_rule_ids_are_distinct_per_class() {
    // The four headline mutation classes report four different rules —
    // a diagnostic that always says "plan invalid" would be useless.
    let ids = ["D6", "P2", "P1", "D5"];
    let unique: std::collections::BTreeSet<_> = ids.iter().collect();
    assert_eq!(unique.len(), ids.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any corpus query × any leg combination compiles to a plan the
    /// verifier accepts — planner claims and verifier derivations never
    /// diverge on healthy input.
    #[test]
    fn random_legs_verify_clean(
        qi in 0usize..4,
        pc_pow in 0u32..4,
        elide in proptest::bool::ANY,
    ) {
        let db = database_for(&tpch(0.05, 42));
        let o = opts(1usize << pc_pow, elide);
        let plan = compile(&db, CORPUS[qi], &o);
        let rep = plan.verify();
        prop_assert!(rep.is_clean(), "{:?}", rep.errors);
    }
}
