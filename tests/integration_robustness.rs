//! The paper's theoretical guarantees, checked empirically:
//!
//! 1. Full reduction: after RPT's transfer phase on an α-acyclic query,
//!    exact Yannakakis reduction leaves every surviving tuple contributing
//!    to the output — the join phase is monotone along safe orders.
//! 2. Robustness: for acyclic queries, RPT's work varies by a small
//!    constant across random join orders while the baseline varies wildly.
//! 3. Cyclic queries get no guarantee (documented behaviour, §5.1.3).

use rpt_core::robustness::robustness_factor;
use rpt_core::{Database, Mode, QueryOptions};
use rpt_workloads::{job, tpcds, tpch, Workload};

fn database_for(w: &Workload) -> Database {
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }
    db
}

#[test]
fn rpt_rf_is_bounded_on_acyclic_queries() {
    let w = job(0.05, 31);
    let db = database_for(&w);
    for qd in w.acyclic_queries().iter().take(6) {
        let q = db.bind_sql(&qd.sql).unwrap();
        let rep =
            robustness_factor(&db, &q, Mode::RobustPredicateTransfer, 8, false, None, 5).unwrap();
        let rf = rep.rf_work();
        // The paper's worst acyclic left-deep RF is 1.6; Bloom false
        // positives and join-phase build-side choices give us a little
        // slack, but the factor must stay a small constant.
        assert!(rf < 3.0, "JOB {} RPT RF {rf} too large", qd.id);
        assert_eq!(rep.timeouts, 0, "JOB {} timed out under RPT", qd.id);
    }
}

#[test]
fn baseline_rf_exceeds_rpt_rf_overall() {
    let w = tpch(0.05, 32);
    let db = database_for(&w);
    let mut base_rfs = Vec::new();
    let mut rpt_rfs = Vec::new();
    for qd in w.acyclic_queries() {
        if qd.num_joins < 3 {
            continue;
        }
        let q = db.bind_sql(&qd.sql).unwrap();
        let base = robustness_factor(&db, &q, Mode::Baseline, 6, false, None, 9).unwrap();
        let rpt =
            robustness_factor(&db, &q, Mode::RobustPredicateTransfer, 6, false, None, 9).unwrap();
        base_rfs.push(base.rf_work());
        rpt_rfs.push(rpt.rf_work());
    }
    let base_avg: f64 = base_rfs.iter().sum::<f64>() / base_rfs.len() as f64;
    let rpt_avg: f64 = rpt_rfs.iter().sum::<f64>() / rpt_rfs.len() as f64;
    assert!(
        base_avg > rpt_avg * 1.5,
        "baseline avg RF {base_avg} vs RPT {rpt_avg}: robustness advantage missing"
    );
}

#[test]
fn transfer_phase_fully_reduces_acyclic_query() {
    // On an α-acyclic query, exact (Yannakakis) reduction leaves only
    // output-contributing tuples: the join phase's per-join outputs are
    // monotonically non-decreasing toward |OUT| along the tree order, so no
    // join output can exceed the final join output size.
    let w = tpch(0.05, 33);
    let db = database_for(&w);
    let qd = w.query("q10").unwrap();
    let q = db.bind_sql(&qd.sql).unwrap();
    assert!(q.is_alpha_acyclic());
    let r = db
        .execute(&q, &QueryOptions::new(Mode::Yannakakis))
        .unwrap();
    // Work bounded: join outputs ≤ (#joins) × |final join size|.
    let out = r.metrics.output_rows.max(1);
    let joins = qd.num_joins as u64;
    assert!(
        r.metrics.join_output_rows <= joins * out,
        "Yannakakis join outputs {} exceed {} × |OUT| = {}",
        r.metrics.join_output_rows,
        joins,
        joins * out
    );
}

#[test]
fn bloom_reduction_is_superset_of_exact_reduction() {
    // RPT (Bloom) may keep false positives that exact Yannakakis removes,
    // never the opposite: RPT's join-phase input can only be ≥ exact's,
    // and both produce identical final results.
    let w = job(0.05, 34);
    let db = database_for(&w);
    for id in ["3a", "2a", "6a"] {
        let qd = w.query(id).unwrap();
        let q = db.bind_sql(&qd.sql).unwrap();
        let exact = db
            .execute(&q, &QueryOptions::new(Mode::Yannakakis))
            .unwrap();
        let bloom = db
            .execute(&q, &QueryOptions::new(Mode::RobustPredicateTransfer))
            .unwrap();
        assert_eq!(exact.sorted_rows(), bloom.sorted_rows(), "JOB {id}");
        assert!(
            bloom.metrics.join_probe_in * 10 >= exact.metrics.join_probe_in * 9,
            "JOB {id}: bloom join input {} suspiciously below exact {}",
            bloom.metrics.join_probe_in,
            exact.metrics.join_probe_in
        );
    }
}

#[test]
fn cyclic_queries_remain_unprotected() {
    // For a cyclic query, RPT still executes correctly but its RF may be
    // large — we only assert correctness + that the engine doesn't reject.
    let w = tpcds(0.05, 35);
    let db = database_for(&w);
    let qd = w.query("q19").unwrap();
    assert!(qd.cyclic);
    let q = db.bind_sql(&qd.sql).unwrap();
    assert!(!q.is_alpha_acyclic());
    let base = db.execute(&q, &QueryOptions::new(Mode::Baseline)).unwrap();
    let rpt = db
        .execute(&q, &QueryOptions::new(Mode::RobustPredicateTransfer))
        .unwrap();
    assert_eq!(base.sorted_rows(), rpt.sorted_rows());
}

#[test]
fn budget_marks_catastrophic_orders_as_timeouts() {
    let w = tpch(0.05, 36);
    let db = database_for(&w);
    let qd = w.query("q8").unwrap(); // 7 joins: enough room for bad orders
    let q = db.bind_sql(&qd.sql).unwrap();
    let opt_work = db
        .execute(&q, &QueryOptions::new(Mode::Baseline))
        .unwrap()
        .work();
    // A *tight* budget must trip for at least one random baseline order.
    let rep = robustness_factor(
        &db,
        &q,
        Mode::Baseline,
        10,
        false,
        Some(opt_work + opt_work / 2),
        17,
    )
    .unwrap();
    assert!(
        rep.timeouts > 0,
        "expected some random orders to exceed 1.5× the optimizer's work"
    );
    // RPT under the same budget should (almost always) fit.
    let rep = robustness_factor(
        &db,
        &q,
        Mode::RobustPredicateTransfer,
        10,
        false,
        Some(opt_work * 20),
        17,
    )
    .unwrap();
    assert_eq!(rep.timeouts, 0, "RPT tripped a generous budget");
}

#[test]
fn hybrid_wcoj_handles_cyclic_queries() {
    // The §5.1.3 extension: on cyclic queries the hybrid RPT+WCOJ executor
    // returns the same results as the baseline, with no join order to get
    // wrong at all.
    let w = tpcds(0.05, 37);
    let db = database_for(&w);
    for qd in w.queries.iter().filter(|q| q.cyclic) {
        let q = db.bind_sql(&qd.sql).unwrap();
        let base = db.execute(&q, &QueryOptions::new(Mode::Baseline)).unwrap();
        let hybrid = db.execute(&q, &QueryOptions::new(Mode::Hybrid)).unwrap();
        assert_eq!(
            base.sorted_rows(),
            hybrid.sorted_rows(),
            "{}: hybrid result mismatch",
            qd.id
        );
    }
}

#[test]
fn wcoj_beats_binary_joins_on_triangle_blowup() {
    // Triangle query over a "bowtie" instance: every binary join order
    // produces a quadratic intermediate, while WCOJ's intersection-driven
    // search stays near-linear. This is the AGM-bound separation the
    // paper's §6.3 discusses.
    use rpt_common::{DataType, Field, Schema, Vector};
    use rpt_storage::Table;
    let n: i64 = 300;
    // R(a,b) = {(i,0)} ∪ {(0,i)}; S(b,c), T(a,c) identical star shapes.
    let mut xs: Vec<i64> = (1..n).collect();
    xs.extend(std::iter::repeat_n(0, (n - 1) as usize));
    let mut ys: Vec<i64> = std::iter::repeat_n(0, (n - 1) as usize).collect();
    ys.extend(1..n);
    let star = |name: &str, c0: &str, c1: &str| {
        Table::new(
            name,
            Schema::new(vec![
                Field::new(c0, DataType::Int64),
                Field::new(c1, DataType::Int64),
            ]),
            vec![Vector::from_i64(xs.clone()), Vector::from_i64(ys.clone())],
        )
        .unwrap()
    };
    let mut db = Database::new();
    db.register_table(star("tr", "a", "b"));
    db.register_table(star("ts", "b", "c"));
    db.register_table(star("tt", "a", "c"));
    let sql = "SELECT COUNT(*) FROM tr, ts, tt \
               WHERE tr.a = tt.a AND tr.b = ts.b AND ts.c = tt.c";
    let q = db.bind_sql(sql).unwrap();
    assert!(!q.is_alpha_acyclic(), "triangle must be cyclic");
    let base = db.execute(&q, &QueryOptions::new(Mode::Baseline)).unwrap();
    let hybrid = db.execute(&q, &QueryOptions::new(Mode::Hybrid)).unwrap();
    assert_eq!(base.sorted_rows(), hybrid.sorted_rows());
    // Binary join blows up quadratically (star hub joins star hub); the
    // hybrid executor's work stays far below it.
    assert!(
        base.metrics.join_output_rows > (n as u64) * (n as u64) / 4,
        "baseline did not blow up: {}",
        base.metrics.join_output_rows
    );
    assert!(
        hybrid.work() < base.work() / 5,
        "hybrid {} not ≪ baseline {}",
        hybrid.work(),
        base.work()
    );
}

#[test]
fn safe_order_supervision_repairs_unsafe_orders() {
    // §3.2 supervision on TPC-DS q29 (α- but not γ-acyclic): an explicitly
    // unsafe left-deep order gets repaired to a safe one, and the repaired
    // plan produces the same result with fewer join-phase tuples than the
    // unsafe plan.
    let w = tpcds(0.05, 38);
    let db = database_for(&w);
    let qd = w.query("q29").unwrap();
    let q = db.bind_sql(&qd.sql).unwrap();
    let graph = q.graph();
    // Find an unsafe left-deep order by scanning random ones.
    let mut unsafe_order = None;
    for seed in 0..200 {
        let o = rpt_core::random_left_deep(&graph, seed);
        if !rpt_graph::safe_join_order(&graph, &o) {
            unsafe_order = Some(o);
            break;
        }
    }
    let unsafe_order = unsafe_order.expect("q29 must admit an unsafe order");
    // Without supervision the unsafe order runs as-is.
    let raw = db
        .execute(
            &q,
            &QueryOptions::new(Mode::RobustPredicateTransfer)
                .with_order(rpt_core::JoinOrder::LeftDeep(unsafe_order.clone())),
        )
        .unwrap();
    assert_eq!(raw.join_order.relations(), unsafe_order);
    // With supervision the order is replaced by a safe one.
    let supervised_opts = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_order(rpt_core::JoinOrder::LeftDeep(unsafe_order.clone()))
        .with_safe_orders();
    let supervised = db.execute(&q, &supervised_opts).unwrap();
    let executed = supervised.join_order.relations();
    assert_ne!(
        executed, unsafe_order,
        "supervision did not repair the order"
    );
    assert!(rpt_graph::safe_join_order(&graph, &executed));
    assert_eq!(raw.sorted_rows(), supervised.sorted_rows());
}

#[test]
fn supervision_is_noop_for_gamma_acyclic_queries() {
    let w = tpch(0.02, 39);
    let db = database_for(&w);
    let qd = w.query("q3").unwrap();
    let q = db.bind_sql(&qd.sql).unwrap();
    assert!(q.is_gamma_acyclic());
    let order = rpt_core::JoinOrder::LeftDeep(vec![2, 1, 0]);
    let opts = QueryOptions::new(Mode::RobustPredicateTransfer)
        .with_order(order.clone())
        .with_safe_orders();
    let r = db.execute(&q, &opts).unwrap();
    // γ-acyclic: every connected order is safe, nothing to repair.
    assert_eq!(r.join_order, order);
}
