//! Property tests for the block codecs: every `Table` → `BlockTable` →
//! decode cycle must reproduce the original rows exactly (values, NULLs,
//! and block boundaries), and every block's zone map must tightly bound
//! its valid rows.

use proptest::prelude::*;
use rpt_common::{DataType, Field, ScalarValue, Schema, Vector};
use rpt_storage::{BlockTable, Table};

/// Build a nullable vector of the given type from `(valid, seed)` pairs.
/// The seed is mapped into a domain that exercises the type's codecs:
/// small Int64 domains produce runs (RLE) and narrow ranges (FOR), and
/// small Utf8 domains stay under the dictionary cardinality cap.
fn column(dt: DataType, cells: &[(bool, i64)]) -> Vector {
    let mut v = Vector::new_empty(dt);
    for &(valid, seed) in cells {
        let value = if !valid {
            ScalarValue::Null
        } else {
            match dt {
                DataType::Int64 => ScalarValue::Int64(seed),
                DataType::Float64 => ScalarValue::Float64(seed as f64 / 4.0),
                DataType::Utf8 => ScalarValue::Utf8(format!("s{}", seed.rem_euclid(17))),
                DataType::Bool => ScalarValue::Bool(seed % 2 == 0),
            }
        };
        v.push(&value).unwrap();
    }
    v
}

/// Decode every block of every column and compare against the source
/// rows; check the zone maps against a recomputed reference.
fn check_roundtrip(table: &Table, block_rows: usize) {
    let enc = BlockTable::build(table, block_rows);
    assert_eq!(enc.num_rows(), table.num_rows());
    assert_eq!(enc.num_blocks(), table.num_rows().div_ceil(block_rows));

    for b in 0..enc.num_blocks() {
        let chunk = enc.decode_block(b);
        let base = b * block_rows;
        for (col, vec) in chunk.columns.iter().enumerate() {
            let src = &table.columns[col];
            // Row-for-row equality, NULLs included (dict vectors decode
            // through `get`).
            for i in 0..chunk.num_rows() {
                assert_eq!(vec.get(i), src.get(base + i), "col {col} block {b} row {i}");
            }
            // Zone map matches a recomputation over the raw rows.
            let zone = enc.zone(col, b);
            let reference = rpt_storage::ZoneMap::compute(src, base, chunk.num_rows());
            assert_eq!(zone, &reference, "col {col} block {b}");
            // And bounds are attained: min/max are actual column values.
            if let Some((lo, hi)) = zone.i64_bounds() {
                let vals: Vec<i64> = (0..chunk.num_rows())
                    .filter(|&i| src.is_valid(base + i))
                    .map(|i| match src.get(base + i) {
                        ScalarValue::Int64(x) => x,
                        other => panic!("non-Int64 value {other:?} under Int64 bounds"),
                    })
                    .collect();
                assert_eq!(lo, *vals.iter().min().unwrap());
                assert_eq!(hi, *vals.iter().max().unwrap());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random multi-column tables (every data type, random NULLs) survive
    /// the encode → decode roundtrip at random block sizes, including
    /// non-dividing block boundaries and all-NULL blocks.
    #[test]
    fn block_roundtrip_preserves_rows(
        cells in proptest::collection::vec((proptest::bool::ANY, -100i64..100), 0..300),
        block_rows in 1usize..70,
    ) {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
            Field::new("b", DataType::Bool),
        ]);
        let columns = vec![
            column(DataType::Int64, &cells),
            column(DataType::Float64, &cells),
            column(DataType::Utf8, &cells),
            column(DataType::Bool, &cells),
        ];
        let table = Table::new("t", schema, columns).unwrap();
        check_roundtrip(&table, block_rows);
    }

    /// Wide-domain Int64 columns (no runs, wide frame-of-reference) and
    /// constant columns (pure RLE) both roundtrip.
    #[test]
    fn int64_codec_extremes_roundtrip(
        wide in proptest::collection::vec(i64::MIN / 2..i64::MAX / 2, 1..200),
        constant in -5i64..5,
        len in 1usize..200,
        block_rows in 1usize..70,
    ) {
        let schema = Schema::new(vec![
            Field::new("wide", DataType::Int64),
            Field::new("run", DataType::Int64),
        ]);
        let n = wide.len().max(len);
        let mut w = wide;
        w.resize(n, constant);
        let table = Table::new(
            "t",
            schema,
            vec![Vector::from_i64(w), Vector::from_i64(vec![constant; n])],
        )
        .unwrap();
        check_roundtrip(&table, block_rows);
    }
}

/// A `Utf8` column whose distinct-value count exceeds the dictionary cap
/// falls back to raw string blocks — and still roundtrips.
#[test]
fn high_cardinality_utf8_skips_dictionary() {
    let n = 70_000; // > DICT_MAX_DISTINCT (65536)
    let vals: Vec<String> = (0..n).map(|i| format!("unique-{i:06}")).collect();
    let schema = Schema::new(vec![Field::new("s", DataType::Utf8)]);
    let table = Table::new("t", schema, vec![Vector::from_utf8(vals)]).unwrap();
    let enc = BlockTable::build(&table, 2048);
    assert!(
        enc.columns[0].dict.is_none(),
        "dictionary built past the cardinality cap"
    );
    check_roundtrip(&table, 2048);
}
