//! Memory-capped chunk buffers that spill to disk — in the *block-encoded*
//! spill format by default.
//!
//! The "+spill" configuration of §5.4 limits available memory to ≈50% of
//! RPT's peak usage so that the data chunks materialized after the forward
//! pass (inside `CreateBF` operators) overflow to disk. [`SpillBuffer`]
//! reproduces this; since PR 10 the spilled runs are written through the
//! PR-6 block codecs instead of as decoded vectors:
//!
//! ```text
//! file   = frame*                          (one frame per spilled chunk)
//! frame  = u32 byte_len | chunk
//! chunk  = u64 nrows | column*             (selection is flattened away)
//! column = u8 tag | u8 has_validity | [validity bytes] | payload
//! tag    = 0 RawI64   payload: nrows × i64 LE
//!          1 RawF64   payload: nrows × f64 LE
//!          2 RawUtf8  payload: (u32 len | bytes)*
//!          3 RawBool  payload: nrows bytes
//!          4 RleI64   payload: u32 nruns | nruns × i64 | nruns × u32
//!          5 ForI64   payload: i64 base | u8 width | u32 nwords | words
//!          6 DictUtf8 payload: nrows × u32 codes (shared per-file dict)
//! ```
//!
//! `Int64` columns run through [`encode_i64`] (RLE or frame-of-reference
//! bit-packing, NULL slots pinned to the block minimum so they cost no
//! width); dictionary-backed `Utf8` columns spill their 32-bit codes and
//! the buffer keeps **one** dictionary reference per column for the whole
//! file — a chunk arriving with a *different* dictionary falls back to raw
//! strings for that chunk. Each spilled chunk also records its row count
//! and per-column [`ZoneMap`]s ([`SpillBuffer::spilled_zones`]). Restores
//! are insertion-ordered: forced-spill output is chunk-for-chunk identical
//! to the resident path. The legacy decoded format remains available as
//! the parity leg (`with_encoding(false)` / `RPT_SPILL_ENCODING=off`).
//!
//! Residency is governed two ways: the per-buffer `mem_limit_bytes` cap
//! (the pre-PR-10 behaviour) and, when a [`MemoryGovernor`] handle is
//! attached, query-wide victim selection — the governor may flag this
//! buffer as the spill victim after any push, which evicts *all* resident
//! chunks to the spill file (order preserved).

use crate::disk::{read_chunk, write_chunk};
use crate::encode::{decode_i64, encode_i64, EncodedBlock};
use crate::govern::GovernedHandle;
use crate::table::chunk_size_bytes;
use crate::ZoneMap;
use rpt_common::{ColumnData, DataChunk, Error, Result, Schema, Utf8Dict, Vector};
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Statistics about a buffer's spill behaviour (reported by Figure 15's
/// harness and aggregated into the engine's `spill_*` metrics family).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpillStats {
    pub chunks_in_memory: usize,
    pub chunks_spilled: usize,
    pub bytes_in_memory: usize,
    /// Decoded (logical) bytes of the spilled chunks.
    pub bytes_spilled: usize,
    /// Bytes actually written to the spill file (encoded form).
    pub encoded_bytes_spilled: usize,
    /// Bytes read back from the spill file.
    pub bytes_read: usize,
    /// Restores served from a completed prefetch (once per file restore).
    pub prefetch_hits: usize,
    /// Restores that had to read the file synchronously.
    pub prefetch_misses: usize,
    /// Governor-requested whole-buffer evictions serviced.
    pub victim_evictions: usize,
}

/// Where chunk `i` (in insertion order) currently lives.
#[derive(Debug, Clone, Copy)]
enum ChunkSlot {
    /// Index into `in_memory`.
    Mem(usize),
    /// Sequence number in the spill file.
    Spill(usize),
}

/// A buffer of data chunks with a memory cap; overflow goes to a temp file.
pub struct SpillBuffer {
    schema: Schema,
    mem_limit_bytes: usize,
    in_memory: Vec<DataChunk>,
    mem_bytes: usize,
    /// Insertion-order map of every pushed chunk to its current home.
    order: Vec<ChunkSlot>,
    /// Once-per-file dictionary reference per column (set by the first
    /// dict-backed chunk spilled for that column).
    dicts: Vec<Option<Arc<Utf8Dict>>>,
    /// Per spilled chunk: one zone map per column.
    zones: Vec<Vec<ZoneMap>>,
    /// Per spilled chunk: encoded frame size in bytes.
    frame_sizes: Vec<usize>,
    /// Decoded chunks read ahead of the merge by a SpillIo pool task.
    prefetched: Option<Vec<DataChunk>>,
    spill_path: Option<PathBuf>,
    spill_writer: Option<BufWriter<File>>,
    stats: SpillStats,
    spill_dir: PathBuf,
    /// Block-encoded spill format (default); `false` = legacy decoded.
    encoded: bool,
    /// Query id baked into the spill file name (orphan-sweep forensics).
    file_tag: u64,
    governor: Option<GovernedHandle>,
}

impl SpillBuffer {
    /// `mem_limit_bytes = usize::MAX` disables spilling (pure in-memory
    /// buffering, the default configuration).
    pub fn new(schema: Schema, mem_limit_bytes: usize, spill_dir: impl Into<PathBuf>) -> Self {
        let ncols = schema.len();
        SpillBuffer {
            schema,
            mem_limit_bytes,
            in_memory: Vec::new(),
            mem_bytes: 0,
            order: Vec::new(),
            dicts: vec![None; ncols],
            zones: Vec::new(),
            frame_sizes: Vec::new(),
            prefetched: None,
            spill_path: None,
            spill_writer: None,
            stats: SpillStats::default(),
            spill_dir: spill_dir.into(),
            encoded: true,
            file_tag: 0,
            governor: None,
        }
    }

    /// Unbounded in-memory buffer.
    pub fn unbounded(schema: Schema) -> Self {
        SpillBuffer::new(schema, usize::MAX, std::env::temp_dir())
    }

    /// Choose the spill format: block-encoded (default) or legacy decoded.
    pub fn with_encoding(mut self, encoded: bool) -> Self {
        self.encoded = encoded;
        self
    }

    /// Tag spill file names with the owning query id.
    pub fn with_file_tag(mut self, query_id: u64) -> Self {
        self.file_tag = query_id;
        self
    }

    /// Attach a global memory-governor registration: every push reports
    /// residency, and a victim flag evicts all resident chunks.
    pub fn with_governor(mut self, handle: GovernedHandle) -> Self {
        self.governor = Some(handle);
        self
    }

    /// Append a chunk (flattens it first so spilled bytes are exact).
    pub fn push(&mut self, chunk: DataChunk) -> Result<()> {
        let flat = chunk.flattened();
        if flat.num_rows() == 0 {
            return Ok(());
        }
        let sz = chunk_size_bytes(&flat);
        if self.mem_bytes + sz > self.mem_limit_bytes {
            let seq = self.spill_chunk(&flat, sz)?;
            self.order.push(ChunkSlot::Spill(seq));
        } else {
            self.mem_bytes += sz;
            self.stats.chunks_in_memory += 1;
            self.stats.bytes_in_memory += sz;
            self.order.push(ChunkSlot::Mem(self.in_memory.len()));
            self.in_memory.push(flat);
        }
        let flagged = match &self.governor {
            Some(h) => h.update(self.mem_bytes),
            None => false,
        };
        if flagged {
            self.evict_resident()?;
            if let Some(h) = &self.governor {
                h.update(self.mem_bytes);
            }
        }
        Ok(())
    }

    /// Service a governor victim flag: move every resident chunk to the
    /// spill file, preserving insertion order.
    fn evict_resident(&mut self) -> Result<()> {
        if self.in_memory.is_empty() {
            return Ok(());
        }
        let mut resident: Vec<Option<DataChunk>> = std::mem::take(&mut self.in_memory)
            .into_iter()
            .map(Some)
            .collect();
        let mut order = std::mem::take(&mut self.order);
        for slot in order.iter_mut() {
            if let ChunkSlot::Mem(i) = *slot {
                let chunk = resident[i]
                    .take()
                    .ok_or_else(|| Error::Exec("resident chunk evicted twice".into()))?;
                let sz = chunk_size_bytes(&chunk);
                let seq = self.spill_chunk(&chunk, sz)?;
                *slot = ChunkSlot::Spill(seq);
            }
        }
        self.order = order;
        self.mem_bytes = 0;
        self.stats.chunks_in_memory = 0;
        self.stats.bytes_in_memory = 0;
        self.stats.victim_evictions += 1;
        Ok(())
    }

    /// Write one chunk to the spill file; returns its sequence number.
    fn spill_chunk(&mut self, chunk: &DataChunk, sz: usize) -> Result<usize> {
        if self.spill_path.is_none() {
            std::fs::create_dir_all(&self.spill_dir)?;
            let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = self.spill_dir.join(format!(
                "rpt_spill_{}_q{}_{id}.bin",
                std::process::id(),
                self.file_tag
            ));
            let file = std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            self.spill_path = Some(path);
            self.spill_writer = Some(BufWriter::new(file));
        }
        if self.spill_writer.is_none() {
            // Writer was closed by a prefetch; reopen for appending.
            let path = self
                .spill_path
                .as_ref()
                .ok_or_else(|| Error::Exec("spill path missing".into()))?;
            let file = std::fs::OpenOptions::new().append(true).open(path)?;
            self.spill_writer = Some(BufWriter::new(file));
        }
        let frame = if self.encoded {
            self.encode_chunk(chunk)?
        } else {
            let mut buf = Vec::new();
            write_chunk(&mut buf, chunk)?;
            buf
        };
        let w = self
            .spill_writer
            .as_mut()
            .ok_or_else(|| Error::Exec("spill writer missing".into()))?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&frame)?;
        let nrows = chunk.num_rows();
        self.zones.push(
            chunk
                .columns
                .iter()
                .map(|c| ZoneMap::compute(c, 0, nrows))
                .collect(),
        );
        self.frame_sizes.push(frame.len() + 4);
        let seq = self.stats.chunks_spilled;
        self.stats.chunks_spilled += 1;
        self.stats.bytes_spilled += sz;
        self.stats.encoded_bytes_spilled += frame.len() + 4;
        Ok(seq)
    }

    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    pub fn total_chunks(&self) -> usize {
        self.stats.chunks_in_memory + self.stats.chunks_spilled
    }

    /// Has any chunk gone to disk (i.e. would a restore touch the file)?
    pub fn has_spilled(&self) -> bool {
        self.stats.chunks_spilled > 0
    }

    /// Per spilled chunk (sequence order): one zone map per column.
    pub fn spilled_zones(&self) -> &[Vec<ZoneMap>] {
        &self.zones
    }

    /// Read and decode the spilled run ahead of the restore (the SpillIo
    /// pool-task body). Idempotent; a later [`Self::take_chunks`] consumes
    /// the cache and counts a prefetch hit. Safe to race with the merge
    /// task: whoever takes the buffer first wins, the other no-ops.
    pub fn prefetch(&mut self) -> Result<()> {
        if self.stats.chunks_spilled == 0 || self.prefetched.is_some() {
            return Ok(());
        }
        self.flush_writer()?;
        let chunks = self.read_spilled()?;
        self.prefetched = Some(chunks);
        Ok(())
    }

    fn flush_writer(&mut self) -> Result<()> {
        if let Some(mut w) = self.spill_writer.take() {
            w.flush()?;
        }
        Ok(())
    }

    /// Sequentially read every spilled frame back (decoding per the file's
    /// format) and account the bytes read.
    fn read_spilled(&mut self) -> Result<Vec<DataChunk>> {
        let path = self
            .spill_path
            .as_ref()
            .ok_or_else(|| Error::Exec("spilled chunks without a spill file".into()))?;
        let mut r = std::io::BufReader::new(File::open(path)?);
        let mut out = Vec::with_capacity(self.stats.chunks_spilled);
        for _ in 0..self.stats.chunks_spilled {
            let mut len = [0u8; 4];
            r.read_exact(&mut len)?;
            let len = u32::from_le_bytes(len) as usize;
            let mut frame = vec![0u8; len];
            r.read_exact(&mut frame)?;
            self.stats.bytes_read += len + 4;
            let chunk = if self.encoded {
                self.decode_chunk(&frame)?
            } else {
                read_chunk(&mut frame.as_slice(), &self.schema)?
            };
            out.push(chunk);
        }
        Ok(out)
    }

    /// Finish writing and return all chunks in **insertion order**: the
    /// restore interleaves spilled and resident chunks exactly as pushed,
    /// so a forced-spill run is chunk-identical to a resident one. Consumes
    /// the prefetch cache when one covers the whole file (a prefetch hit);
    /// otherwise reads the file synchronously (a miss). Removes the spill
    /// file. The backward pass and join phase re-scan through this.
    pub fn take_chunks(&mut self) -> Result<Vec<DataChunk>> {
        let spilled: Vec<DataChunk> = if self.stats.chunks_spilled > 0 {
            match self.prefetched.take() {
                Some(cache) if cache.len() == self.stats.chunks_spilled => {
                    self.stats.prefetch_hits += 1;
                    cache
                }
                _ => {
                    // No prefetch, or the cache went stale (more chunks
                    // spilled after it was built): synchronous re-read.
                    self.stats.prefetch_misses += 1;
                    self.flush_writer()?;
                    self.read_spilled()?
                }
            }
        } else {
            Vec::new()
        };
        let mut spilled: Vec<Option<DataChunk>> = spilled.into_iter().map(Some).collect();
        let mut resident: Vec<Option<DataChunk>> = std::mem::take(&mut self.in_memory)
            .into_iter()
            .map(Some)
            .collect();
        let mut out = Vec::with_capacity(self.order.len());
        for slot in std::mem::take(&mut self.order) {
            let chunk = match slot {
                ChunkSlot::Mem(i) => resident.get_mut(i).and_then(Option::take),
                ChunkSlot::Spill(s) => spilled.get_mut(s).and_then(Option::take),
            };
            out.push(chunk.ok_or_else(|| Error::Exec("spill restore slot consumed twice".into()))?);
        }
        drop(self.spill_writer.take());
        if let Some(p) = self.spill_path.take() {
            std::fs::remove_file(p).ok();
        }
        Ok(out)
    }

    /// Consuming wrapper around [`Self::take_chunks`] (callers that do not
    /// need the post-restore stats).
    pub fn into_chunks(mut self) -> Result<Vec<DataChunk>> {
        self.take_chunks()
    }

    // ---- block-encoded chunk (de)serialization ----

    fn encode_chunk(&mut self, chunk: &DataChunk) -> Result<Vec<u8>> {
        let nrows = chunk.num_rows();
        let mut buf = Vec::with_capacity(64 + nrows);
        buf.extend_from_slice(&(nrows as u64).to_le_bytes());
        for (ci, col) in chunk.columns.iter().enumerate() {
            self.encode_column(&mut buf, ci, col, nrows)?;
        }
        Ok(buf)
    }

    fn encode_column(
        &mut self,
        buf: &mut Vec<u8>,
        ci: usize,
        col: &Vector,
        nrows: usize,
    ) -> Result<()> {
        // Dict-backed Utf8: spill 32-bit codes against the once-per-file
        // dictionary reference; a chunk carrying a different dictionary
        // falls back to raw strings for that chunk.
        if let (Some(dict), ColumnData::Int64(codes)) = (&col.dict, &col.data) {
            let same = match &self.dicts[ci] {
                None => {
                    self.dicts[ci] = Some(dict.clone());
                    true
                }
                Some(d) => Arc::ptr_eq(d, dict),
            };
            if same {
                buf.push(6);
                write_validity(buf, col, nrows);
                for (i, &code) in codes.iter().enumerate().take(nrows) {
                    let code = if col.is_valid(i) { code as u32 } else { 0 };
                    buf.extend_from_slice(&code.to_le_bytes());
                }
            } else {
                let flat = col.decode_dict();
                encode_raw_utf8(buf, &flat, nrows)?;
            }
            return Ok(());
        }
        match &col.data {
            ColumnData::Int64(vals) => {
                let enc = encode_i64(vals, col.validity.as_deref());
                match enc {
                    EncodedBlock::RleI64 { values, lengths } => {
                        buf.push(4);
                        write_validity(buf, col, nrows);
                        buf.extend_from_slice(&(values.len() as u32).to_le_bytes());
                        for v in &values {
                            buf.extend_from_slice(&v.to_le_bytes());
                        }
                        for l in &lengths {
                            buf.extend_from_slice(&l.to_le_bytes());
                        }
                    }
                    EncodedBlock::ForI64 {
                        base, width, words, ..
                    } => {
                        buf.push(5);
                        write_validity(buf, col, nrows);
                        buf.extend_from_slice(&base.to_le_bytes());
                        buf.push(width);
                        buf.extend_from_slice(&(words.len() as u32).to_le_bytes());
                        for w in &words {
                            buf.extend_from_slice(&w.to_le_bytes());
                        }
                    }
                    _ => {
                        buf.push(0);
                        write_validity(buf, col, nrows);
                        for v in vals {
                            buf.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
            }
            ColumnData::Float64(vals) => {
                buf.push(1);
                write_validity(buf, col, nrows);
                for v in vals {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
            ColumnData::Utf8(_) => encode_raw_utf8(buf, col, nrows)?,
            ColumnData::Bool(vals) => {
                buf.push(3);
                write_validity(buf, col, nrows);
                buf.extend(vals.iter().map(|&b| b as u8));
            }
        }
        Ok(())
    }

    fn decode_chunk(&self, frame: &[u8]) -> Result<DataChunk> {
        let mut r = Cursor { buf: frame, pos: 0 };
        let nrows = r.u64()? as usize;
        let mut columns = Vec::with_capacity(self.schema.len());
        for ci in 0..self.schema.len() {
            columns.push(self.decode_column(&mut r, ci, nrows)?);
        }
        Ok(DataChunk::new(columns))
    }

    fn decode_column(&self, r: &mut Cursor<'_>, ci: usize, nrows: usize) -> Result<Vector> {
        let tag = r.u8()?;
        let validity = if r.u8()? == 1 {
            Some(
                r.bytes(nrows)?
                    .iter()
                    .map(|&b| b != 0)
                    .collect::<Vec<bool>>(),
            )
        } else {
            None
        };
        let col = match tag {
            0 => {
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.i64()?);
                }
                Vector {
                    data: ColumnData::Int64(v),
                    validity,
                    dict: None,
                }
            }
            1 => {
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(f64::from_le_bytes(r.array::<8>()?));
                }
                Vector {
                    data: ColumnData::Float64(v),
                    validity,
                    dict: None,
                }
            }
            2 => {
                let mut v = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let len = r.u32()? as usize;
                    let bytes = r.bytes(len)?;
                    v.push(
                        String::from_utf8(bytes.to_vec())
                            .map_err(|e| Error::Exec(format!("invalid utf8 in spill file: {e}")))?,
                    );
                }
                Vector {
                    data: ColumnData::Utf8(v),
                    validity,
                    dict: None,
                }
            }
            3 => {
                let bytes = r.bytes(nrows)?;
                Vector {
                    data: ColumnData::Bool(bytes.iter().map(|&b| b != 0).collect()),
                    validity,
                    dict: None,
                }
            }
            4 => {
                let nruns = r.u32()? as usize;
                let mut values = Vec::with_capacity(nruns);
                for _ in 0..nruns {
                    values.push(r.i64()?);
                }
                let mut lengths = Vec::with_capacity(nruns);
                for _ in 0..nruns {
                    lengths.push(r.u32()?);
                }
                Vector {
                    data: ColumnData::Int64(decode_i64(&EncodedBlock::RleI64 { values, lengths })),
                    validity,
                    dict: None,
                }
            }
            5 => {
                let base = r.i64()?;
                let width = r.u8()?;
                let nwords = r.u32()? as usize;
                let mut words = Vec::with_capacity(nwords);
                for _ in 0..nwords {
                    words.push(u64::from_le_bytes(r.array::<8>()?));
                }
                Vector {
                    data: ColumnData::Int64(decode_i64(&EncodedBlock::ForI64 {
                        len: nrows as u32,
                        base,
                        width,
                        words,
                    })),
                    validity,
                    dict: None,
                }
            }
            6 => {
                let dict = self.dicts[ci].clone().ok_or_else(|| {
                    Error::Exec("dict-coded spill column without dictionary".into())
                })?;
                let mut codes = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    codes.push(r.u32()? as i64);
                }
                Vector::from_dict_codes(codes, validity, dict)
            }
            other => return Err(Error::Exec(format!("bad spill column tag {other}"))),
        };
        Ok(col)
    }
}

fn write_validity(buf: &mut Vec<u8>, col: &Vector, nrows: usize) {
    match &col.validity {
        Some(m) => {
            buf.push(1);
            buf.extend(m.iter().take(nrows).map(|&b| b as u8));
        }
        None => buf.push(0),
    }
}

fn encode_raw_utf8(buf: &mut Vec<u8>, col: &Vector, nrows: usize) -> Result<()> {
    let ColumnData::Utf8(vals) = &col.data else {
        return Err(Error::Exec("raw utf8 encode on non-utf8 column".into()));
    };
    buf.push(2);
    write_validity(buf, col, nrows);
    for s in vals.iter().take(nrows) {
        buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        buf.extend_from_slice(s.as_bytes());
    }
    Ok(())
}

/// Bounds-checked little-endian slice reader for spill frames.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::Exec("truncated spill frame".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let b = self.bytes(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(b);
        Ok(a)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.array::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array::<8>()?))
    }
}

impl Drop for SpillBuffer {
    fn drop(&mut self) {
        // Close the writer's file handle *before* unlinking: removing an
        // open file is a silent no-op failure on Windows and leaks the
        // spill file (`remove_file(...).ok()` swallows the error).
        drop(self.spill_writer.take());
        if let Some(p) = self.spill_path.take() {
            std::fs::remove_file(p).ok();
        }
    }
}

// Sink state crosses worker threads (each worker owns one buffer) and the
// DAG scheduler moves whole sinks between the worker that filled them and
// the worker that finalizes the pipeline — SpillBuffer must stay `Send`
// and `Sync`. Compile-time proof so a future field (e.g. an `Rc` cache)
// cannot silently break the executor.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpillBuffer>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::MemoryGovernor;
    use rpt_common::{DataType, Field, ScalarValue};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int64)])
    }

    fn chunk(vals: Vec<i64>) -> DataChunk {
        DataChunk::new(vec![Vector::from_i64(vals)])
    }

    #[test]
    fn unbounded_keeps_everything_in_memory() {
        let mut b = SpillBuffer::unbounded(schema());
        b.push(chunk(vec![1, 2, 3])).unwrap();
        b.push(chunk(vec![4])).unwrap();
        assert_eq!(b.stats().chunks_spilled, 0);
        let chunks = b.into_chunks().unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].value(0, 0), ScalarValue::Int64(4));
    }

    #[test]
    fn tiny_limit_spills_and_restores_order_content() {
        let dir = std::env::temp_dir().join("rpt_spill_test1");
        let mut b = SpillBuffer::new(schema(), 16, &dir); // ~2 i64s
        b.push(chunk(vec![1, 2])).unwrap(); // fits (16 bytes)
        b.push(chunk(vec![3, 4])).unwrap(); // spills
        b.push(chunk(vec![5])).unwrap(); // spills
        let st = b.stats();
        assert_eq!(st.chunks_in_memory, 1);
        assert_eq!(st.chunks_spilled, 2);
        assert!(st.bytes_spilled >= 24);
        let chunks = b.into_chunks().unwrap();
        // Insertion order: [1,2] resident, then the two spilled chunks.
        let all: Vec<i64> = chunks
            .iter()
            .flat_map(|c| c.rows().into_iter().map(|r| r[0].as_i64().unwrap()))
            .collect();
        assert_eq!(all, vec![1, 2, 3, 4, 5], "restore preserves push order");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_chunks_skipped() {
        let mut b = SpillBuffer::unbounded(schema());
        b.push(chunk(vec![])).unwrap();
        assert_eq!(b.total_chunks(), 0);
        assert!(b.into_chunks().unwrap().is_empty());
    }

    #[test]
    fn spill_file_removed_after_consume() {
        let dir = std::env::temp_dir().join("rpt_spill_test2");
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        b.push(chunk(vec![1])).unwrap();
        let path = b.spill_path.clone().unwrap();
        assert!(path.exists());
        let _ = b.into_chunks().unwrap();
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An early-error drop (the buffer is abandoned without consuming it,
    /// e.g. a failing pipeline) must close the still-open writer handle
    /// and unlink the spill file — no `rpt_spill_*` file may leak.
    #[test]
    fn dropped_buffer_leaks_no_spill_file() {
        let dir = std::env::temp_dir().join("rpt_spill_test_drop");
        std::fs::remove_dir_all(&dir).ok();
        let path = {
            let mut b = SpillBuffer::new(schema(), 0, &dir);
            b.push(chunk(vec![1, 2, 3])).unwrap();
            b.push(chunk(vec![4])).unwrap();
            let path = b.spill_path.clone().unwrap();
            assert!(path.exists());
            assert!(b.spill_writer.is_some(), "writer still open at drop time");
            path
            // `b` dropped here without `into_chunks`.
        };
        assert!(!path.exists(), "spill file leaked after drop");
        let leaked: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().starts_with("rpt_spill_"))
                    .collect()
            })
            .unwrap_or_default();
        assert!(leaked.is_empty(), "leaked spill files: {leaked:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn selection_flattened_before_spill() {
        let dir = std::env::temp_dir().join("rpt_spill_test3");
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        let mut c = chunk(vec![10, 20, 30]);
        c.set_selection(vec![2, 0]);
        b.push(c).unwrap();
        let chunks = b.into_chunks().unwrap();
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[0].value(0, 0), ScalarValue::Int64(30));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn mixed_schema() -> Schema {
        Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("f", DataType::Float64),
            Field::new("s", DataType::Utf8),
            Field::new("b", DataType::Bool),
        ])
    }

    fn mixed_chunk(n: usize, offset: i64) -> DataChunk {
        let mut i = Vector::new_empty(DataType::Int64);
        for k in 0..n {
            if k % 7 == 3 {
                i.push(&ScalarValue::Null).unwrap();
            } else {
                i.push(&ScalarValue::Int64(offset + (k as i64 % 40)))
                    .unwrap();
            }
        }
        DataChunk::new(vec![
            i,
            Vector::from_f64((0..n).map(|k| k as f64 / 3.0).collect()),
            Vector::from_utf8((0..n).map(|k| format!("s{}", k % 5)).collect()),
            Vector::from_bool((0..n).map(|k| k % 2 == 0).collect()),
        ])
    }

    #[test]
    fn encoded_spill_roundtrips_all_types() {
        for encoded in [true, false] {
            let dir = std::env::temp_dir().join(format!("rpt_spill_rt_{encoded}"));
            let mut b = SpillBuffer::new(mixed_schema(), 0, &dir).with_encoding(encoded);
            let c1 = mixed_chunk(200, 1_000_000);
            let c2 = mixed_chunk(64, -50);
            b.push(c1.clone()).unwrap();
            b.push(c2.clone()).unwrap();
            let restored = b.into_chunks().unwrap();
            assert_eq!(restored.len(), 2);
            for (orig, got) in [(&c1, &restored[0]), (&c2, &restored[1])] {
                assert_eq!(orig.num_rows(), got.num_rows());
                for (ri, row) in orig.rows().into_iter().enumerate() {
                    assert_eq!(row, got.rows()[ri], "encoded={encoded} row {ri}");
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// The Int64/dict-Utf8 shape the bench corpus uses: small-range keys
    /// bit-pack, dictionary columns spill 32-bit codes instead of strings.
    #[test]
    fn encoded_spill_is_smaller_than_decoded() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("s", DataType::Utf8),
        ]);
        let dict = Utf8Dict::from_values(vec!["alpha-category", "beta-category", "gamma-category"]);
        let make = || {
            DataChunk::new(vec![
                Vector::from_i64((0..512).map(|k| 100 + k % 40).collect()),
                Vector::from_dict_codes((0..512).map(|k| k % 3).collect(), None, dict.clone()),
            ])
        };
        let run = |encoded: bool| -> (usize, usize) {
            let dir = std::env::temp_dir().join(format!("rpt_spill_sz_{encoded}"));
            let mut b = SpillBuffer::new(schema.clone(), 0, &dir).with_encoding(encoded);
            for _ in 0..4 {
                b.push(make()).unwrap();
            }
            let st = b.stats();
            let _ = b.into_chunks().unwrap();
            std::fs::remove_dir_all(&dir).ok();
            (st.encoded_bytes_spilled, st.bytes_spilled)
        };
        let (enc, dec_logical) = run(true);
        let (raw, _) = run(false);
        assert!(
            enc * 2 <= raw,
            "block-encoded spill ({enc}B) not ≥2× smaller than decoded ({raw}B)"
        );
        assert!(dec_logical > 0);
    }

    #[test]
    fn dict_backed_columns_spill_codes_with_shared_dict() {
        let schema = Schema::new(vec![Field::new("s", DataType::Utf8)]);
        let dict = Utf8Dict::from_values(vec!["a", "b", "c"]);
        let codes =
            |v: Vec<i64>| DataChunk::new(vec![Vector::from_dict_codes(v, None, dict.clone())]);
        let dir = std::env::temp_dir().join("rpt_spill_dict");
        let mut b = SpillBuffer::new(schema.clone(), 0, &dir);
        b.push(codes(vec![0, 2, 1, 2])).unwrap();
        b.push(codes(vec![2, 2, 2])).unwrap();
        // A chunk with a *different* dictionary must fall back to strings.
        let other_dict = Utf8Dict::from_values(vec!["x", "y"]);
        b.push(DataChunk::new(vec![Vector::from_dict_codes(
            vec![1, 0],
            None,
            other_dict,
        )]))
        .unwrap();
        let restored = b.into_chunks().unwrap();
        assert!(
            restored[0].columns[0].is_dict(),
            "codes restore dict-backed"
        );
        assert!(
            Arc::ptr_eq(restored[0].columns[0].dict.as_ref().unwrap(), &dict),
            "restored dict is the shared per-file reference"
        );
        assert_eq!(restored[0].columns[0].utf8_at(1), "c");
        assert!(!restored[2].columns[0].is_dict(), "foreign dict falls back");
        assert_eq!(restored[2].columns[0].utf8_at(0), "y");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilled_chunks_carry_zone_maps() {
        let dir = std::env::temp_dir().join("rpt_spill_zones");
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        b.push(chunk(vec![5, 9, 7])).unwrap();
        b.push(chunk(vec![-2, 0])).unwrap();
        assert_eq!(b.spilled_zones().len(), 2);
        assert_eq!(b.spilled_zones()[0][0].i64_bounds(), Some((5, 9)));
        assert_eq!(b.spilled_zones()[1][0].i64_bounds(), Some((-2, 0)));
        let _ = b.into_chunks().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetch_hit_and_miss_accounting() {
        let dir = std::env::temp_dir().join("rpt_spill_prefetch");
        // Miss: restore without a prefetch.
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        b.push(chunk(vec![1, 2])).unwrap();
        let _ = b.take_chunks().unwrap();
        assert_eq!(b.stats().prefetch_misses, 1);
        assert_eq!(b.stats().prefetch_hits, 0);
        assert!(b.stats().bytes_read > 0);
        // Hit: prefetch, then restore from the cache.
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        b.push(chunk(vec![3, 4])).unwrap();
        b.prefetch().unwrap();
        b.prefetch().unwrap(); // idempotent
        let chunks = b.take_chunks().unwrap();
        assert_eq!(chunks[0].value(0, 1), ScalarValue::Int64(4));
        assert_eq!(b.stats().prefetch_hits, 1);
        assert_eq!(b.stats().prefetch_misses, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_prefetch_cache_is_discarded() {
        let dir = std::env::temp_dir().join("rpt_spill_stale");
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        b.push(chunk(vec![1])).unwrap();
        b.prefetch().unwrap();
        b.push(chunk(vec![2])).unwrap(); // spills after the prefetch
        let chunks = b.take_chunks().unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].value(0, 0), ScalarValue::Int64(2));
        assert_eq!(b.stats().prefetch_misses, 1, "stale cache re-read");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn governor_victim_eviction_moves_resident_chunks_to_disk() {
        let dir = std::env::temp_dir().join("rpt_spill_gov");
        let gov = Arc::new(MemoryGovernor::new(64));
        let mut b = SpillBuffer::new(schema(), usize::MAX, &dir).with_governor(gov.register(true));
        b.push(chunk(vec![1, 2, 3])).unwrap(); // 24B resident, under budget
        assert_eq!(b.stats().chunks_spilled, 0);
        b.push(chunk(vec![4, 5, 6, 7, 8, 9])).unwrap(); // 72B total: evict
        let st = b.stats();
        assert_eq!(st.chunks_in_memory, 0, "eviction cleared residency");
        assert_eq!(st.chunks_spilled, 2);
        assert_eq!(st.victim_evictions, 1);
        assert_eq!(gov.evictions(), 1);
        let all: Vec<i64> = b
            .into_chunks()
            .unwrap()
            .iter()
            .flat_map(|c| c.rows().into_iter().map(|r| r[0].as_i64().unwrap()))
            .collect();
        assert_eq!(all, vec![1, 2, 3, 4, 5, 6, 7, 8, 9], "order preserved");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_name_carries_pid_and_query_id() {
        let dir = std::env::temp_dir().join("rpt_spill_name");
        let mut b = SpillBuffer::new(schema(), 0, &dir).with_file_tag(42);
        b.push(chunk(vec![1])).unwrap();
        let name = b
            .spill_path
            .as_ref()
            .unwrap()
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        assert!(
            name.starts_with(&format!("rpt_spill_{}_q42_", std::process::id())),
            "{name}"
        );
        let _ = b.into_chunks().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
