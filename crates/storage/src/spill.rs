//! Memory-capped chunk buffers that spill to disk.
//!
//! The "+spill" configuration of §5.4 limits available memory to ≈50% of
//! RPT's peak usage so that the data chunks materialized after the forward
//! pass (inside `CreateBF` operators) overflow to disk. [`SpillBuffer`]
//! reproduces this: chunks are kept in memory until the cap is hit, then
//! appended to a spill file; reading them back is a sequential scan —
//! matching the paper's observation that backward-pass re-reads are cheap
//! because they are sequential.

use crate::disk::{read_chunk, write_chunk};
use crate::table::chunk_size_bytes;
use rpt_common::{DataChunk, Result, Schema};
use std::fs::File;
use std::io::{BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Statistics about a buffer's spill behaviour (reported by Figure 15's
/// harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpillStats {
    pub chunks_in_memory: usize,
    pub chunks_spilled: usize,
    pub bytes_in_memory: usize,
    pub bytes_spilled: usize,
}

/// A buffer of data chunks with a memory cap; overflow goes to a temp file.
pub struct SpillBuffer {
    schema: Schema,
    mem_limit_bytes: usize,
    in_memory: Vec<DataChunk>,
    mem_bytes: usize,
    spill_path: Option<PathBuf>,
    spill_writer: Option<BufWriter<File>>,
    stats: SpillStats,
    spill_dir: PathBuf,
}

impl SpillBuffer {
    /// `mem_limit_bytes = usize::MAX` disables spilling (pure in-memory
    /// buffering, the default configuration).
    pub fn new(schema: Schema, mem_limit_bytes: usize, spill_dir: impl Into<PathBuf>) -> Self {
        SpillBuffer {
            schema,
            mem_limit_bytes,
            in_memory: Vec::new(),
            mem_bytes: 0,
            spill_path: None,
            spill_writer: None,
            stats: SpillStats::default(),
            spill_dir: spill_dir.into(),
        }
    }

    /// Unbounded in-memory buffer.
    pub fn unbounded(schema: Schema) -> Self {
        SpillBuffer::new(schema, usize::MAX, std::env::temp_dir())
    }

    /// Append a chunk (flattens it first so spilled bytes are exact).
    pub fn push(&mut self, chunk: DataChunk) -> Result<()> {
        let flat = chunk.flattened();
        if flat.num_rows() == 0 {
            return Ok(());
        }
        let sz = chunk_size_bytes(&flat);
        if self.mem_bytes + sz > self.mem_limit_bytes {
            self.spill_chunk(&flat, sz)?;
        } else {
            self.mem_bytes += sz;
            self.stats.chunks_in_memory += 1;
            self.stats.bytes_in_memory += sz;
            self.in_memory.push(flat);
        }
        Ok(())
    }

    fn spill_chunk(&mut self, chunk: &DataChunk, sz: usize) -> Result<()> {
        if self.spill_writer.is_none() {
            std::fs::create_dir_all(&self.spill_dir)?;
            let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = self
                .spill_dir
                .join(format!("rpt_spill_{}_{id}.bin", std::process::id()));
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            self.spill_path = Some(path);
            self.spill_writer = Some(BufWriter::new(file));
        }
        let w = self.spill_writer.as_mut().expect("writer just created");
        write_chunk(w, chunk)?;
        self.stats.chunks_spilled += 1;
        self.stats.bytes_spilled += sz;
        Ok(())
    }

    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    pub fn total_chunks(&self) -> usize {
        self.stats.chunks_in_memory + self.stats.chunks_spilled
    }

    /// Finish writing and return all chunks in insertion-group order
    /// (spilled chunks first, then in-memory ones). The backward pass and
    /// join phase re-scan through this.
    pub fn into_chunks(mut self) -> Result<Vec<DataChunk>> {
        let mut out = Vec::with_capacity(self.total_chunks());
        if let Some(mut w) = self.spill_writer.take() {
            w.flush()?;
            let mut file = w
                .into_inner()
                .map_err(|e| rpt_common::Error::Exec(format!("spill flush failed: {e}")))?;
            file.seek(SeekFrom::Start(0))?;
            let mut r = BufReader::new(file);
            for _ in 0..self.stats.chunks_spilled {
                out.push(read_chunk(&mut r, &self.schema)?);
            }
        }
        out.append(&mut self.in_memory);
        if let Some(p) = self.spill_path.take() {
            std::fs::remove_file(p).ok();
        }
        Ok(out)
    }
}

impl Drop for SpillBuffer {
    fn drop(&mut self) {
        // Close the writer's file handle *before* unlinking: removing an
        // open file is a silent no-op failure on Windows and leaks the
        // spill file (`remove_file(...).ok()` swallows the error).
        drop(self.spill_writer.take());
        if let Some(p) = self.spill_path.take() {
            std::fs::remove_file(p).ok();
        }
    }
}

// Sink state crosses worker threads (each worker owns one buffer) and the
// DAG scheduler moves whole sinks between the worker that filled them and
// the worker that finalizes the pipeline — SpillBuffer must stay `Send`
// and `Sync`. Compile-time proof so a future field (e.g. an `Rc` cache)
// cannot silently break the executor.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SpillBuffer>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::{DataType, Field, ScalarValue, Vector};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int64)])
    }

    fn chunk(vals: Vec<i64>) -> DataChunk {
        DataChunk::new(vec![Vector::from_i64(vals)])
    }

    #[test]
    fn unbounded_keeps_everything_in_memory() {
        let mut b = SpillBuffer::unbounded(schema());
        b.push(chunk(vec![1, 2, 3])).unwrap();
        b.push(chunk(vec![4])).unwrap();
        assert_eq!(b.stats().chunks_spilled, 0);
        let chunks = b.into_chunks().unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].value(0, 0), ScalarValue::Int64(4));
    }

    #[test]
    fn tiny_limit_spills_and_restores_order_content() {
        let dir = std::env::temp_dir().join("rpt_spill_test1");
        let mut b = SpillBuffer::new(schema(), 16, &dir); // ~2 i64s
        b.push(chunk(vec![1, 2])).unwrap(); // fits (16 bytes)
        b.push(chunk(vec![3, 4])).unwrap(); // spills
        b.push(chunk(vec![5])).unwrap(); // spills
        let st = b.stats();
        assert_eq!(st.chunks_in_memory, 1);
        assert_eq!(st.chunks_spilled, 2);
        assert!(st.bytes_spilled >= 24);
        let chunks = b.into_chunks().unwrap();
        // Spilled first, then in-memory.
        let all: Vec<i64> = chunks
            .iter()
            .flat_map(|c| c.rows().into_iter().map(|r| r[0].as_i64().unwrap()))
            .collect();
        assert_eq!(all.len(), 5);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_chunks_skipped() {
        let mut b = SpillBuffer::unbounded(schema());
        b.push(chunk(vec![])).unwrap();
        assert_eq!(b.total_chunks(), 0);
        assert!(b.into_chunks().unwrap().is_empty());
    }

    #[test]
    fn spill_file_removed_after_consume() {
        let dir = std::env::temp_dir().join("rpt_spill_test2");
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        b.push(chunk(vec![1])).unwrap();
        let path = b.spill_path.clone().unwrap();
        assert!(path.exists());
        let _ = b.into_chunks().unwrap();
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An early-error drop (the buffer is abandoned without consuming it,
    /// e.g. a failing pipeline) must close the still-open writer handle
    /// and unlink the spill file — no `rpt_spill_*` file may leak.
    #[test]
    fn dropped_buffer_leaks_no_spill_file() {
        let dir = std::env::temp_dir().join("rpt_spill_test_drop");
        std::fs::remove_dir_all(&dir).ok();
        let path = {
            let mut b = SpillBuffer::new(schema(), 0, &dir);
            b.push(chunk(vec![1, 2, 3])).unwrap();
            b.push(chunk(vec![4])).unwrap();
            let path = b.spill_path.clone().unwrap();
            assert!(path.exists());
            assert!(b.spill_writer.is_some(), "writer still open at drop time");
            path
            // `b` dropped here without `into_chunks`.
        };
        assert!(!path.exists(), "spill file leaked after drop");
        let leaked: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().starts_with("rpt_spill_"))
                    .collect()
            })
            .unwrap_or_default();
        assert!(leaked.is_empty(), "leaked spill files: {leaked:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn selection_flattened_before_spill() {
        let dir = std::env::temp_dir().join("rpt_spill_test3");
        let mut b = SpillBuffer::new(schema(), 0, &dir);
        let mut c = chunk(vec![10, 20, 30]);
        c.set_selection(vec![2, 0]);
        b.push(c).unwrap();
        let chunks = b.into_chunks().unwrap();
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[0].value(0, 0), ScalarValue::Int64(30));
        std::fs::remove_dir_all(&dir).ok();
    }
}
