//! # rpt-storage
//!
//! Columnar table storage for the RPT engine:
//!
//! * [`table::Table`] — in-memory columnar tables (the paper's main-memory
//!   setting, §5: "tables are pre-loaded and decompressed in the buffer
//!   pool");
//! * [`stats::TableStats`] — per-column min/max/distinct statistics feeding
//!   the baseline optimizer's cardinality estimates;
//! * [`block`] — the block-based columnar layout: per-column sequences of
//!   `VECTOR_SIZE`-row encoded blocks, each carrying a zone map
//!   (min/max/null-count) consulted by scans for block skipping;
//! * [`encode`] — block codecs: RLE / frame-of-reference bit-packed
//!   `Int64`, dictionary-coded `Utf8`, raw fallbacks;
//! * [`disk`] — a simple chunk-streamed on-disk columnar format for the
//!   §5.4 "on-disk" experiments;
//! * [`spill`] — a memory-capped chunk buffer that spills to disk in the
//!   block-encoded spill format, used to reproduce the "+spill"
//!   configuration where the materialized intermediate results of the
//!   transfer phase do not fit in memory;
//! * [`govern`] — the query-wide [`govern::MemoryGovernor`] that picks
//!   spill victims across all materializing sinks instead of enforcing
//!   isolated per-buffer caps.

pub mod block;
pub mod disk;
pub mod encode;
pub mod govern;
pub mod spill;
pub mod stats;
pub mod table;

pub use block::{Block, BlockColumn, BlockTable, ZoneMap};
pub use encode::EncodedBlock;
pub use govern::{sweep_orphan_spill_files, GovernedHandle, MemoryGovernor};
pub use spill::{SpillBuffer, SpillStats};
pub use stats::{ColumnStats, TableStats};
pub use table::{chunk_size_bytes, Table};
