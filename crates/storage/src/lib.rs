//! # rpt-storage
//!
//! Columnar table storage for the RPT engine:
//!
//! * [`table::Table`] — in-memory columnar tables (the paper's main-memory
//!   setting, §5: "tables are pre-loaded and decompressed in the buffer
//!   pool");
//! * [`stats::TableStats`] — per-column min/max/distinct statistics feeding
//!   the baseline optimizer's cardinality estimates;
//! * [`disk`] — a simple chunk-streamed on-disk columnar format for the
//!   §5.4 "on-disk" experiments;
//! * [`spill`] — a memory-capped chunk buffer that spills to disk, used to
//!   reproduce the "+spill" configuration where the materialized
//!   intermediate results of the transfer phase do not fit in memory.

pub mod disk;
pub mod spill;
pub mod stats;
pub mod table;

pub use spill::{SpillBuffer, SpillStats};
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
