//! Block codecs for the block-based columnar store.
//!
//! Each block of [`crate::block::BlockColumn`] stores its payload in one of
//! these encodings:
//!
//! * `Int64` — run-length ([`EncodedBlock::RleI64`]) when the block is
//!   run-heavy, otherwise frame-of-reference delta bit-packing
//!   ([`EncodedBlock::ForI64`]): `value = base + delta` with deltas packed
//!   `width` bits each. NULL slots encode delta 0 so they never widen the
//!   packed width; the validity mask restores them on decode.
//! * `Utf8` — `u32` codes into the column's shared sorted dictionary when
//!   the column has at most [`DICT_MAX_DISTINCT`] distinct values, raw
//!   strings otherwise.
//! * `Float64` / `Bool` — raw (verbatim) payloads.
//!
//! The `Raw*` variants double as the parity layout: every codec decodes back
//! to the exact logical values of the source column.

use rpt_common::{Utf8Dict, Vector};
use std::sync::Arc;

/// Dictionary-encode a `Utf8` column only when it has at most this many
/// distinct values (codes must fit the 32-bit fixed-key width with room to
/// spare, and wide dictionaries stop paying for themselves).
pub const DICT_MAX_DISTINCT: usize = 65_536;

/// Prefer run-length encoding when the block has at most `len / RLE_RUN_DIV`
/// runs (i.e. average run length ≥ 4).
const RLE_RUN_DIV: usize = 4;

/// One block's encoded payload.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedBlock {
    RawI64(Vec<i64>),
    RawF64(Vec<f64>),
    RawUtf8(Vec<String>),
    RawBool(Vec<bool>),
    /// Run-length encoded `Int64`: `values[i]` repeats `lengths[i]` times.
    RleI64 {
        values: Vec<i64>,
        lengths: Vec<u32>,
    },
    /// Frame-of-reference delta bit-packing over `len` rows.
    ForI64 {
        len: u32,
        base: i64,
        width: u8,
        words: Vec<u64>,
    },
    /// `u32` codes into the owning column's shared dictionary.
    DictUtf8(Vec<u32>),
}

impl EncodedBlock {
    /// Approximate encoded payload size in bytes (bench/trace reporting).
    pub fn size_bytes(&self) -> usize {
        match self {
            EncodedBlock::RawI64(v) => v.len() * 8,
            EncodedBlock::RawF64(v) => v.len() * 8,
            EncodedBlock::RawUtf8(v) => {
                v.iter().map(String::len).sum::<usize>() + v.len() * std::mem::size_of::<String>()
            }
            EncodedBlock::RawBool(v) => v.len(),
            EncodedBlock::RleI64 { values, .. } => values.len() * 12,
            EncodedBlock::ForI64 { words, .. } => 16 + words.len() * 8,
            EncodedBlock::DictUtf8(codes) => codes.len() * 4,
        }
    }
}

/// Encode one `Int64` block. `values[i]` at invalid positions is treated as
/// an arbitrary placeholder: it is replaced by the block minimum so it costs
/// zero delta bits and never perturbs run detection.
pub fn encode_i64(values: &[i64], validity: Option<&[bool]>) -> EncodedBlock {
    let valid = |i: usize| validity.is_none_or(|m| m[i]);
    let mut mn = i64::MAX;
    let mut any_valid = false;
    for (i, &x) in values.iter().enumerate() {
        if valid(i) {
            mn = mn.min(x);
            any_valid = true;
        }
    }
    if !any_valid {
        // All-NULL block: zero-width FOR, nothing stored.
        return EncodedBlock::ForI64 {
            len: values.len() as u32,
            base: 0,
            width: 0,
            words: vec![],
        };
    }
    // Effective sequence with NULL placeholders pinned to the minimum.
    let eff = |i: usize| if valid(i) { values[i] } else { mn };

    let mut runs = 1usize;
    let mut max_delta = 0u64;
    let mut prev = eff(0);
    max_delta = max_delta.max((prev as i128 - mn as i128) as u64);
    for i in 1..values.len() {
        let x = eff(i);
        if x != prev {
            runs += 1;
            prev = x;
        }
        let d = (x as i128 - mn as i128) as u128;
        if d > u64::MAX as u128 {
            // Span overflows 64 bits of delta — store verbatim.
            return EncodedBlock::RawI64(values.to_vec());
        }
        max_delta = max_delta.max(d as u64);
    }
    if runs <= values.len() / RLE_RUN_DIV {
        let mut rvals = Vec::with_capacity(runs);
        let mut lens = Vec::with_capacity(runs);
        let mut cur = eff(0);
        let mut n = 1u32;
        for i in 1..values.len() {
            let x = eff(i);
            if x == cur {
                n += 1;
            } else {
                rvals.push(cur);
                lens.push(n);
                cur = x;
                n = 1;
            }
        }
        rvals.push(cur);
        lens.push(n);
        return EncodedBlock::RleI64 {
            values: rvals,
            lengths: lens,
        };
    }
    let width = 64 - max_delta.leading_zeros() as u8;
    if width >= 64 {
        return EncodedBlock::RawI64(values.to_vec());
    }
    let deltas: Vec<u64> = (0..values.len())
        .map(|i| (eff(i) as i128 - mn as i128) as u64)
        .collect();
    EncodedBlock::ForI64 {
        len: values.len() as u32,
        base: mn,
        width,
        words: pack_bits(&deltas, width),
    }
}

/// Decode an `Int64`-typed block back to its value payload.
pub fn decode_i64(block: &EncodedBlock) -> Vec<i64> {
    match block {
        EncodedBlock::RawI64(v) => v.clone(),
        EncodedBlock::RleI64 { values, lengths } => {
            let total: usize = lengths.iter().map(|&l| l as usize).sum();
            let mut out = Vec::with_capacity(total);
            for (&v, &l) in values.iter().zip(lengths.iter()) {
                out.extend(std::iter::repeat_n(v, l as usize));
            }
            out
        }
        EncodedBlock::ForI64 {
            len,
            base,
            width,
            words,
        } => unpack_bits(words, *width, *len as usize)
            .into_iter()
            .map(|d| base.wrapping_add(d as i64))
            .collect(),
        other => panic!("decode_i64 on non-Int64 block {other:?}"),
    }
}

/// Pack `width`-bit values little-endian across `u64` words.
fn pack_bits(deltas: &[u64], width: u8) -> Vec<u64> {
    if width == 0 {
        return vec![];
    }
    let w = width as usize;
    let mut words = vec![0u64; (deltas.len() * w).div_ceil(64)];
    let mut bit = 0usize;
    for &d in deltas {
        let word = bit / 64;
        let off = bit % 64;
        words[word] |= d << off;
        if off + w > 64 {
            words[word + 1] |= d >> (64 - off);
        }
        bit += w;
    }
    words
}

/// Inverse of [`pack_bits`].
fn unpack_bits(words: &[u64], width: u8, len: usize) -> Vec<u64> {
    if width == 0 {
        return vec![0u64; len];
    }
    let w = width as usize;
    let mask = (1u64 << w) - 1; // width < 64 guaranteed by encode_i64
    let mut out = Vec::with_capacity(len);
    let mut bit = 0usize;
    for _ in 0..len {
        let word = bit / 64;
        let off = bit % 64;
        let mut v = words[word] >> off;
        if off + w > 64 {
            v |= words[word + 1] << (64 - off);
        }
        out.push(v & mask);
        bit += w;
    }
    out
}

/// Build the shared sorted dictionary for a `Utf8` column, or `None` when
/// the column exceeds [`DICT_MAX_DISTINCT`] distinct valid values.
pub fn build_utf8_dict(v: &Vector) -> Option<Arc<Utf8Dict>> {
    let vals = match &v.data {
        rpt_common::ColumnData::Utf8(vals) => vals,
        _ => return None,
    };
    let mut distinct: Vec<&str> = (0..vals.len())
        .filter(|&i| v.is_valid(i))
        .map(|i| vals[i].as_str())
        .collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() > DICT_MAX_DISTINCT {
        return None;
    }
    Some(Utf8Dict::from_values(distinct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_roundtrip_small_span() {
        let vals: Vec<i64> = (0..100).map(|i| 1_000_000 + (i * 7) % 13).collect();
        let enc = encode_i64(&vals, None);
        assert!(matches!(enc, EncodedBlock::ForI64 { width, .. } if width <= 4));
        assert_eq!(decode_i64(&enc), vals);
    }

    #[test]
    fn rle_picked_for_runs() {
        let vals: Vec<i64> = (0..96).map(|i| (i / 24) as i64).collect();
        let enc = encode_i64(&vals, None);
        assert!(matches!(enc, EncodedBlock::RleI64 { .. }), "{enc:?}");
        assert_eq!(decode_i64(&enc), vals);
    }

    #[test]
    fn nulls_cost_no_width() {
        // Placeholder payloads at NULL slots are pinned to the minimum, so a
        // wild placeholder must not widen the packing.
        let vals = vec![10, i64::MAX, 12, 11, 13, 12, 11, 10];
        let validity = vec![true, false, true, true, true, true, true, true];
        let enc = encode_i64(&vals, Some(&validity));
        match &enc {
            EncodedBlock::ForI64 { base, width, .. } => {
                assert_eq!(*base, 10);
                assert!(*width <= 2, "width {width}");
            }
            other => panic!("expected FOR, got {other:?}"),
        }
        let dec = decode_i64(&enc);
        for (i, (&orig, &d)) in vals.iter().zip(dec.iter()).enumerate() {
            if validity[i] {
                assert_eq!(orig, d, "row {i}");
            }
        }
    }

    #[test]
    fn all_null_block_is_empty() {
        let vals = vec![7, 8, 9];
        let validity = vec![false, false, false];
        let enc = encode_i64(&vals, Some(&validity));
        assert!(matches!(
            enc,
            EncodedBlock::ForI64 {
                width: 0,
                ref words,
                ..
            } if words.is_empty()
        ));
        assert_eq!(decode_i64(&enc), vec![0, 0, 0]);
    }

    #[test]
    fn extreme_span_falls_back_to_raw() {
        let vals = vec![i64::MIN, i64::MAX, 0, 1, 2, 3, 4, 5];
        let enc = encode_i64(&vals, None);
        assert!(matches!(enc, EncodedBlock::RawI64(_)));
        assert_eq!(decode_i64(&enc), vals);
    }

    #[test]
    fn negative_values_roundtrip() {
        let vals: Vec<i64> = (0..64).map(|i| -500 + i * 3).collect();
        let enc = encode_i64(&vals, None);
        assert_eq!(decode_i64(&enc), vals);
    }

    #[test]
    fn wide_bitpack_crosses_word_boundaries() {
        // width that does not divide 64 exercises the straddling path.
        let vals: Vec<i64> = (0..200).map(|i| (i * 997) % 8191).collect();
        let enc = encode_i64(&vals, None);
        assert!(
            matches!(enc, EncodedBlock::ForI64 { width: 13, .. }),
            "{enc:?}"
        );
        assert_eq!(decode_i64(&enc), vals);
    }

    #[test]
    fn dict_respects_distinct_cap() {
        let v = Vector::from_utf8((0..10).map(|i| format!("v{}", i % 3)).collect());
        let d = build_utf8_dict(&v).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.value(0), "v0");
    }
}
