//! Chunk-streamed on-disk columnar format (§5.4 "on-disk" experiments).
//!
//! Layout (all little-endian, hand-rolled to avoid serde):
//!
//! ```text
//! magic "RPTC" | u32 version | schema | u64 num_chunks | chunk*
//! schema  = u32 nfields | (u32 name_len | name bytes | u8 dtype)*
//! chunk   = u64 nrows | column*            (selection is flattened away)
//! column  = u8 dtype | u8 has_validity | [validity bytes] | payload
//! payload = Int64/Float64: raw 8-byte LE values
//!           Utf8: (u32 len | bytes)*
//!           Bool: raw bytes
//! ```
//!
//! Tables are written as a stream of independent chunks so the reader can
//! scan chunk-at-a-time without materializing the table — which is what the
//! "on-disk" configuration measures.

use crate::table::Table;
use rpt_common::{ColumnData, DataChunk, DataType, Error, Field, Result, Schema, Vector};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RPTC";
const VERSION: u32 = 1;

fn dtype_code(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from(code: u8) -> Result<DataType> {
    Ok(match code {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        other => return Err(Error::Exec(format!("bad dtype code {other}"))),
    })
}

fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serialize one (flattened) chunk. Dictionary-backed columns are decoded
/// to flat strings — the on-disk format stores logical values only.
pub fn write_chunk(w: &mut impl Write, chunk: &DataChunk) -> Result<()> {
    let mut flat = chunk.flattened();
    for col in &mut flat.columns {
        col.decode_dict_in_place();
    }
    write_u64(w, flat.num_rows() as u64)?;
    for col in &flat.columns {
        w.write_all(&[dtype_code(col.data_type())])?;
        match &col.validity {
            Some(m) => {
                w.write_all(&[1])?;
                let bytes: Vec<u8> = m.iter().map(|&b| b as u8).collect();
                w.write_all(&bytes)?;
            }
            None => w.write_all(&[0])?,
        }
        match &col.data {
            ColumnData::Int64(v) => {
                for x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            ColumnData::Float64(v) => {
                for x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            ColumnData::Utf8(v) => {
                for s in v {
                    write_u32(w, s.len() as u32)?;
                    w.write_all(s.as_bytes())?;
                }
            }
            ColumnData::Bool(v) => {
                let bytes: Vec<u8> = v.iter().map(|&b| b as u8).collect();
                w.write_all(&bytes)?;
            }
        }
    }
    Ok(())
}

/// Deserialize one chunk given its schema.
pub fn read_chunk(r: &mut impl Read, schema: &Schema) -> Result<DataChunk> {
    let nrows = read_u64(r)? as usize;
    let mut columns = Vec::with_capacity(schema.len());
    for field in &schema.fields {
        let mut code = [0u8; 1];
        r.read_exact(&mut code)?;
        let dt = dtype_from(code[0])?;
        if dt != field.data_type {
            return Err(Error::Exec(format!(
                "column `{}`: stored type {dt:?} != schema {:?}",
                field.name, field.data_type
            )));
        }
        let mut has_validity = [0u8; 1];
        r.read_exact(&mut has_validity)?;
        let validity = if has_validity[0] == 1 {
            let mut bytes = vec![0u8; nrows];
            r.read_exact(&mut bytes)?;
            Some(bytes.into_iter().map(|b| b != 0).collect())
        } else {
            None
        };
        let data =
            match dt {
                DataType::Int64 => {
                    let mut v = Vec::with_capacity(nrows);
                    let mut b = [0u8; 8];
                    for _ in 0..nrows {
                        r.read_exact(&mut b)?;
                        v.push(i64::from_le_bytes(b));
                    }
                    ColumnData::Int64(v)
                }
                DataType::Float64 => {
                    let mut v = Vec::with_capacity(nrows);
                    let mut b = [0u8; 8];
                    for _ in 0..nrows {
                        r.read_exact(&mut b)?;
                        v.push(f64::from_le_bytes(b));
                    }
                    ColumnData::Float64(v)
                }
                DataType::Utf8 => {
                    let mut v = Vec::with_capacity(nrows);
                    for _ in 0..nrows {
                        let len = read_u32(r)? as usize;
                        let mut bytes = vec![0u8; len];
                        r.read_exact(&mut bytes)?;
                        v.push(String::from_utf8(bytes).map_err(|e| {
                            Error::Exec(format!("invalid utf8 in stored column: {e}"))
                        })?);
                    }
                    ColumnData::Utf8(v)
                }
                DataType::Bool => {
                    let mut bytes = vec![0u8; nrows];
                    r.read_exact(&mut bytes)?;
                    ColumnData::Bool(bytes.into_iter().map(|b| b != 0).collect())
                }
            };
        columns.push(Vector {
            data,
            validity,
            dict: None,
        });
    }
    Ok(DataChunk::new(columns))
}

fn write_schema(w: &mut impl Write, schema: &Schema) -> Result<()> {
    write_u32(w, schema.len() as u32)?;
    for f in &schema.fields {
        write_u32(w, f.name.len() as u32)?;
        w.write_all(f.name.as_bytes())?;
        w.write_all(&[dtype_code(f.data_type)])?;
    }
    Ok(())
}

fn read_schema(r: &mut impl Read) -> Result<Schema> {
    let n = read_u32(r)? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let len = read_u32(r)? as usize;
        let mut bytes = vec![0u8; len];
        r.read_exact(&mut bytes)?;
        let name = String::from_utf8(bytes)
            .map_err(|e| Error::Exec(format!("invalid utf8 in field name: {e}")))?;
        let mut code = [0u8; 1];
        r.read_exact(&mut code)?;
        fields.push(Field::new(name, dtype_from(code[0])?));
    }
    Ok(Schema::new(fields))
}

/// Write a full table to `path` as a chunk stream.
pub fn write_table(table: &Table, path: &Path, chunk_size: usize) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_schema(&mut w, &table.schema)?;
    let chunks = table.chunks(chunk_size);
    write_u64(&mut w, chunks.len() as u64)?;
    for c in &chunks {
        write_chunk(&mut w, c)?;
    }
    w.flush()?;
    Ok(())
}

/// A disk-resident table scanned chunk-at-a-time.
pub struct DiskTable {
    pub name: String,
    pub schema: Schema,
    reader: BufReader<File>,
    remaining_chunks: u64,
}

impl DiskTable {
    pub fn open(name: impl Into<String>, path: &Path) -> Result<DiskTable> {
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::Exec(format!("bad magic in {}", path.display())));
        }
        let version = read_u32(&mut reader)?;
        if version != VERSION {
            return Err(Error::Exec(format!("unsupported version {version}")));
        }
        let schema = read_schema(&mut reader)?;
        let remaining_chunks = read_u64(&mut reader)?;
        Ok(DiskTable {
            name: name.into(),
            schema,
            reader,
            remaining_chunks,
        })
    }

    /// Read the next chunk, or `None` at end of stream.
    pub fn next_chunk(&mut self) -> Result<Option<DataChunk>> {
        if self.remaining_chunks == 0 {
            return Ok(None);
        }
        self.remaining_chunks -= 1;
        Ok(Some(read_chunk(&mut self.reader, &self.schema)?))
    }

    /// Materialize the remainder into an in-memory table.
    pub fn load(mut self) -> Result<Table> {
        let mut out = DataChunk::empty_like(&self.schema);
        while let Some(c) = self.next_chunk()? {
            out.append(&c)?;
        }
        Table::from_chunk(self.name.clone(), self.schema.clone(), &out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::ScalarValue;

    fn fixture() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("s", DataType::Utf8),
            Field::new("b", DataType::Bool),
        ]);
        Table::new(
            "fix",
            schema,
            vec![
                Vector::from_i64((0..100).collect()),
                Vector::from_f64((0..100).map(|i| i as f64 / 3.0).collect()),
                Vector::from_utf8((0..100).map(|i| format!("s{i}")).collect()),
                Vector::from_bool((0..100).map(|i| i % 3 == 0).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_all_types() {
        let dir = std::env::temp_dir().join("rpt_disk_test_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rptc");
        let t = fixture();
        write_table(&t, &path, 16).unwrap();
        let loaded = DiskTable::open("fix", &path).unwrap().load().unwrap();
        assert_eq!(loaded.num_rows(), 100);
        for c in 0..4 {
            for r in [0usize, 17, 99] {
                assert_eq!(
                    loaded.column(c).get(r),
                    t.column(c).get(r),
                    "col {c} row {r}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunked_streaming() {
        let dir = std::env::temp_dir().join("rpt_disk_test_stream");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rptc");
        write_table(&fixture(), &path, 30).unwrap();
        let mut dt = DiskTable::open("fix", &path).unwrap();
        let mut sizes = Vec::new();
        while let Some(c) = dt.next_chunk().unwrap() {
            sizes.push(c.num_rows());
        }
        assert_eq!(sizes, vec![30, 30, 30, 10]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validity_survives_roundtrip() {
        let dir = std::env::temp_dir().join("rpt_disk_test_validity");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.rptc");
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(1)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let t = Table::new("n", schema, vec![v]).unwrap();
        write_table(&t, &path, 10).unwrap();
        let loaded = DiskTable::open("n", &path).unwrap().load().unwrap();
        assert_eq!(loaded.column(0).get(1), ScalarValue::Null);
        assert_eq!(loaded.column(0).get(0), ScalarValue::Int64(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("rpt_disk_test_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk");
        std::fs::write(&path, b"NOPEnope").unwrap();
        assert!(DiskTable::open("x", &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
