//! In-memory columnar tables.

use rpt_common::chunk::{chunk_ranges, DataChunk, VECTOR_SIZE};
use rpt_common::{Error, Result, ScalarValue, Schema, Vector};

/// An immutable, fully materialized columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub columns: Vec<Vector>,
    num_rows: usize,
}

impl Table {
    /// Build a table from pre-constructed columns.
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Vector>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::Plan(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields.iter().zip(columns.iter()) {
            if c.len() != num_rows {
                return Err(Error::Plan(format!(
                    "column `{}` has {} rows, expected {num_rows}",
                    f.name,
                    c.len()
                )));
            }
            if c.data_type() != f.data_type {
                return Err(Error::Plan(format!(
                    "column `{}` has type {:?}, schema says {:?}",
                    f.name,
                    c.data_type(),
                    f.data_type
                )));
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            num_rows,
        })
    }

    /// Build a table row-by-row (slow path: tests, tiny fixtures).
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: &[Vec<ScalarValue>],
    ) -> Result<Self> {
        let mut columns: Vec<Vector> = schema
            .fields
            .iter()
            .map(|f| Vector::new_empty(f.data_type))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(Error::Plan(format!(
                    "row has {} values, schema has {} fields",
                    row.len(),
                    schema.len()
                )));
            }
            for (col, v) in columns.iter_mut().zip(row.iter()) {
                col.push(v)?;
            }
        }
        Table::new(name, schema, columns)
    }

    /// Build from a materialized chunk (e.g. the output of a reduction).
    pub fn from_chunk(name: impl Into<String>, schema: Schema, chunk: &DataChunk) -> Result<Self> {
        let flat = chunk.flattened();
        Table::new(name, schema, flat.columns)
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, idx: usize) -> &Vector {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, name: &str) -> Result<&Vector> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Split into scan chunks of `chunk_size` rows (default
    /// [`VECTOR_SIZE`]). Zero-row tables yield no chunks.
    pub fn chunks(&self, chunk_size: usize) -> Vec<DataChunk> {
        chunk_ranges(self.num_rows, chunk_size)
            .map(|(start, len)| {
                DataChunk::new(self.columns.iter().map(|c| c.slice(start, len)).collect())
            })
            .collect()
    }

    /// Default-sized chunks.
    pub fn default_chunks(&self) -> Vec<DataChunk> {
        self.chunks(VECTOR_SIZE)
    }

    /// The whole table as one chunk.
    pub fn as_chunk(&self) -> DataChunk {
        DataChunk::new(self.columns.clone())
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(vector_size_bytes).sum()
    }
}

/// Approximate heap size of a vector.
pub fn vector_size_bytes(v: &Vector) -> usize {
    use rpt_common::ColumnData::*;
    let payload = match &v.data {
        Int64(x) => x.len() * 8,
        Float64(x) => x.len() * 8,
        Utf8(x) => x.iter().map(|s| s.len() + 24).sum(),
        Bool(x) => x.len(),
    };
    payload + v.validity.as_ref().map_or(0, |m| m.len())
}

/// Approximate heap size of a chunk (physical rows).
pub fn chunk_size_bytes(c: &DataChunk) -> usize {
    c.columns.iter().map(vector_size_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::{DataType, Field};

    fn small() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Vector::from_i64((0..10).collect()),
                Vector::from_utf8((0..10).map(|i| format!("r{i}")).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks() {
        let t = small();
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.num_columns(), 2);
        // mismatched column count
        assert!(Table::new(
            "bad",
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![]
        )
        .is_err());
        // mismatched type
        assert!(Table::new(
            "bad",
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![Vector::from_bool(vec![true])]
        )
        .is_err());
        // ragged columns
        assert!(Table::new(
            "bad",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64)
            ]),
            vec![Vector::from_i64(vec![1]), Vector::from_i64(vec![1, 2])]
        )
        .is_err());
    }

    #[test]
    fn from_rows_roundtrip() {
        let t = Table::from_rows(
            "r",
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            &[vec![ScalarValue::Int64(7)], vec![ScalarValue::Int64(8)]],
        )
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column(0).get(1), ScalarValue::Int64(8));
    }

    #[test]
    fn chunking() {
        let t = small();
        let chunks = t.chunks(4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].num_rows(), 4);
        assert_eq!(chunks[2].num_rows(), 2);
        assert_eq!(chunks[2].value(0, 0), ScalarValue::Int64(8));
        let total: usize = chunks.iter().map(|c| c.num_rows()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn column_by_name() {
        let t = small();
        assert_eq!(
            t.column_by_name("id").unwrap().get(3),
            ScalarValue::Int64(3)
        );
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn size_accounting() {
        let t = small();
        assert!(t.size_bytes() >= 80); // 10 i64s alone
    }

    #[test]
    fn empty_table_has_no_chunks() {
        let t = Table::new(
            "e",
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![Vector::from_i64(vec![])],
        )
        .unwrap();
        assert!(t.chunks(4).is_empty());
        assert_eq!(t.as_chunk().num_rows(), 0);
    }
}
