//! In-memory columnar tables.

use crate::block::BlockTable;
use rpt_common::chunk::{chunk_ranges, DataChunk, VECTOR_SIZE};
use rpt_common::{Error, Result, ScalarValue, Schema, Utf8Dict, Vector};
use std::sync::{Arc, OnceLock};

/// An immutable, fully materialized columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub columns: Vec<Vector>,
    num_rows: usize,
    /// Lazily built block-encoded form (zone maps + codecs), shared by all
    /// scans of this table. Built at `VECTOR_SIZE` block granularity so one
    /// block is one scan chunk.
    encoded: OnceLock<Arc<BlockTable>>,
}

impl Table {
    /// Build a table from pre-constructed columns.
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Vector>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::Plan(format!(
                "schema has {} fields but {} columns supplied",
                schema.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields.iter().zip(columns.iter()) {
            if c.len() != num_rows {
                return Err(Error::Plan(format!(
                    "column `{}` has {} rows, expected {num_rows}",
                    f.name,
                    c.len()
                )));
            }
            if c.data_type() != f.data_type {
                return Err(Error::Plan(format!(
                    "column `{}` has type {:?}, schema says {:?}",
                    f.name,
                    c.data_type(),
                    f.data_type
                )));
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            num_rows,
            encoded: OnceLock::new(),
        })
    }

    /// Build a table row-by-row (slow path: tests, tiny fixtures).
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: &[Vec<ScalarValue>],
    ) -> Result<Self> {
        let mut columns: Vec<Vector> = schema
            .fields
            .iter()
            .map(|f| Vector::new_empty(f.data_type))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(Error::Plan(format!(
                    "row has {} values, schema has {} fields",
                    row.len(),
                    schema.len()
                )));
            }
            for (col, v) in columns.iter_mut().zip(row.iter()) {
                col.push(v)?;
            }
        }
        Table::new(name, schema, columns)
    }

    /// Build from a materialized chunk (e.g. the output of a reduction).
    pub fn from_chunk(name: impl Into<String>, schema: Schema, chunk: &DataChunk) -> Result<Self> {
        let flat = chunk.flattened();
        Table::new(name, schema, flat.columns)
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, idx: usize) -> &Vector {
        &self.columns[idx]
    }

    pub fn column_by_name(&self, name: &str) -> Result<&Vector> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Split into scan chunks of `chunk_size` rows (default
    /// [`VECTOR_SIZE`]). Zero-row tables yield no chunks.
    pub fn chunks(&self, chunk_size: usize) -> Vec<DataChunk> {
        chunk_ranges(self.num_rows, chunk_size)
            .map(|(start, len)| {
                DataChunk::new(self.columns.iter().map(|c| c.slice(start, len)).collect())
            })
            .collect()
    }

    /// Default-sized chunks.
    pub fn default_chunks(&self) -> Vec<DataChunk> {
        self.chunks(VECTOR_SIZE)
    }

    /// The whole table as one chunk.
    pub fn as_chunk(&self) -> DataChunk {
        DataChunk::new(self.columns.clone())
    }

    /// The block-encoded form of this table (built on first use, cached).
    pub fn encoded(&self) -> Arc<BlockTable> {
        self.encoded
            .get_or_init(|| Arc::new(BlockTable::build(self, VECTOR_SIZE)))
            .clone()
    }

    /// The shared dictionary for column `col`, when the encoded form
    /// dictionary-codes it (builds the encoding on first use).
    pub fn dict(&self, col: usize) -> Option<Arc<Utf8Dict>> {
        self.encoded().columns[col].dict.clone()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(vector_size_bytes).sum()
    }
}

/// Approximate heap size of a vector: payload element storage plus, for
/// `Utf8`, the string byte length *and* the per-element `String` header
/// (pointer/length/capacity words) held inside the `Vec<String>`.
pub fn vector_size_bytes(v: &Vector) -> usize {
    use rpt_common::ColumnData::*;
    let payload = match &v.data {
        Int64(x) => x.len() * std::mem::size_of::<i64>(),
        Float64(x) => x.len() * std::mem::size_of::<f64>(),
        Utf8(x) => {
            x.iter().map(String::len).sum::<usize>() + x.len() * std::mem::size_of::<String>()
        }
        Bool(x) => x.len(),
    };
    payload + v.validity.as_ref().map_or(0, |m| m.len())
}

/// Approximate heap size of a chunk (physical rows).
pub fn chunk_size_bytes(c: &DataChunk) -> usize {
    c.columns.iter().map(vector_size_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::{DataType, Field};

    fn small() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![
                Vector::from_i64((0..10).collect()),
                Vector::from_utf8((0..10).map(|i| format!("r{i}")).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks() {
        let t = small();
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.num_columns(), 2);
        // mismatched column count
        assert!(Table::new(
            "bad",
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![]
        )
        .is_err());
        // mismatched type
        assert!(Table::new(
            "bad",
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![Vector::from_bool(vec![true])]
        )
        .is_err());
        // ragged columns
        assert!(Table::new(
            "bad",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64)
            ]),
            vec![Vector::from_i64(vec![1]), Vector::from_i64(vec![1, 2])]
        )
        .is_err());
    }

    #[test]
    fn from_rows_roundtrip() {
        let t = Table::from_rows(
            "r",
            Schema::new(vec![Field::new("x", DataType::Int64)]),
            &[vec![ScalarValue::Int64(7)], vec![ScalarValue::Int64(8)]],
        )
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.column(0).get(1), ScalarValue::Int64(8));
    }

    #[test]
    fn chunking() {
        let t = small();
        let chunks = t.chunks(4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].num_rows(), 4);
        assert_eq!(chunks[2].num_rows(), 2);
        assert_eq!(chunks[2].value(0, 0), ScalarValue::Int64(8));
        let total: usize = chunks.iter().map(|c| c.num_rows()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn column_by_name() {
        let t = small();
        assert_eq!(
            t.column_by_name("id").unwrap().get(3),
            ScalarValue::Int64(3)
        );
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn size_accounting() {
        let t = small();
        assert!(t.size_bytes() >= 80); // 10 i64s alone
    }

    /// Pins the `Utf8` accounting rule: string byte length plus one
    /// `String` header (24 bytes on 64-bit) per element, plus the validity
    /// mask when present.
    #[test]
    fn utf8_size_accounting_rule() {
        let v = Vector::from_utf8(vec!["ab".into(), "".into(), "cdef".into()]);
        let header = std::mem::size_of::<String>();
        let lens = 2 + 4; // "ab" + "" + "cdef"
        assert_eq!(vector_size_bytes(&v), lens + 3 * header);
        // A validity mask adds one byte per row.
        let mut with_null = Vector::new_empty(DataType::Utf8);
        with_null.push(&ScalarValue::Utf8("xyz".into())).unwrap();
        with_null.push(&ScalarValue::Null).unwrap();
        assert_eq!(vector_size_bytes(&with_null), 3 + 2 * header + 2);
    }

    #[test]
    fn empty_table_has_no_chunks() {
        let t = Table::new(
            "e",
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![Vector::from_i64(vec![])],
        )
        .unwrap();
        assert!(t.chunks(4).is_empty());
        assert_eq!(t.as_chunk().num_rows(), 0);
    }
}
