//! Per-block zone-map statistics.

use rpt_common::{ColumnData, ScalarValue, Vector};

/// Min/max/null-count over one block of one column, generalizing the
/// table-level `ColumnStats` to block granularity. `min`/`max` range over
/// the block's *valid* rows only; a block with no valid rows stores
/// `ScalarValue::Null` bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    pub min: ScalarValue,
    pub max: ScalarValue,
    pub null_count: u64,
}

impl ZoneMap {
    /// Compute the zone map for rows `[offset, offset + len)` of a flat
    /// column vector (single pass, NULLs counted alongside the fold).
    pub fn compute(v: &Vector, offset: usize, len: usize) -> ZoneMap {
        let mut null_count = 0u64;
        let valid = |i: usize| v.is_valid(i);
        let range = offset..offset + len;
        let (min, max) = match &v.data {
            ColumnData::Int64(vals) => {
                let mut bounds: Option<(i64, i64)> = None;
                for i in range {
                    if valid(i) {
                        let x = vals[i];
                        bounds = Some(bounds.map_or((x, x), |(a, b)| (a.min(x), b.max(x))));
                    } else {
                        null_count += 1;
                    }
                }
                match bounds {
                    Some((a, b)) => (ScalarValue::Int64(a), ScalarValue::Int64(b)),
                    None => (ScalarValue::Null, ScalarValue::Null),
                }
            }
            ColumnData::Float64(vals) => {
                let mut bounds: Option<(f64, f64)> = None;
                for i in range {
                    if valid(i) {
                        let x = vals[i];
                        bounds = Some(bounds.map_or((x, x), |(a, b)| (a.min(x), b.max(x))));
                    } else {
                        null_count += 1;
                    }
                }
                match bounds {
                    Some((a, b)) => (ScalarValue::Float64(a), ScalarValue::Float64(b)),
                    None => (ScalarValue::Null, ScalarValue::Null),
                }
            }
            ColumnData::Utf8(vals) => {
                let mut bounds: Option<(&str, &str)> = None;
                for i in range {
                    if valid(i) {
                        let x = vals[i].as_str();
                        bounds = Some(bounds.map_or((x, x), |(a, b)| (a.min(x), b.max(x))));
                    } else {
                        null_count += 1;
                    }
                }
                match bounds {
                    Some((a, b)) => (
                        ScalarValue::Utf8(a.to_string()),
                        ScalarValue::Utf8(b.to_string()),
                    ),
                    None => (ScalarValue::Null, ScalarValue::Null),
                }
            }
            ColumnData::Bool(vals) => {
                let mut bounds: Option<(bool, bool)> = None;
                for i in range {
                    if valid(i) {
                        let x = vals[i];
                        bounds = Some(bounds.map_or((x, x), |(a, b)| (a & x, b | x)));
                    } else {
                        null_count += 1;
                    }
                }
                match bounds {
                    Some((a, b)) => (ScalarValue::Bool(a), ScalarValue::Bool(b)),
                    None => (ScalarValue::Null, ScalarValue::Null),
                }
            }
        };
        ZoneMap {
            min,
            max,
            null_count,
        }
    }

    /// `Some((min, max))` when the block has at least one valid `Int64` row.
    pub fn i64_bounds(&self) -> Option<(i64, i64)> {
        match (&self.min, &self.max) {
            (ScalarValue::Int64(a), ScalarValue::Int64(b)) => Some((*a, *b)),
            _ => None,
        }
    }

    /// `Some((min, max))` when the block has at least one valid `Utf8` row.
    /// Dictionary codes are assigned in lexicographic order, so these
    /// string bounds order identically to the column's dict-code bounds.
    pub fn utf8_bounds(&self) -> Option<(&str, &str)> {
        match (&self.min, &self.max) {
            (ScalarValue::Utf8(a), ScalarValue::Utf8(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// True when the block contains no valid rows at all.
    pub fn all_null(&self) -> bool {
        self.min.is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::DataType;

    #[test]
    fn int_zone_over_range() {
        let v = Vector::from_i64(vec![9, 1, 5, 100, -2]);
        let z = ZoneMap::compute(&v, 1, 3);
        assert_eq!(z.i64_bounds(), Some((1, 100)));
        assert_eq!(z.null_count, 0);
    }

    #[test]
    fn nulls_excluded_from_bounds() {
        let mut v = Vector::new_empty(DataType::Int64);
        for s in [
            ScalarValue::Int64(5),
            ScalarValue::Null,
            ScalarValue::Int64(3),
        ] {
            v.push(&s).unwrap();
        }
        let z = ZoneMap::compute(&v, 0, 3);
        assert_eq!(z.i64_bounds(), Some((3, 5)));
        assert_eq!(z.null_count, 1);
        assert!(!z.all_null());
    }

    #[test]
    fn all_null_zone() {
        let mut v = Vector::new_empty(DataType::Utf8);
        v.push(&ScalarValue::Null).unwrap();
        let z = ZoneMap::compute(&v, 0, 1);
        assert!(z.all_null());
        assert_eq!(z.i64_bounds(), None);
        assert_eq!(z.null_count, 1);
    }

    #[test]
    fn utf8_zone() {
        let v = Vector::from_utf8(vec!["m".into(), "a".into(), "z".into()]);
        let z = ZoneMap::compute(&v, 0, 3);
        assert_eq!(z.min, ScalarValue::Utf8("a".into()));
        assert_eq!(z.max, ScalarValue::Utf8("z".into()));
    }
}
