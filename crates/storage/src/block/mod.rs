//! Block-based columnar layout: per-column sequences of fixed-target-size
//! encoded blocks, each carrying a [`ZoneMap`].
//!
//! Block boundaries are shared across all columns of a table and sized to
//! the executor's `VECTOR_SIZE`, so *one block row-range = one scan chunk*:
//! pruning a block via its zone maps skips an entire chunk before any
//! decode work happens. Codecs live in [`crate::encode`]; `Utf8` columns
//! with few distinct values share one sorted [`Utf8Dict`] across all their
//! blocks and decode to dictionary-backed vectors (fixed-width group keys).

pub mod zone;

pub use zone::ZoneMap;

use crate::encode::{build_utf8_dict, decode_i64, encode_i64, EncodedBlock};
use crate::table::Table;
use rpt_common::chunk::chunk_ranges;
use rpt_common::{ColumnData, DataChunk, DataType, Utf8Dict, Vector};
use std::sync::Arc;

/// One encoded block of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub len: usize,
    pub zone: ZoneMap,
    /// Validity over the block's rows (`None` = all valid).
    pub validity: Option<Vec<bool>>,
    pub data: EncodedBlock,
}

/// All blocks of one column, plus its shared dictionary when the column is
/// dictionary-encoded.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockColumn {
    pub data_type: DataType,
    pub dict: Option<Arc<Utf8Dict>>,
    pub blocks: Vec<Block>,
}

impl BlockColumn {
    fn build(v: &Vector, block_rows: usize) -> BlockColumn {
        let dict = if v.data_type() == DataType::Utf8 {
            build_utf8_dict(v)
        } else {
            None
        };
        let blocks = chunk_ranges(v.len(), block_rows)
            .map(|(start, len)| {
                let zone = ZoneMap::compute(v, start, len);
                let validity = v.validity.as_ref().and_then(|m| {
                    let slice = &m[start..start + len];
                    slice.iter().any(|&b| !b).then(|| slice.to_vec())
                });
                let data = match (&v.data, &dict) {
                    (ColumnData::Int64(vals), _) => {
                        encode_i64(&vals[start..start + len], validity.as_deref())
                    }
                    (ColumnData::Utf8(vals), Some(d)) => EncodedBlock::DictUtf8(
                        (start..start + len)
                            .map(|i| {
                                if v.is_valid(i) {
                                    d.code_of(&vals[i]).expect("value present in its own dict")
                                } else {
                                    0 // placeholder under the validity mask
                                }
                            })
                            .collect(),
                    ),
                    (ColumnData::Utf8(vals), None) => {
                        EncodedBlock::RawUtf8(vals[start..start + len].to_vec())
                    }
                    (ColumnData::Float64(vals), _) => {
                        EncodedBlock::RawF64(vals[start..start + len].to_vec())
                    }
                    (ColumnData::Bool(vals), _) => {
                        EncodedBlock::RawBool(vals[start..start + len].to_vec())
                    }
                };
                Block {
                    len,
                    zone,
                    validity,
                    data,
                }
            })
            .collect();
        BlockColumn {
            data_type: v.data_type(),
            dict,
            blocks,
        }
    }

    /// Decode block `b` back to a column vector. Dictionary blocks come
    /// back as dictionary-backed vectors (codes stay fixed-width); all
    /// other codecs decode to flat payloads.
    pub fn decode_block(&self, b: usize) -> Vector {
        let block = &self.blocks[b];
        let validity = block.validity.clone();
        match &block.data {
            EncodedBlock::DictUtf8(codes) => Vector::from_dict_codes(
                codes.iter().map(|&c| c as i64).collect(),
                validity,
                self.dict.clone().expect("dict block in dict column"),
            ),
            EncodedBlock::RawUtf8(v) => Vector {
                data: ColumnData::Utf8(v.clone()),
                validity,
                dict: None,
            },
            EncodedBlock::RawF64(v) => Vector {
                data: ColumnData::Float64(v.clone()),
                validity,
                dict: None,
            },
            EncodedBlock::RawBool(v) => Vector {
                data: ColumnData::Bool(v.clone()),
                validity,
                dict: None,
            },
            int => Vector {
                data: ColumnData::Int64(decode_i64(int)),
                validity,
                dict: None,
            },
        }
    }
}

/// The block-encoded form of a [`Table`]: same logical rows, per-column
/// encoded blocks with shared boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTable {
    pub block_rows: usize,
    num_rows: usize,
    pub columns: Vec<BlockColumn>,
}

impl BlockTable {
    pub fn build(table: &Table, block_rows: usize) -> BlockTable {
        BlockTable {
            block_rows,
            num_rows: table.num_rows(),
            columns: table
                .columns
                .iter()
                .map(|v| BlockColumn::build(v, block_rows))
                .collect(),
        }
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_blocks(&self) -> usize {
        self.num_rows.div_ceil(self.block_rows.max(1))
    }

    /// The zone map of column `col` in block `b`.
    pub fn zone(&self, col: usize, b: usize) -> &ZoneMap {
        &self.columns[col].blocks[b].zone
    }

    /// Decode row-block `b` of every column into one scan chunk.
    pub fn decode_block(&self, b: usize) -> DataChunk {
        DataChunk::new(self.columns.iter().map(|c| c.decode_block(b)).collect())
    }

    /// Total encoded payload size in bytes (bench/trace reporting).
    pub fn encoded_size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.blocks.iter().map(|b| b.data.size_bytes()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::{Field, ScalarValue, Schema};

    fn fixture() -> Table {
        let n = 100usize;
        let mut nullable = Vector::new_empty(DataType::Int64);
        for i in 0..n {
            if i % 7 == 0 {
                nullable.push(&ScalarValue::Null).unwrap();
            } else {
                nullable.push(&ScalarValue::Int64(i as i64 * 3)).unwrap();
            }
        }
        Table::new(
            "t",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("grp", DataType::Utf8),
                Field::new("f", DataType::Float64),
                Field::new("flag", DataType::Bool),
                Field::new("n", DataType::Int64),
            ]),
            vec![
                Vector::from_i64((0..n as i64).collect()),
                Vector::from_utf8((0..n).map(|i| format!("g{}", i % 5)).collect()),
                Vector::from_f64((0..n).map(|i| i as f64 / 2.0).collect()),
                Vector::from_bool((0..n).map(|i| i % 2 == 0).collect()),
                nullable,
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_shapes_and_zones() {
        let t = fixture();
        let bt = BlockTable::build(&t, 32);
        assert_eq!(bt.num_blocks(), 4);
        assert_eq!(bt.num_rows(), 100);
        // id column: block 1 covers rows 32..64
        assert_eq!(bt.zone(0, 1).i64_bounds(), Some((32, 63)));
        // last (short) block
        assert_eq!(bt.zone(0, 3).i64_bounds(), Some((96, 99)));
        // the Utf8 column got a dictionary
        let d = bt.columns[1].dict.as_ref().unwrap();
        assert_eq!(d.len(), 5);
        // the nullable column counts its NULLs per block
        assert!(bt.zone(4, 0).null_count > 0);
    }

    #[test]
    fn decode_matches_source_rows() {
        let t = fixture();
        let bt = BlockTable::build(&t, 32);
        let mut row = 0usize;
        for b in 0..bt.num_blocks() {
            let chunk = bt.decode_block(b);
            assert!(chunk.columns[1].is_dict());
            for i in 0..chunk.num_rows() {
                for c in 0..t.num_columns() {
                    assert_eq!(
                        chunk.columns[c].get(i),
                        t.column(c).get(row),
                        "col {c} row {row}"
                    );
                }
                row += 1;
            }
        }
        assert_eq!(row, 100);
    }

    #[test]
    fn empty_table_has_no_blocks() {
        let t = Table::new(
            "e",
            Schema::new(vec![Field::new("a", DataType::Int64)]),
            vec![Vector::from_i64(vec![])],
        )
        .unwrap();
        let bt = BlockTable::build(&t, 16);
        assert_eq!(bt.num_blocks(), 0);
    }
}
