//! Per-column statistics feeding the baseline optimizer's cardinality
//! estimates (uniformity + independence + inclusion assumptions, §2.1).

use crate::table::Table;
use rpt_common::{ColumnData, ScalarValue, Vector};
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub min: ScalarValue,
    pub max: ScalarValue,
    /// Exact distinct count (laptop scale permits exactness; a real system
    /// would use HyperLogLog).
    pub distinct: u64,
    pub null_count: u64,
}

impl ColumnStats {
    pub fn compute(v: &Vector) -> ColumnStats {
        // Single pass per variant: NULLs are counted in the same loop that
        // folds min/max/distinct over the valid values.
        let mut null_count = 0u64;
        let valid = |i: usize| v.is_valid(i);
        let (min, max, distinct) = match &v.data {
            ColumnData::Int64(vals) => {
                let mut set = HashSet::new();
                let mut mn = i64::MAX;
                let mut mx = i64::MIN;
                for (i, &x) in vals.iter().enumerate() {
                    if valid(i) {
                        set.insert(x);
                        mn = mn.min(x);
                        mx = mx.max(x);
                    } else {
                        null_count += 1;
                    }
                }
                if set.is_empty() {
                    (ScalarValue::Null, ScalarValue::Null, 0)
                } else {
                    (
                        ScalarValue::Int64(mn),
                        ScalarValue::Int64(mx),
                        set.len() as u64,
                    )
                }
            }
            ColumnData::Float64(vals) => {
                let mut set = HashSet::new();
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                for (i, &x) in vals.iter().enumerate() {
                    if valid(i) {
                        set.insert(x.to_bits());
                        mn = mn.min(x);
                        mx = mx.max(x);
                    } else {
                        null_count += 1;
                    }
                }
                if set.is_empty() {
                    (ScalarValue::Null, ScalarValue::Null, 0)
                } else {
                    (
                        ScalarValue::Float64(mn),
                        ScalarValue::Float64(mx),
                        set.len() as u64,
                    )
                }
            }
            ColumnData::Utf8(vals) => {
                let mut set: HashSet<&str> = HashSet::new();
                let mut mn: Option<&str> = None;
                let mut mx: Option<&str> = None;
                for (i, x) in vals.iter().enumerate() {
                    if valid(i) {
                        set.insert(x.as_str());
                        if mn.is_none_or(|m| x.as_str() < m) {
                            mn = Some(x);
                        }
                        if mx.is_none_or(|m| x.as_str() > m) {
                            mx = Some(x);
                        }
                    } else {
                        null_count += 1;
                    }
                }
                match (mn, mx) {
                    (Some(a), Some(b)) => (
                        ScalarValue::Utf8(a.to_string()),
                        ScalarValue::Utf8(b.to_string()),
                        set.len() as u64,
                    ),
                    _ => (ScalarValue::Null, ScalarValue::Null, 0),
                }
            }
            ColumnData::Bool(vals) => {
                let mut set = HashSet::new();
                for (i, &x) in vals.iter().enumerate() {
                    if valid(i) {
                        set.insert(x);
                    } else {
                        null_count += 1;
                    }
                }
                let distinct = set.len() as u64;
                if distinct == 0 {
                    (ScalarValue::Null, ScalarValue::Null, 0)
                } else {
                    (
                        ScalarValue::Bool(!set.contains(&false)),
                        ScalarValue::Bool(set.contains(&true)),
                        distinct,
                    )
                }
            }
        };
        ColumnStats {
            min,
            max,
            distinct,
            null_count,
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub num_rows: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn compute(table: &Table) -> TableStats {
        TableStats {
            num_rows: table.num_rows() as u64,
            columns: table.columns.iter().map(ColumnStats::compute).collect(),
        }
    }

    pub fn column(&self, idx: usize) -> &ColumnStats {
        &self.columns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::{DataType, Field, Schema};

    #[test]
    fn int_stats() {
        let s = ColumnStats::compute(&Vector::from_i64(vec![5, 1, 5, 9]));
        assert_eq!(s.min, ScalarValue::Int64(1));
        assert_eq!(s.max, ScalarValue::Int64(9));
        assert_eq!(s.distinct, 3);
        assert_eq!(s.null_count, 0);
    }

    #[test]
    fn null_handling() {
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(2)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let s = ColumnStats::compute(&v);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.min, ScalarValue::Int64(2));
    }

    #[test]
    fn utf8_stats() {
        let s = ColumnStats::compute(&Vector::from_utf8(vec![
            "banana".into(),
            "apple".into(),
            "apple".into(),
        ]));
        assert_eq!(s.min, ScalarValue::Utf8("apple".into()));
        assert_eq!(s.max, ScalarValue::Utf8("banana".into()));
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn empty_column() {
        let s = ColumnStats::compute(&Vector::from_f64(vec![]));
        assert_eq!(s.distinct, 0);
        assert!(s.min.is_null());
    }

    #[test]
    fn table_stats() {
        let t = Table::new(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Bool),
            ]),
            vec![
                Vector::from_i64(vec![1, 2, 2]),
                Vector::from_bool(vec![true, true, false]),
            ],
        )
        .unwrap();
        let ts = TableStats::compute(&t);
        assert_eq!(ts.num_rows, 3);
        assert_eq!(ts.column(0).distinct, 2);
        assert_eq!(ts.column(1).distinct, 2);
    }
}
