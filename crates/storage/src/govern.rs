//! Global memory governance for materializing sinks.
//!
//! Every query gets one [`MemoryGovernor`] (when
//! `QueryOptions::memory_budget_bytes` / `RPT_MEMORY_BUDGET` is set) that
//! all materializing sink states — buffer, hash-build, aggregate, sort —
//! register with. Each registrant reports its resident byte footprint after
//! every append; when the *sum* across registrants exceeds the budget the
//! governor flags spill victims largest-resident-first (ties broken by
//! lowest registration id, so victim choice is deterministic under
//! single-threaded execution). A flagged registrant evicts its resident
//! chunks to its spill file on its own thread the next time it touches the
//! governor — the governor never moves data itself, it only decides *who*
//! spills, replacing the old world where each `SpillBuffer` enforced an
//! isolated per-buffer cap and one over-cap sink could thrash while another
//! hoarded the rest of the budget.
//!
//! Registrants that cannot spill (hash-join builds and aggregate group
//! tables, which must stay addressable in memory) register as
//! *unevictable*: they contribute memory pressure — pushing the evictable
//! buffers out earlier — but are never picked as victims.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-registrant accounting inside the governor.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    resident: usize,
    evictable: bool,
    alive: bool,
    spill_requested: bool,
}

/// A query-wide memory budget shared by all materializing sink states.
#[derive(Debug)]
pub struct MemoryGovernor {
    budget: usize,
    slots: Mutex<Vec<Slot>>,
    evictions: AtomicU64,
}

impl MemoryGovernor {
    pub fn new(budget_bytes: usize) -> MemoryGovernor {
        MemoryGovernor {
            budget: budget_bytes,
            slots: Mutex::new(Vec::new()),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Victim flags raised so far (drives `spill_victim_evictions`).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Register one sink state (a per-worker, per-partition buffer or an
    /// unevictable build-side table). The handle reports residency and
    /// receives spill requests; dropping it releases the registration.
    pub fn register(self: &Arc<Self>, evictable: bool) -> GovernedHandle {
        let mut slots = match self.slots.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let id = slots.len();
        slots.push(Slot {
            resident: 0,
            evictable,
            alive: true,
            spill_requested: false,
        });
        GovernedHandle {
            gov: Arc::clone(self),
            id,
        }
    }

    /// Current total resident bytes across live registrants.
    pub fn resident_bytes(&self) -> usize {
        let slots = match self.slots.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slots.iter().filter(|s| s.alive).map(|s| s.resident).sum()
    }

    /// Update slot `id`'s residency, run victim selection if the total
    /// exceeds the budget, and report whether *this* slot must spill now.
    fn update(&self, id: usize, resident: usize) -> bool {
        let mut slots = match self.slots.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slots[id].resident = resident;
        let mut total: usize = slots.iter().filter(|s| s.alive).map(|s| s.resident).sum();
        // Largest-resident-first victim selection; each victim is assumed
        // to free its full residency once it services the flag.
        while total > self.budget {
            let victim = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.alive && s.evictable && !s.spill_requested && s.resident > 0)
                .max_by_key(|(i, s)| (s.resident, usize::MAX - i))
                .map(|(i, _)| i);
            let Some(v) = victim else { break };
            slots[v].spill_requested = true;
            total -= slots[v].resident;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        if slots[id].spill_requested {
            slots[id].spill_requested = false;
            true
        } else {
            false
        }
    }

    /// Consume a pending spill request for slot `id` without changing its
    /// reported residency.
    fn take_request(&self, id: usize) -> bool {
        let mut slots = match self.slots.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        std::mem::take(&mut slots[id].spill_requested)
    }

    fn release(&self, id: usize) {
        let mut slots = match self.slots.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slots[id].alive = false;
        slots[id].resident = 0;
        slots[id].spill_requested = false;
    }
}

/// One registrant's handle on the governor. Clonable across the sink's
/// moves between workers; releases the registration on last drop.
#[derive(Debug)]
pub struct GovernedHandle {
    gov: Arc<MemoryGovernor>,
    id: usize,
}

impl GovernedHandle {
    /// Report the registrant's current resident bytes. Returns `true` when
    /// the governor (now or since the last call) picked this registrant as
    /// a spill victim — the caller must evict its resident data.
    pub fn update(&self, resident_bytes: usize) -> bool {
        self.gov.update(self.id, resident_bytes)
    }

    /// Poll for a victim flag without changing reported residency.
    pub fn take_request(&self) -> bool {
        self.gov.take_request(self.id)
    }

    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.gov
    }
}

impl Drop for GovernedHandle {
    fn drop(&mut self) {
        self.gov.release(self.id);
    }
}

/// Remove orphaned `rpt_spill_*` files left in `dir` by dead processes
/// (e.g. a crashed or SIGKILLed run whose `Drop` cleanup never ran). A
/// file is swept only when its embedded PID provably no longer exists
/// (`/proc/<pid>` absent); on platforms without `/proc` nothing is removed.
/// Returns the number of files removed.
pub fn sweep_orphan_spill_files(dir: &std::path::Path) -> usize {
    if !std::path::Path::new("/proc").is_dir() {
        return 0;
    }
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let own_pid = std::process::id();
    let mut removed = 0usize;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(rest) = name.strip_prefix("rpt_spill_") else {
            continue;
        };
        let Some(pid) = rest.split('_').next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if pid == own_pid || std::path::Path::new(&format!("/proc/{pid}")).exists() {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_budget_never_flags() {
        let gov = Arc::new(MemoryGovernor::new(1000));
        let a = gov.register(true);
        let b = gov.register(true);
        assert!(!a.update(400));
        assert!(!b.update(500));
        assert_eq!(gov.evictions(), 0);
        assert_eq!(gov.resident_bytes(), 900);
    }

    #[test]
    fn largest_resident_is_victim_first() {
        let gov = Arc::new(MemoryGovernor::new(1000));
        let small = gov.register(true);
        let big = gov.register(true);
        assert!(!small.update(300));
        // big pushes the total to 1200: big itself is the largest resident,
        // so the updating slot is flagged and told to spill inline.
        assert!(big.update(900));
        assert_eq!(gov.evictions(), 1);
        // small was never flagged.
        assert!(!small.take_request());
    }

    #[test]
    fn remote_victim_flag_is_sticky_until_polled() {
        let gov = Arc::new(MemoryGovernor::new(1000));
        let big = gov.register(true);
        let small = gov.register(true);
        assert!(!big.update(800));
        // small's update overflows the budget; big (largest) is the victim
        // and learns about it at its next governor touch.
        assert!(!small.update(400));
        assert_eq!(gov.evictions(), 1);
        assert!(big.take_request());
        assert!(!big.take_request(), "request consumed");
    }

    #[test]
    fn unevictable_registrants_only_add_pressure() {
        let gov = Arc::new(MemoryGovernor::new(1000));
        let pinned = gov.register(false);
        let buf = gov.register(true);
        assert!(!pinned.update(900));
        // 100 bytes of evictable data + 900 pinned: the evictable slot is
        // the only candidate even though it is far smaller.
        assert!(buf.update(200));
        assert!(!pinned.take_request(), "unevictable slot never flagged");
    }

    #[test]
    fn all_unevictable_over_budget_does_not_loop() {
        let gov = Arc::new(MemoryGovernor::new(10));
        let a = gov.register(false);
        assert!(!a.update(1_000_000));
        assert_eq!(gov.evictions(), 0);
    }

    #[test]
    fn ties_break_on_lowest_id() {
        let gov = Arc::new(MemoryGovernor::new(100));
        let first = gov.register(true);
        let second = gov.register(true);
        assert!(!first.update(80));
        assert!(!second.update(80));
        // Equal residents: deterministic victim is the lower id.
        assert!(first.take_request());
        assert!(!second.take_request());
    }

    #[test]
    fn dropped_handle_releases_residency() {
        let gov = Arc::new(MemoryGovernor::new(100));
        {
            let a = gov.register(true);
            a.update(90);
            assert_eq!(gov.resident_bytes(), 90);
        }
        assert_eq!(gov.resident_bytes(), 0);
        let b = gov.register(true);
        assert!(!b.update(95), "old registration no longer counts");
    }

    #[test]
    fn sweep_removes_only_dead_pid_files() {
        if !std::path::Path::new("/proc").is_dir() {
            return;
        }
        let dir = std::env::temp_dir().join("rpt_sweep_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let own = dir.join(format!("rpt_spill_{}_q0_0.bin", std::process::id()));
        // PID 0 is the kernel scheduler; /proc/0 never exists on Linux.
        let dead = dir.join("rpt_spill_0_q0_1.bin");
        let other = dir.join("unrelated.bin");
        for p in [&own, &dead, &other] {
            std::fs::write(p, b"x").unwrap();
        }
        let removed = sweep_orphan_spill_files(&dir);
        assert_eq!(removed, 1);
        assert!(own.exists(), "live-process file must survive");
        assert!(!dead.exists(), "dead-process file must be swept");
        assert!(other.exists(), "non-spill files untouched");
        std::fs::remove_dir_all(&dir).ok();
    }
}
