//! Parser robustness properties: no panics on arbitrary input, and
//! generated well-formed queries always parse to the expected shape.

use proptest::prelude::*;
use rpt_sql::{parse_select, SelectItem};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The parser must never panic, whatever bytes it gets.
    #[test]
    fn never_panics(input in "\\PC{0,120}") {
        let _ = parse_select(&input);
    }

    /// Well-formed comma-join queries round-trip structurally.
    #[test]
    fn generated_queries_parse(
        n_tables in 1usize..5,
        n_preds in 0usize..4,
        with_group in proptest::bool::ANY,
    ) {
        let from: Vec<String> = (0..n_tables).map(|i| format!("t{i} a{i}")).collect();
        let mut preds: Vec<String> = (0..n_preds.min(n_tables.saturating_sub(1)))
            .map(|i| format!("a{i}.k = a{}.k", i + 1))
            .collect();
        preds.push("a0.v > 10".into());
        let group = if with_group { " GROUP BY a0.g" } else { "" };
        let sql = format!(
            "SELECT a0.g, COUNT(*) AS c FROM {} WHERE {}{}",
            from.join(", "),
            preds.join(" AND "),
            group
        );
        let stmt = parse_select(&sql).expect("well-formed query must parse");
        prop_assert_eq!(stmt.from.len(), n_tables);
        prop_assert_eq!(stmt.items.len(), 2);
        prop_assert!(stmt.where_clause.is_some());
        prop_assert_eq!(stmt.group_by.len(), usize::from(with_group));
        match &stmt.items[1] {
            SelectItem::Expr { alias, .. } => prop_assert_eq!(alias.as_deref(), Some("c")),
            other => prop_assert!(false, "unexpected item {:?}", other),
        }
    }

    /// Literal edge cases: big numbers, quotes, unicode in strings.
    #[test]
    fn string_literals_roundtrip(s in "[a-zA-Z0-9 _%]{0,30}") {
        let sql = format!("SELECT * FROM t WHERE t.name = '{s}'");
        let stmt = parse_select(&sql).expect("quoted literal must parse");
        prop_assert!(stmt.where_clause.is_some());
    }
}

#[test]
fn pathological_inputs_error_cleanly() {
    for bad in [
        "",
        "SELECT",
        "SELECT *",
        "SELECT * FROM",
        "SELECT * FROM t WHERE (a = 1",
        "SELECT * FROM t WHERE a IN ()",
        "SELECT * FROM t GROUP",
        "SELECT COUNT( FROM t",
        "SELECT * FROM t WHERE a BETWEEN 1",
        "'unterminated",
        "SELECT * FROM t; SELECT * FROM u",
    ] {
        assert!(parse_select(bad).is_err(), "should reject: {bad}");
    }
}
