//! SQL tokenizer.

use std::fmt;

/// Tokens of the SQL subset. Keywords are case-insensitive and surface as
/// `Keyword` with an upper-cased payload; everything else identifier-like is
/// `Ident` (original case preserved).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN",
    "IS", "NULL", "TRUE", "FALSE", "COUNT", "SUM", "MIN", "MAX", "AVG", "HAVING", "ORDER", "LIMIT",
    "DISTINCT", "OFFSET", "ASC", "DESC", "NULLS", "FIRST", "LAST",
];

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(format!("unexpected `!` at byte {i}"));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // string literal with '' escaping
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err("unterminated string literal".into());
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == b'.'
                            && i + 1 < bytes.len()
                            && bytes[i + 1].is_ascii_digit()))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(
                        text.parse()
                            .map_err(|e| format!("bad float `{text}`: {e}"))?,
                    ));
                } else {
                    tokens.push(Token::Int(
                        text.parse().map_err(|e| format!("bad int `{text}`: {e}"))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            other => return Err(format!("unexpected character `{other}` at byte {i}")),
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let t = tokenize("SELECT a.x FROM t a WHERE a.x >= 10").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("a".into()));
        assert_eq!(t[2], Token::Dot);
        assert!(t.contains(&Token::GtEq));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn strings_with_escapes() {
        let t = tokenize("WHERE name = 'O''Brien'").unwrap();
        assert!(t.contains(&Token::Str("O'Brien".into())));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        let t = tokenize("1 2.5 100").unwrap();
        assert_eq!(t[0], Token::Int(1));
        assert_eq!(t[1], Token::Float(2.5));
        assert_eq!(t[2], Token::Int(100));
    }

    #[test]
    fn operators() {
        let t = tokenize("a <> b != c <= d >= e < f > g = h").unwrap();
        let ops: Vec<&Token> = t
            .iter()
            .filter(|x| !matches!(x, Token::Ident(_) | Token::Eof))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::NotEq,
                &Token::NotEq,
                &Token::LtEq,
                &Token::GtEq,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let t = tokenize("select From wHeRe").unwrap();
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Keyword("FROM".into()));
        assert_eq!(t[2], Token::Keyword("WHERE".into()));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- the select list\n x").unwrap();
        assert_eq!(t[1], Token::Ident("x".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
