//! Recursive-descent parser.
//!
//! Grammar (precedence low → high): `OR` < `AND` < `NOT` < comparison /
//! `IN` / `LIKE` / `BETWEEN` / `IS NULL` < `+ -` < `* /` < primary.

use crate::ast::*;
use crate::lexer::{tokenize, Token};

pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse a single SELECT statement.
pub fn parse_select(sql: &str) -> Result<SelectStmt, String> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    // optional trailing semicolon
    if p.peek() == &Token::Semicolon {
        p.advance();
    }
    if p.peek() != &Token::Eof {
        return Err(format!("unexpected trailing token `{}`", p.peek()));
    }
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), String> {
        match self.advance() {
            Token::Keyword(k) if k == kw => Ok(()),
            other => Err(format!("expected {kw}, found `{other}`")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), String> {
        let t = self.advance();
        if &t == tok {
            Ok(())
        } else {
            Err(format!("expected `{tok}`, found `{t}`"))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, found `{other}`")),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, String> {
        self.expect_keyword("SELECT")?;
        // we accept and ignore DISTINCT (our workloads don't rely on it)
        self.eat_keyword("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.peek() == &Token::Comma {
            self.advance();
            items.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.peek() == &Token::Comma {
            self.advance();
            from.push(self.table_ref()?);
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.column_ref()?);
            while self.peek() == &Token::Comma {
                self.advance();
                group_by.push(self.column_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            order_by.push(self.order_by_item()?);
            while self.peek() == &Token::Comma {
                self.advance();
                order_by.push(self.order_by_item()?);
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            Some(self.bound("LIMIT")?)
        } else {
            None
        };
        let offset = if self.eat_keyword("OFFSET") {
            Some(self.bound("OFFSET")?)
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn order_by_item(&mut self) -> Result<OrderByItem, String> {
        let target = match self.peek().clone() {
            Token::Int(n) => {
                self.advance();
                if n < 1 {
                    return Err(format!("ORDER BY ordinal must be >= 1, found `{n}`"));
                }
                OrderByTarget::Ordinal(n as usize)
            }
            Token::Ident(_) => OrderByTarget::Column(self.column_ref()?),
            other => return Err(format!("expected ORDER BY key, found `{other}`")),
        };
        let desc = if self.eat_keyword("DESC") {
            true
        } else {
            self.eat_keyword("ASC");
            false
        };
        let nulls_first = if self.eat_keyword("NULLS") {
            if self.eat_keyword("FIRST") {
                Some(true)
            } else if self.eat_keyword("LAST") {
                Some(false)
            } else {
                return Err(format!(
                    "expected FIRST or LAST after NULLS, found `{}`",
                    self.peek()
                ));
            }
        } else {
            None
        };
        Ok(OrderByItem {
            target,
            desc,
            nulls_first,
        })
    }

    /// A non-negative integer bound for LIMIT / OFFSET.
    fn bound(&mut self, clause: &str) -> Result<u64, String> {
        match self.advance() {
            Token::Int(n) if n >= 0 => Ok(n as u64),
            Token::Int(n) => Err(format!("{clause} must be non-negative, found `{n}`")),
            other => Err(format!("{clause} expects an integer, found `{other}`")),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, String> {
        if self.peek() == &Token::Star {
            self.advance();
            return Ok(SelectItem::Star);
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            // implicit alias: `SUM(x) total`
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, String> {
        let table = self.ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, String> {
        let first = self.ident()?;
        if self.peek() == &Token::Dot {
            self.advance();
            let name = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
            })
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<AstExpr, String> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, String> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr, String> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr, String> {
        if self.eat_keyword("NOT") {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<AstExpr, String> {
        let left = self.additive()?;
        // postfix predicates
        match self.peek().clone() {
            Token::Eq | Token::NotEq | Token::Lt | Token::LtEq | Token::Gt | Token::GtEq => {
                let op = match self.advance() {
                    Token::Eq => BinOp::Eq,
                    Token::NotEq => BinOp::NotEq,
                    Token::Lt => BinOp::Lt,
                    Token::LtEq => BinOp::LtEq,
                    Token::Gt => BinOp::Gt,
                    Token::GtEq => BinOp::GtEq,
                    _ => unreachable!(),
                };
                let right = self.additive()?;
                Ok(AstExpr::Binary {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            Token::Keyword(k) if k == "IS" => {
                self.advance();
                let negated = self.eat_keyword("NOT");
                self.expect_keyword("NULL")?;
                Ok(AstExpr::IsNull {
                    expr: Box::new(left),
                    negated,
                })
            }
            Token::Keyword(k) if k == "IN" => {
                self.advance();
                self.in_list(left, false)
            }
            Token::Keyword(k)
                if k == "NOT"
                    && matches!(self.peek2(), Token::Keyword(k2) if k2 == "IN" || k2 == "LIKE") =>
            {
                self.advance(); // NOT
                if self.eat_keyword("IN") {
                    self.in_list(left, true)
                } else {
                    self.expect_keyword("LIKE")?;
                    self.like(left, true)
                }
            }
            Token::Keyword(k) if k == "LIKE" => {
                self.advance();
                self.like(left, false)
            }
            Token::Keyword(k) if k == "BETWEEN" => {
                self.advance();
                let low = self.additive()?;
                self.expect_keyword("AND")?;
                let high = self.additive()?;
                Ok(AstExpr::Between {
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                })
            }
            _ => Ok(left),
        }
    }

    fn in_list(&mut self, left: AstExpr, negated: bool) -> Result<AstExpr, String> {
        self.expect(&Token::LParen)?;
        let mut list = vec![self.literal()?];
        while self.peek() == &Token::Comma {
            self.advance();
            list.push(self.literal()?);
        }
        self.expect(&Token::RParen)?;
        Ok(AstExpr::InList {
            expr: Box::new(left),
            list,
            negated,
        })
    }

    fn like(&mut self, left: AstExpr, negated: bool) -> Result<AstExpr, String> {
        match self.advance() {
            Token::Str(pattern) => Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            }),
            other => Err(format!("LIKE expects a string pattern, found `{other}`")),
        }
    }

    fn literal(&mut self) -> Result<Literal, String> {
        match self.advance() {
            Token::Int(v) => Ok(Literal::Int(v)),
            Token::Float(v) => Ok(Literal::Float(v)),
            Token::Str(s) => Ok(Literal::Str(s)),
            Token::Keyword(k) if k == "TRUE" => Ok(Literal::Bool(true)),
            Token::Keyword(k) if k == "FALSE" => Ok(Literal::Bool(false)),
            Token::Keyword(k) if k == "NULL" => Ok(Literal::Null),
            Token::Minus => match self.advance() {
                Token::Int(v) => Ok(Literal::Int(-v)),
                Token::Float(v) => Ok(Literal::Float(-v)),
                other => Err(format!("expected number after `-`, found `{other}`")),
            },
            other => Err(format!("expected literal, found `{other}`")),
        }
    }

    fn additive(&mut self) -> Result<AstExpr, String> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr, String> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.primary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<AstExpr, String> {
        match self.peek().clone() {
            Token::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Int(_) | Token::Float(_) | Token::Str(_) | Token::Minus => {
                Ok(AstExpr::Literal(self.literal()?))
            }
            Token::Keyword(k) if k == "TRUE" || k == "FALSE" || k == "NULL" => {
                Ok(AstExpr::Literal(self.literal()?))
            }
            Token::Keyword(k) if matches!(k.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") => {
                self.advance();
                let func = match k.as_str() {
                    "COUNT" => AggName::Count,
                    "SUM" => AggName::Sum,
                    "MIN" => AggName::Min,
                    "MAX" => AggName::Max,
                    "AVG" => AggName::Avg,
                    _ => unreachable!(),
                };
                self.expect(&Token::LParen)?;
                if self.peek() == &Token::Star {
                    self.advance();
                    self.expect(&Token::RParen)?;
                    return Ok(AstExpr::Agg {
                        func,
                        arg: None,
                        star: true,
                    });
                }
                let arg = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(AstExpr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                    star: false,
                })
            }
            Token::Ident(_) => Ok(AstExpr::Column(self.column_ref()?)),
            other => Err(format!("unexpected token `{other}` in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let s = parse_select("SELECT * FROM t").unwrap();
        assert_eq!(s.items, vec![SelectItem::Star]);
        assert_eq!(s.from[0].table, "t");
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn joins_in_where() {
        let s = parse_select(
            "SELECT t.title FROM title t, movie_keyword mk, keyword k \
             WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword LIKE '%sequel%'",
        )
        .unwrap();
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[1].binding_name(), "mk");
        let w = s.where_clause.unwrap();
        // AND of AND: leftmost grouping
        match w {
            AstExpr::Binary { op: BinOp::And, .. } => {}
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = parse_select(
            "SELECT o.status, COUNT(*) AS cnt, SUM(l.price) total \
             FROM orders o, lineitem l WHERE o.id = l.oid GROUP BY o.status",
        )
        .unwrap();
        assert!(s.has_aggregates());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.group_by[0].name, "status");
        match &s.items[1] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("cnt"));
                assert!(matches!(expr, AstExpr::Agg { star: true, .. }));
            }
            _ => panic!(),
        }
        match &s.items[2] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_or_and() {
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // OR must be the root.
        match s.where_clause.unwrap() {
            AstExpr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, AstExpr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_or() {
        let s =
            parse_select("SELECT * FROM t WHERE (a < 100 AND b < 200) OR (a > 500 AND b > 400)")
                .unwrap();
        assert!(matches!(
            s.where_clause.unwrap(),
            AstExpr::Binary { op: BinOp::Or, .. }
        ));
    }

    #[test]
    fn in_between_like_isnull() {
        let s = parse_select(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 5 AND 10 \
             AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN (9) AND f NOT LIKE '%y%'",
        )
        .unwrap();
        let mut found_in = 0;
        let mut found_between = 0;
        let mut found_like = 0;
        let mut found_isnull = 0;
        fn walk(e: &AstExpr, f: &mut impl FnMut(&AstExpr)) {
            f(e);
            if let AstExpr::Binary { left, right, .. } = e {
                walk(left, f);
                walk(right, f);
            }
        }
        walk(&s.where_clause.unwrap(), &mut |e| match e {
            AstExpr::InList { negated, .. } => {
                found_in += 1;
                let _ = negated;
            }
            AstExpr::Between { .. } => found_between += 1,
            AstExpr::Like { .. } => found_like += 1,
            AstExpr::IsNull { negated: true, .. } => found_isnull += 1,
            _ => {}
        });
        assert_eq!(
            (found_in, found_between, found_like, found_isnull),
            (2, 1, 2, 1)
        );
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse_select("SELECT a + b * c FROM t").unwrap();
        match &s.items[0] {
            SelectItem::Expr { expr, .. } => match expr {
                AstExpr::Binary {
                    op: BinOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(**right, AstExpr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected +, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn negative_literals() {
        let s = parse_select("SELECT * FROM t WHERE a > -5").unwrap();
        match s.where_clause.unwrap() {
            AstExpr::Binary { right, .. } => {
                assert_eq!(*right, AstExpr::Literal(Literal::Int(-5)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_select("SELECT").is_err());
        assert!(parse_select("SELECT * FROM").is_err());
        assert!(parse_select("SELECT * FROM t WHERE").is_err());
        assert!(parse_select("SELECT * FROM t extra garbage !!").is_err());
        assert!(parse_select("SELECT * FROM t WHERE a LIKE 5").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_select("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn order_by_columns_and_ordinals() {
        let s =
            parse_select("SELECT a, b FROM t ORDER BY t.a DESC NULLS LAST, 2 ASC NULLS FIRST, b")
                .unwrap();
        assert_eq!(s.order_by.len(), 3);
        assert_eq!(
            s.order_by[0],
            OrderByItem {
                target: OrderByTarget::Column(ColumnRef::new(Some("t"), "a")),
                desc: true,
                nulls_first: Some(false),
            }
        );
        assert_eq!(
            s.order_by[1],
            OrderByItem {
                target: OrderByTarget::Ordinal(2),
                desc: false,
                nulls_first: Some(true),
            }
        );
        assert_eq!(
            s.order_by[2],
            OrderByItem {
                target: OrderByTarget::Column(ColumnRef::new(None, "b")),
                desc: false,
                nulls_first: None,
            }
        );
        assert!(s.limit.is_none());
        assert!(s.offset.is_none());
    }

    #[test]
    fn limit_and_offset() {
        let s = parse_select("SELECT a FROM t ORDER BY a LIMIT 10 OFFSET 3").unwrap();
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(3));
        // LIMIT without ORDER BY is legal (arbitrary-prefix semantics).
        let s = parse_select("SELECT a FROM t LIMIT 5").unwrap();
        assert!(s.order_by.is_empty());
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.offset, None);
        // LIMIT 0 is legal.
        assert_eq!(
            parse_select("SELECT a FROM t LIMIT 0").unwrap().limit,
            Some(0)
        );
    }

    #[test]
    fn order_by_limit_errors() {
        // trailing comma in the key list
        assert!(parse_select("SELECT a FROM t ORDER BY a, LIMIT 3").is_err());
        assert!(parse_select("SELECT a FROM t ORDER BY a,").is_err());
        // non-integer / negative bounds
        let e = parse_select("SELECT a FROM t ORDER BY a LIMIT x").unwrap_err();
        assert!(e.contains("LIMIT expects an integer"), "{e}");
        let e = parse_select("SELECT a FROM t LIMIT 2.5").unwrap_err();
        assert!(e.contains("LIMIT expects an integer"), "{e}");
        let e = parse_select("SELECT a FROM t LIMIT -1").unwrap_err();
        assert!(e.contains("integer"), "{e}");
        let e = parse_select("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 'x'").unwrap_err();
        assert!(e.contains("OFFSET expects an integer"), "{e}");
        // zero / negative ordinals
        let e = parse_select("SELECT a FROM t ORDER BY 0").unwrap_err();
        assert!(e.contains("ordinal"), "{e}");
        // NULLS without FIRST/LAST
        let e = parse_select("SELECT a FROM t ORDER BY a NULLS").unwrap_err();
        assert!(e.contains("FIRST or LAST"), "{e}");
        // ORDER without BY
        assert!(parse_select("SELECT a FROM t ORDER a").is_err());
        // clauses in the wrong order: LIMIT before ORDER BY leaves trailing tokens
        assert!(parse_select("SELECT a FROM t LIMIT 3 ORDER BY a").is_err());
    }
}
