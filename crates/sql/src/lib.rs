//! # rpt-sql
//!
//! A hand-rolled lexer + recursive-descent parser for the SQL subset the
//! paper's workloads need: `SELECT` lists with aggregates, comma-separated
//! `FROM` with aliases (joins are expressed as WHERE equality predicates, as
//! in TPC-H/JOB source queries), `WHERE` with AND/OR/NOT, comparisons,
//! `IN`, `LIKE`, `BETWEEN`, `IS [NOT] NULL`, `GROUP BY`, and
//! `ORDER BY col [ASC|DESC] [NULLS FIRST|LAST], ... LIMIT n [OFFSET k]`.
//!
//! The parser produces a provider-agnostic AST; name resolution against a
//! catalog happens in `rpt-core`'s binder.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{
    AstExpr, BinOp, ColumnRef, Literal, OrderByItem, OrderByTarget, SelectItem, SelectStmt,
    TableRef,
};
pub use parser::parse_select;
