//! Abstract syntax tree for the SQL subset.

/// A (possibly qualified) column reference, e.g. `mk.movie_id` or `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColumnRef {
    pub fn new(qualifier: Option<&str>, name: &str) -> Self {
        ColumnRef {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

/// Binary operators (comparisons, boolean connectives, arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate function names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Column(ColumnRef),
    Literal(Literal),
    Binary {
        op: BinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    InList {
        expr: Box<AstExpr>,
        list: Vec<Literal>,
        negated: bool,
    },
    /// `expr LIKE 'pattern'` — the binder understands `%x%` (contains),
    /// `x%` (prefix) and exact patterns.
    Like {
        expr: Box<AstExpr>,
        pattern: String,
        negated: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
    },
    /// Aggregate call. `star` is `COUNT(*)`.
    Agg {
        func: AggName,
        arg: Option<Box<AstExpr>>,
        star: bool,
    },
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Star,
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

/// A table in the FROM list with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// What an ORDER BY key refers to: an output column by name/alias, or a
/// 1-based ordinal into the SELECT list (`ORDER BY 2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderByTarget {
    Column(ColumnRef),
    Ordinal(usize),
}

/// One `ORDER BY` key with its direction and NULL placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderByItem {
    pub target: OrderByTarget,
    pub desc: bool,
    /// `Some(true)` = NULLS FIRST, `Some(false)` = NULLS LAST, `None` =
    /// dialect default (NULLS LAST for ASC, NULLS FIRST for DESC).
    pub nulls_first: Option<bool>,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<ColumnRef>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
}

impl SelectStmt {
    /// Does the SELECT list contain any aggregate?
    pub fn has_aggregates(&self) -> bool {
        fn expr_has_agg(e: &AstExpr) -> bool {
            match e {
                AstExpr::Agg { .. } => true,
                AstExpr::Binary { left, right, .. } => expr_has_agg(left) || expr_has_agg(right),
                AstExpr::Not(x) => expr_has_agg(x),
                AstExpr::IsNull { expr, .. }
                | AstExpr::InList { expr, .. }
                | AstExpr::Like { expr, .. } => expr_has_agg(expr),
                AstExpr::Between { expr, low, high } => {
                    expr_has_agg(expr) || expr_has_agg(low) || expr_has_agg(high)
                }
                _ => false,
            }
        }
        self.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr_has_agg(expr),
            SelectItem::Star => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_display() {
        assert_eq!(ColumnRef::new(Some("t"), "id").to_string(), "t.id");
        assert_eq!(ColumnRef::new(None, "id").to_string(), "id");
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef {
            table: "title".into(),
            alias: Some("t".into()),
        };
        assert_eq!(t.binding_name(), "t");
        let t = TableRef {
            table: "title".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "title");
    }

    #[test]
    fn aggregate_detection() {
        let stmt = SelectStmt {
            items: vec![SelectItem::Expr {
                expr: AstExpr::Agg {
                    func: AggName::Count,
                    arg: None,
                    star: true,
                },
                alias: None,
            }],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert!(stmt.has_aggregates());
        let plain = SelectStmt {
            items: vec![SelectItem::Star],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
            offset: None,
        };
        assert!(!plain.has_aggregates());
    }
}
