//! Unified error type for the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the engine.
///
/// `BudgetExceeded` is the laptop-scale analogue of the paper's
/// `1000 × t_opt` timeout: the executor aborts a plan once it has processed
/// more intermediate tuples than the configured work budget, so catastrophic
/// join orders are capped deterministically instead of by wall clock.
#[derive(Debug)]
pub enum Error {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// AST could not be resolved against the catalog.
    Bind(String),
    /// Logical planning / optimization failure.
    Plan(String),
    /// Runtime execution failure.
    Exec(String),
    /// The executor exceeded its work budget (timeout analogue).
    BudgetExceeded {
        /// Tuples processed before the abort.
        processed: u64,
        /// The configured budget.
        budget: u64,
    },
    /// Underlying I/O failure (on-disk tables, spill files).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::BudgetExceeded { processed, budget } => write!(
                f,
                "work budget exceeded: processed {processed} tuples (budget {budget})"
            ),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// True when the error is the budget/timeout abort, which the robustness
    /// harness records as a `*` (timeout) rather than a hard failure.
    pub fn is_budget(&self) -> bool {
        matches!(self, Error::BudgetExceeded { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Parse("unexpected token".into());
        assert!(e.to_string().contains("parse error"));
        let e = Error::BudgetExceeded {
            processed: 10,
            budget: 5,
        };
        assert!(e.to_string().contains("work budget"));
        assert!(e.is_budget());
        assert!(!Error::Plan("x".into()).is_budget());
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
