//! Schemas: named, typed column lists.

use crate::types::DataType;
use crate::{Error, Result};

/// A single named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields describing a table or an intermediate chunk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::Bind(format!("column `{name}` not found in schema")))
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Concatenate two schemas (used when a hash join glues probe-side and
    /// build-side columns together).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Schema restricted to the given column indices, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ])
    }

    #[test]
    fn index_lookup() {
        let schema = s();
        assert_eq!(schema.index_of("a").unwrap(), 0);
        assert_eq!(schema.index_of("b").unwrap(), 1);
        assert!(schema.index_of("c").is_err());
    }

    #[test]
    fn join_and_project() {
        let left = s();
        let right = Schema::new(vec![Field::new("c", DataType::Float64)]);
        let joined = left.join(&right);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.index_of("c").unwrap(), 2);
        let proj = joined.project(&[2, 0]);
        assert_eq!(proj.fields[0].name, "c");
        assert_eq!(proj.fields[1].name, "a");
    }

    #[test]
    fn empty() {
        assert!(Schema::empty().is_empty());
        assert_eq!(Schema::empty().len(), 0);
    }
}
