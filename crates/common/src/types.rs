//! Logical data types and scalar (single) values.

use std::cmp::Ordering;
use std::fmt;

/// The logical column types supported by the engine.
///
/// Dates are encoded as `Int64` day numbers by the workload generators; the
/// paper's evaluation only exercises equality joins on integer keys plus
/// range/equality filters, so this small lattice is sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int64,
    Float64,
    Utf8,
    Bool,
}

impl DataType {
    /// Width in bits of this type's fixed-width group-key encoding, or
    /// `None` when the type has no fixed-width encoding (`Utf8`) or packing
    /// it would be lossy (`Float64` keys keep the encoded-byte path so
    /// `-0.0`/`NaN` semantics stay byte-defined). A packed key spends one
    /// extra bit per column on the NULL flag; see
    /// `Vector::pack_fixed_key`.
    pub fn fixed_key_bits(self) -> Option<u32> {
        match self {
            DataType::Int64 => Some(64),
            DataType::Bool => Some(1),
            DataType::Float64 | DataType::Utf8 => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT64",
            DataType::Float64 => "FLOAT64",
            DataType::Utf8 => "UTF8",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single (possibly NULL) value.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarValue {
    Null,
    Int64(i64),
    Float64(f64),
    Utf8(String),
    Bool(bool),
}

impl ScalarValue {
    /// Data type of this scalar, or `None` for NULL (untyped).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            ScalarValue::Null => None,
            ScalarValue::Int64(_) => Some(DataType::Int64),
            ScalarValue::Float64(_) => Some(DataType::Float64),
            ScalarValue::Utf8(_) => Some(DataType::Utf8),
            ScalarValue::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, ScalarValue::Null)
    }

    /// SQL-style three-valued comparison. Returns `None` when either side is
    /// NULL or the types are incomparable.
    pub fn partial_cmp_sql(&self, other: &ScalarValue) -> Option<Ordering> {
        use ScalarValue::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (Float64(a), Float64(b)) => a.partial_cmp(b),
            (Int64(a), Float64(b)) => (*a as f64).partial_cmp(b),
            (Float64(a), Int64(b)) => a.partial_cmp(&(*b as f64)),
            (Utf8(a), Utf8(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Extract an `i64`, coercing from float/bool where lossless-ish.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ScalarValue::Int64(v) => Some(*v),
            ScalarValue::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ScalarValue::Float64(v) => Some(*v),
            ScalarValue::Int64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            ScalarValue::Utf8(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ScalarValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::Null => f.write_str("NULL"),
            ScalarValue::Int64(v) => write!(f, "{v}"),
            ScalarValue::Float64(v) => write!(f, "{v}"),
            ScalarValue::Utf8(v) => write!(f, "{v}"),
            ScalarValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_types() {
        assert_eq!(ScalarValue::Int64(3).data_type(), Some(DataType::Int64));
        assert_eq!(ScalarValue::Null.data_type(), None);
        assert!(ScalarValue::Null.is_null());
    }

    #[test]
    fn sql_comparison() {
        use ScalarValue::*;
        assert_eq!(Int64(1).partial_cmp_sql(&Int64(2)), Some(Ordering::Less));
        assert_eq!(
            Int64(2).partial_cmp_sql(&Float64(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(Null.partial_cmp_sql(&Int64(1)), None);
        assert_eq!(
            Utf8("a".into()).partial_cmp_sql(&Utf8("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Utf8("a".into()).partial_cmp_sql(&Int64(1)), None);
    }

    #[test]
    fn coercions() {
        assert_eq!(ScalarValue::Int64(7).as_f64(), Some(7.0));
        assert_eq!(ScalarValue::Float64(1.5).as_i64(), None);
        assert_eq!(ScalarValue::Bool(true).as_i64(), Some(1));
        assert_eq!(ScalarValue::Utf8("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn display() {
        assert_eq!(ScalarValue::Int64(42).to_string(), "42");
        assert_eq!(ScalarValue::Null.to_string(), "NULL");
        assert_eq!(DataType::Utf8.to_string(), "UTF8");
    }
}
