//! Data chunks: the unit of vectorized execution.
//!
//! A [`DataChunk`] carries up to [`VECTOR_SIZE`] rows across a set of column
//! [`Vector`]s, plus an optional [`SelectionVector`] marking the subset of
//! positions that are logically present. Filters and `ProbeBF` refine the
//! selection without copying column payloads; pipeline breakers call
//! [`DataChunk::flatten`] to materialize the survivors.

use crate::schema::Schema;
use crate::types::ScalarValue;
use crate::vector::Vector;
use crate::{Error, Result};

/// Default batch size, matching DuckDB's 2048-row chunks described in §4.1.
pub const VECTOR_SIZE: usize = 2048;

/// Indices (into the chunk's physical rows) of logically-present rows.
pub type SelectionVector = Vec<u32>;

/// A batch of rows in columnar layout.
#[derive(Debug, Clone, Default)]
pub struct DataChunk {
    pub columns: Vec<Vector>,
    /// Physical row count (every column has this many entries).
    len: usize,
    /// When present, only the listed positions are logically in the chunk.
    pub selection: Option<SelectionVector>,
}

impl DataChunk {
    pub fn new(columns: Vec<Vector>) -> Self {
        let len = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == len));
        DataChunk {
            columns,
            len,
            selection: None,
        }
    }

    pub fn empty_like(schema: &Schema) -> Self {
        DataChunk {
            columns: schema
                .fields
                .iter()
                .map(|f| Vector::new_empty(f.data_type))
                .collect(),
            len: 0,
            selection: None,
        }
    }

    /// Physical row count (ignores selection).
    pub fn capacity_rows(&self) -> usize {
        self.len
    }

    /// Logical row count (respects selection).
    pub fn num_rows(&self) -> usize {
        match &self.selection {
            Some(sel) => sel.len(),
            None => self.len,
        }
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn is_logically_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Physical index of the `i`-th logical row.
    #[inline]
    pub fn physical_index(&self, logical: usize) -> usize {
        match &self.selection {
            Some(sel) => sel[logical] as usize,
            None => logical,
        }
    }

    /// Read logical row `row`, column `col` as a scalar.
    pub fn value(&self, col: usize, row: usize) -> ScalarValue {
        self.columns[col].get(self.physical_index(row))
    }

    /// Replace the selection with `sel` (positions are *physical* indices).
    pub fn set_selection(&mut self, sel: SelectionVector) {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.len));
        self.selection = Some(sel);
    }

    /// Refine the current selection: keep the logical rows whose positions in
    /// the *logical* order appear in `keep` (ascending logical indices).
    pub fn refine_selection(&mut self, keep: &[u32]) {
        let new_sel: SelectionVector = match &self.selection {
            Some(sel) => keep.iter().map(|&k| sel[k as usize]).collect(),
            None => keep.to_vec(),
        };
        self.selection = Some(new_sel);
    }

    /// Materialize the selection: after this, selection is `None` and all
    /// physical rows are logical rows.
    pub fn flatten(&mut self) {
        if let Some(sel) = self.selection.take() {
            for col in &mut self.columns {
                *col = col.take(&sel);
            }
            self.len = sel.len();
        }
    }

    /// A flattened copy (self untouched).
    pub fn flattened(&self) -> DataChunk {
        let mut c = self.clone();
        c.flatten();
        c
    }

    /// Keep only the given columns (logical projection).
    pub fn project(&self, indices: &[usize]) -> DataChunk {
        DataChunk {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            len: self.len,
            selection: self.selection.clone(),
        }
    }

    /// Append the logical rows of `other` to this (flattened) chunk.
    pub fn append(&mut self, other: &DataChunk) -> Result<()> {
        if self.selection.is_some() {
            return Err(Error::Exec(
                "append target must be flattened (no selection vector)".into(),
            ));
        }
        if self.columns.len() != other.columns.len() {
            return Err(Error::Exec(format!(
                "column count mismatch in append: {} vs {}",
                self.columns.len(),
                other.columns.len()
            )));
        }
        let flat = other.flattened();
        for (dst, src) in self.columns.iter_mut().zip(flat.columns.iter()) {
            dst.append(src)?;
        }
        self.len += flat.len;
        Ok(())
    }

    /// Extract logical row `row` as a vector of scalars (slow path: tests,
    /// result display).
    pub fn row(&self, row: usize) -> Vec<ScalarValue> {
        (0..self.num_columns())
            .map(|c| self.value(c, row))
            .collect()
    }

    /// All logical rows as scalar tuples (test/driver convenience).
    pub fn rows(&self) -> Vec<Vec<ScalarValue>> {
        (0..self.num_rows()).map(|r| self.row(r)).collect()
    }
}

/// Split `total` rows into chunk-sized `(start, len)` ranges.
pub fn chunk_ranges(total: usize, chunk_size: usize) -> impl Iterator<Item = (usize, usize)> {
    let chunk_size = chunk_size.max(1);
    (0..total.div_ceil(chunk_size)).map(move |i| {
        let start = i * chunk_size;
        (start, chunk_size.min(total - start))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::Field;

    fn chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![10, 20, 30, 40]),
            Vector::from_utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]),
        ])
    }

    #[test]
    fn counts() {
        let c = chunk();
        assert_eq!(c.num_rows(), 4);
        assert_eq!(c.num_columns(), 2);
        assert!(!c.is_logically_empty());
    }

    #[test]
    fn selection_changes_logical_view() {
        let mut c = chunk();
        c.set_selection(vec![1, 3]);
        assert_eq!(c.num_rows(), 2);
        assert_eq!(c.value(0, 0), ScalarValue::Int64(20));
        assert_eq!(c.value(1, 1), ScalarValue::Utf8("d".into()));
    }

    #[test]
    fn refine_composes_selections() {
        let mut c = chunk();
        c.set_selection(vec![0, 2, 3]); // logical: 10, 30, 40
        c.refine_selection(&[1, 2]); // keep logical rows 1,2 -> 30, 40
        assert_eq!(c.num_rows(), 2);
        assert_eq!(c.value(0, 0), ScalarValue::Int64(30));
        assert_eq!(c.value(0, 1), ScalarValue::Int64(40));
    }

    #[test]
    fn flatten_materializes() {
        let mut c = chunk();
        c.set_selection(vec![3, 0]);
        c.flatten();
        assert!(c.selection.is_none());
        assert_eq!(c.capacity_rows(), 2);
        assert_eq!(c.value(0, 0), ScalarValue::Int64(40));
        assert_eq!(c.value(0, 1), ScalarValue::Int64(10));
    }

    #[test]
    fn append_respects_selection_of_source() {
        let mut dst = DataChunk::empty_like(&Schema::new(vec![
            Field::new("x", DataType::Int64),
            Field::new("y", DataType::Utf8),
        ]));
        let mut src = chunk();
        src.set_selection(vec![1]);
        dst.append(&src).unwrap();
        assert_eq!(dst.num_rows(), 1);
        assert_eq!(dst.value(0, 0), ScalarValue::Int64(20));
    }

    #[test]
    fn append_requires_flat_target() {
        let mut dst = chunk();
        dst.set_selection(vec![0]);
        let src = chunk();
        assert!(dst.append(&src).is_err());
    }

    #[test]
    fn ranges() {
        let r: Vec<_> = chunk_ranges(5, 2).collect();
        assert_eq!(r, vec![(0, 2), (2, 2), (4, 1)]);
        assert_eq!(chunk_ranges(0, 2).count(), 0);
        assert_eq!(chunk_ranges(4, 2).count(), 2);
    }

    #[test]
    fn rows_roundtrip() {
        let c = chunk();
        let rows = c.rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[2][0], ScalarValue::Int64(30));
    }
}
