//! Shared string dictionaries backing dictionary-encoded `Utf8` vectors.
//!
//! A [`Utf8Dict`] maps dense `u32` codes to distinct strings. Entries are
//! kept **sorted**, so code order equals lexicographic value order: per-block
//! zone maps over codes are meaningful, and fixed-width group keys packed
//! from codes finalize in the same order as their decoded strings.

use std::sync::Arc;

/// Maximum number of bits a dictionary code occupies when packed into a
/// fixed-width group key (see `DataType::fixed_key_bits`).
pub const DICT_KEY_BITS: u32 = 32;

/// An immutable sorted dictionary of distinct strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Utf8Dict {
    values: Vec<String>,
}

impl Utf8Dict {
    /// Build from a sorted, deduplicated list of values.
    pub fn from_sorted(values: Vec<String>) -> Arc<Utf8Dict> {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]), "dict not sorted");
        Arc::new(Utf8Dict { values })
    }

    /// Build from arbitrary values: sorts and deduplicates.
    pub fn from_values<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Arc<Utf8Dict> {
        let mut v: Vec<String> = values.into_iter().map(Into::into).collect();
        v.sort_unstable();
        v.dedup();
        Arc::new(Utf8Dict { values: v })
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The string for `code`. Panics on out-of-range codes (codes are
    /// produced by [`Utf8Dict::code_of`] against the same dictionary).
    pub fn value(&self, code: usize) -> &str {
        &self.values[code]
    }

    /// The code for `s`, if present (binary search over the sorted entries).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.values
            .binary_search_by(|v| v.as_str().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_codes_follow_lex_order() {
        let d = Utf8Dict::from_values(vec!["pear", "apple", "fig", "apple"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.value(0), "apple");
        assert_eq!(d.value(2), "pear");
        assert_eq!(d.code_of("fig"), Some(1));
        assert_eq!(d.code_of("grape"), None);
        // code order == lexicographic order
        assert!(d.value(0) < d.value(1) && d.value(1) < d.value(2));
    }

    #[test]
    fn empty_dict() {
        let d = Utf8Dict::from_values(Vec::<String>::new());
        assert!(d.is_empty());
        assert_eq!(d.code_of("x"), None);
    }
}
