//! Radix partitioning on join-key hashes.
//!
//! A [`Partitioner`] assigns every key hash to one of a power-of-two number
//! of partitions. Materializing sinks use it to write thread-local
//! *partitioned* runs so the per-partition merges can run in parallel, and
//! probes route each row to the partition whose hash table can contain its
//! matches. Build and probe sides must agree on the routing, so the
//! partition index is a pure function of the key hash.
//!
//! The partition bits are taken from bits 48..56 of the (already
//! avalanche-mixed) hash rather than the extremes: the low bits feed the
//! hash map's bucket index and the topmost bits pick the Bloom filter block
//! and the SwissTable control byte, so carving the partition out of either
//! end would strip entropy from those structures within a partition.

use crate::chunk::DataChunk;

/// Partition counts are capped at 256 (one byte of hash is used for
/// routing); realistic merge parallelism saturates far below this.
pub const MAX_PARTITIONS: usize = 256;

const PARTITION_SHIFT: u32 = 48;

/// Round a requested partition count to the nearest usable value: at least
/// 1, a power of two, at most [`MAX_PARTITIONS`].
pub fn normalize_partition_count(count: usize) -> usize {
    count.clamp(1, MAX_PARTITIONS).next_power_of_two()
}

/// Default partition count for this process: `RPT_PARTITION_COUNT` when set
/// to a positive integer (normalized), else 1 (unpartitioned).
pub fn partition_count_from_env() -> usize {
    std::env::var("RPT_PARTITION_COUNT")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&p| p > 0)
        .map(normalize_partition_count)
        .unwrap_or(1)
}

/// Routes key hashes to one of a power-of-two number of partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    count: usize,
    mask: u64,
}

impl Partitioner {
    pub fn new(count: usize) -> Partitioner {
        let count = normalize_partition_count(count);
        Partitioner {
            count,
            mask: count as u64 - 1,
        }
    }

    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` when partitioning is a no-op (a single partition).
    pub fn is_single(&self) -> bool {
        self.count == 1
    }

    /// Partition of a key hash. NULL keys (sentinel hash `u64::MAX`) land
    /// deterministically in the last partition.
    #[inline(always)]
    pub fn of_hash(&self, hash: u64) -> usize {
        ((hash >> PARTITION_SHIFT) & self.mask) as usize
    }

    /// Split the logical rows of a chunk into per-partition flat chunks,
    /// given one hash per *logical* row. Partitions that receive no rows
    /// are `None`.
    pub fn split_chunk(&self, chunk: &DataChunk, hashes: &[u64]) -> Vec<Option<DataChunk>> {
        debug_assert_eq!(hashes.len(), chunk.num_rows());
        let mut indices: Vec<Vec<u32>> = vec![Vec::new(); self.count];
        for (logical, &h) in hashes.iter().enumerate() {
            indices[self.of_hash(h)].push(chunk.physical_index(logical) as u32);
        }
        indices
            .into_iter()
            .map(|idx| {
                if idx.is_empty() {
                    None
                } else {
                    Some(DataChunk::new(
                        chunk.columns.iter().map(|c| c.take(&idx)).collect(),
                    ))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_i64;
    use crate::{ScalarValue, Vector};

    #[test]
    fn normalization() {
        assert_eq!(normalize_partition_count(0), 1);
        assert_eq!(normalize_partition_count(1), 1);
        assert_eq!(normalize_partition_count(3), 4);
        assert_eq!(normalize_partition_count(8), 8);
        assert_eq!(normalize_partition_count(100), 128);
        assert_eq!(normalize_partition_count(100_000), MAX_PARTITIONS);
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let p = Partitioner::new(8);
        for k in 0..1000i64 {
            let h = hash_i64(k);
            let part = p.of_hash(h);
            assert!(part < 8);
            assert_eq!(part, p.of_hash(h), "routing must be deterministic");
        }
        // Mixed hashes spread sequential keys across partitions.
        let used: std::collections::HashSet<usize> =
            (0..1000i64).map(|k| p.of_hash(hash_i64(k))).collect();
        assert!(used.len() > 4, "only {} partitions used", used.len());
    }

    #[test]
    fn single_partition_takes_everything() {
        let p = Partitioner::new(1);
        assert!(p.is_single());
        assert_eq!(p.of_hash(u64::MAX), 0);
        assert_eq!(p.of_hash(0), 0);
    }

    #[test]
    fn split_chunk_respects_selection_and_routing() {
        let p = Partitioner::new(4);
        let mut chunk = DataChunk::new(vec![
            Vector::from_i64(vec![10, 11, 12, 13, 14]),
            Vector::from_i64(vec![0, 1, 2, 3, 4]),
        ]);
        chunk.set_selection(vec![0, 2, 4]); // logical rows: keys 10, 12, 14
        let hashes: Vec<u64> = [10i64, 12, 14].iter().map(|&k| hash_i64(k)).collect();
        let parts = p.split_chunk(&chunk, &hashes);
        assert_eq!(parts.len(), 4);
        let mut seen = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            if let Some(c) = part {
                assert!(c.selection.is_none(), "split chunks are flat");
                for row in 0..c.num_rows() {
                    let key = match c.value(0, row) {
                        ScalarValue::Int64(k) => k,
                        other => panic!("unexpected value {other:?}"),
                    };
                    assert_eq!(p.of_hash(hash_i64(key)), i, "row routed to wrong partition");
                    seen.push(key);
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 12, 14]);
    }
}
