//! Typed column vectors with optional validity (NULL) masks.
//!
//! A [`Vector`] is one column of a [`crate::DataChunk`]: a contiguous typed
//! buffer plus an optional validity mask. Selection is carried at the chunk
//! level so operators can eliminate rows without copying column data.
//!
//! Vectors are flat except for one encoding: a **dictionary-backed `Utf8`
//! view**. When [`Vector::dict`] is set, the payload is `ColumnData::Int64`
//! of dictionary codes while the *logical* type stays `Utf8` — `data_type`,
//! `get`, and the hashing routines all speak strings, but fixed-width
//! consumers (packed group keys) can read the codes directly. Gathers
//! (`take`/`slice`) preserve the encoding; mutating paths decode to flat
//! strings first.

use crate::dict::{Utf8Dict, DICT_KEY_BITS};
use crate::types::{DataType, ScalarValue};
use crate::{Error, Result};
use std::sync::Arc;

/// The typed payload of a column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
    Bool(Vec<bool>),
}

impl ColumnData {
    pub fn new_empty(dt: DataType) -> Self {
        match dt {
            DataType::Int64 => ColumnData::Int64(vec![]),
            DataType::Float64 => ColumnData::Float64(vec![]),
            DataType::Utf8 => ColumnData::Utf8(vec![]),
            DataType::Bool => ColumnData::Bool(vec![]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }
}

/// One column of a chunk: typed values plus an optional validity mask
/// (`true` = valid, `false` = NULL). `validity == None` means all-valid,
/// which is the overwhelmingly common case in the paper's workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    pub data: ColumnData,
    pub validity: Option<Vec<bool>>,
    /// When set, `data` holds `Int64` dictionary codes and the vector's
    /// logical type is `Utf8` (see the module docs).
    pub dict: Option<Arc<Utf8Dict>>,
}

impl Vector {
    pub fn new(data: ColumnData) -> Self {
        Vector {
            data,
            validity: None,
            dict: None,
        }
    }

    pub fn new_empty(dt: DataType) -> Self {
        Vector::new(ColumnData::new_empty(dt))
    }

    pub fn from_i64(values: Vec<i64>) -> Self {
        Vector::new(ColumnData::Int64(values))
    }

    pub fn from_f64(values: Vec<f64>) -> Self {
        Vector::new(ColumnData::Float64(values))
    }

    pub fn from_utf8(values: Vec<String>) -> Self {
        Vector::new(ColumnData::Utf8(values))
    }

    pub fn from_bool(values: Vec<bool>) -> Self {
        Vector::new(ColumnData::Bool(values))
    }

    /// Build a dictionary-backed `Utf8` vector from codes into `dict`.
    /// Code payloads at NULL positions are placeholders and must still be
    /// in-range for the dictionary (use 0).
    pub fn from_dict_codes(
        codes: Vec<i64>,
        validity: Option<Vec<bool>>,
        dict: Arc<Utf8Dict>,
    ) -> Self {
        Vector {
            data: ColumnData::Int64(codes),
            validity,
            dict: Some(dict),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The *logical* type: `Utf8` for dictionary-backed vectors even though
    /// the payload is `Int64` codes.
    pub fn data_type(&self) -> DataType {
        if self.dict.is_some() {
            DataType::Utf8
        } else {
            self.data.data_type()
        }
    }

    pub fn is_dict(&self) -> bool {
        self.dict.is_some()
    }

    /// Bit width of this vector when packed into a fixed-width group key:
    /// [`DataType::fixed_key_bits`] for flat vectors, [`DICT_KEY_BITS`] for
    /// dictionary-backed `Utf8`.
    pub fn fixed_width(&self) -> Option<u32> {
        if self.dict.is_some() {
            Some(DICT_KEY_BITS)
        } else {
            self.data_type().fixed_key_bits()
        }
    }

    /// Read the string at physical row `idx` from a `Utf8` vector, resolving
    /// dictionary codes. Panics on non-`Utf8` vectors; callers check
    /// validity separately.
    pub fn utf8_at(&self, idx: usize) -> &str {
        match (&self.dict, &self.data) {
            (Some(d), ColumnData::Int64(codes)) => d.value(codes[idx] as usize),
            (None, ColumnData::Utf8(v)) => &v[idx],
            _ => panic!("expected Utf8 column, got {:?}", self.data.data_type()),
        }
    }

    /// A flat (dictionary-free) copy; clones cheaply when already flat.
    pub fn decode_dict(&self) -> Vector {
        match (&self.dict, &self.data) {
            (Some(d), ColumnData::Int64(codes)) => Vector {
                data: ColumnData::Utf8(
                    codes
                        .iter()
                        .map(|&c| d.value(c as usize).to_string())
                        .collect(),
                ),
                validity: self.validity.clone(),
                dict: None,
            },
            _ => self.clone(),
        }
    }

    /// Decode dictionary codes to flat strings in place (no-op when flat).
    pub fn decode_dict_in_place(&mut self) {
        if self.dict.is_some() {
            *self = self.decode_dict();
        }
    }

    pub fn is_valid(&self, idx: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v[idx])
    }

    /// Read row `idx` as a scalar (positional, ignores chunk selection).
    pub fn get(&self, idx: usize) -> ScalarValue {
        if !self.is_valid(idx) {
            return ScalarValue::Null;
        }
        if let (Some(d), ColumnData::Int64(codes)) = (&self.dict, &self.data) {
            return ScalarValue::Utf8(d.value(codes[idx] as usize).to_string());
        }
        match &self.data {
            ColumnData::Int64(v) => ScalarValue::Int64(v[idx]),
            ColumnData::Float64(v) => ScalarValue::Float64(v[idx]),
            ColumnData::Utf8(v) => ScalarValue::Utf8(v[idx].clone()),
            ColumnData::Bool(v) => ScalarValue::Bool(v[idx]),
        }
    }

    /// Append a scalar (NULL extends the validity mask). Dictionary-backed
    /// vectors decode to flat strings first — `push` is a slow build path.
    pub fn push(&mut self, value: &ScalarValue) -> Result<()> {
        self.decode_dict_in_place();
        if value.is_null() {
            let len = self.len();
            let validity = self.validity.get_or_insert_with(|| vec![true; len]);
            validity.push(false);
            // Push a placeholder payload value.
            match &mut self.data {
                ColumnData::Int64(v) => v.push(0),
                ColumnData::Float64(v) => v.push(0.0),
                ColumnData::Utf8(v) => v.push(String::new()),
                ColumnData::Bool(v) => v.push(false),
            }
            return Ok(());
        }
        match (&mut self.data, value) {
            (ColumnData::Int64(v), ScalarValue::Int64(x)) => v.push(*x),
            (ColumnData::Float64(v), ScalarValue::Float64(x)) => v.push(*x),
            (ColumnData::Float64(v), ScalarValue::Int64(x)) => v.push(*x as f64),
            (ColumnData::Utf8(v), ScalarValue::Utf8(x)) => v.push(x.clone()),
            (ColumnData::Bool(v), ScalarValue::Bool(x)) => v.push(*x),
            (d, v) => {
                return Err(Error::Exec(format!(
                    "type mismatch pushing {v:?} into {:?} column",
                    d.data_type()
                )))
            }
        }
        if let Some(validity) = &mut self.validity {
            validity.push(true);
        }
        Ok(())
    }

    /// Gather rows by index into a new flat vector (used to apply selection
    /// vectors and to materialize hash-join matches).
    pub fn take(&self, indices: &[u32]) -> Vector {
        let data = match &self.data {
            ColumnData::Int64(v) => {
                ColumnData::Int64(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Float64(v) => {
                ColumnData::Float64(indices.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Utf8(v) => {
                ColumnData::Utf8(indices.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnData::Bool(v) => {
                ColumnData::Bool(indices.iter().map(|&i| v[i as usize]).collect())
            }
        };
        let validity = self
            .validity
            .as_ref()
            .map(|m| indices.iter().map(|&i| m[i as usize]).collect());
        Vector {
            data,
            validity,
            dict: self.dict.clone(),
        }
    }

    /// Append all rows of `other` (same type) to `self`. Appending across
    /// different encodings (dictionary vs flat, or two distinct
    /// dictionaries) decodes both sides to flat strings.
    pub fn append(&mut self, other: &Vector) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(Error::Exec(format!(
                "appending {:?} column to {:?} column",
                other.data_type(),
                self.data_type()
            )));
        }
        let same_dict = match (&self.dict, &other.dict) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        };
        if !same_dict {
            self.decode_dict_in_place();
            return self.append(&other.decode_dict());
        }
        // Reconcile validity masks up front.
        if other.validity.is_some() && self.validity.is_none() {
            self.validity = Some(vec![true; self.len()]);
        }
        if let Some(validity) = &mut self.validity {
            match &other.validity {
                Some(m) => validity.extend_from_slice(m),
                None => validity.extend(std::iter::repeat_n(true, other.len())),
            }
        }
        match (&mut self.data, &other.data) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend(b.iter().cloned()),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            _ => unreachable!("type checked above"),
        }
        Ok(())
    }

    /// Contiguous sub-range copy (used to split tables into chunks).
    pub fn slice(&self, offset: usize, len: usize) -> Vector {
        let end = offset + len;
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(v[offset..end].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[offset..end].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[offset..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[offset..end].to_vec()),
        };
        let validity = self.validity.as_ref().map(|m| m[offset..end].to_vec());
        Vector {
            data,
            validity,
            dict: self.dict.clone(),
        }
    }

    /// Fold this column into per-row packed fixed-width group keys.
    ///
    /// For every output row `i` (reading physical row `sel[i]` when a
    /// selection is given), shifts `acc[i]` left by `width + 1` bits and ORs
    /// in a NULL flag bit followed by the row's value bits — so packing the
    /// key columns in order builds one integer per row that is equal iff
    /// the rows' key tuples are equal (NULL rows contribute canonical zero
    /// value bits). `width` must be [`Vector::fixed_width`] for this column
    /// ([`DataType::fixed_key_bits`] for flat vectors, [`DICT_KEY_BITS`]
    /// for dictionary codes) and the caller guarantees the accumulated key
    /// fits in 128 bits; panics on non-fixed-width columns (internal fast
    /// path, like [`Vector::i64_slice`]).
    pub fn pack_fixed_key(&self, sel: Option<&[u32]>, width: u32, acc: &mut [u128]) {
        debug_assert_eq!(Some(width), self.fixed_width());
        let value = |row: usize| -> u128 {
            match &self.data {
                ColumnData::Int64(v) => v[row] as u64 as u128,
                ColumnData::Bool(v) => v[row] as u128,
                other => panic!(
                    "expected fixed-width key column, got {:?}",
                    other.data_type()
                ),
            }
        };
        let shift = width + 1;
        match (sel, &self.validity) {
            (None, None) => {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = (*a << shift) | value(i);
                }
            }
            (None, Some(validity)) => {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = (*a << shift)
                        | if validity[i] {
                            value(i)
                        } else {
                            1u128 << width
                        };
                }
            }
            (Some(sel), _) => {
                for (i, a) in acc.iter_mut().enumerate() {
                    let row = sel[i] as usize;
                    *a = (*a << shift)
                        | if self.is_valid(row) {
                            value(row)
                        } else {
                            1u128 << width
                        };
                }
            }
        }
    }

    /// Typed accessors (panic on type mismatch — internal fast paths only).
    pub fn i64_slice(&self) -> &[i64] {
        match &self.data {
            ColumnData::Int64(v) => v,
            other => panic!("expected Int64 column, got {:?}", other.data_type()),
        }
    }

    pub fn f64_slice(&self) -> &[f64] {
        match &self.data {
            ColumnData::Float64(v) => v,
            other => panic!("expected Float64 column, got {:?}", other.data_type()),
        }
    }

    pub fn utf8_slice(&self) -> &[String] {
        match &self.data {
            ColumnData::Utf8(v) => v,
            other => panic!("expected Utf8 column, got {:?}", other.data_type()),
        }
    }

    pub fn bool_slice(&self) -> &[bool] {
        match &self.data {
            ColumnData::Bool(v) => v,
            other => panic!("expected Bool column, got {:?}", other.data_type()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_get() {
        let v = Vector::from_i64(vec![1, 2, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.get(1), ScalarValue::Int64(2));
        assert_eq!(v.data_type(), DataType::Int64);
    }

    #[test]
    fn push_with_nulls() {
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(5)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        v.push(&ScalarValue::Int64(7)).unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.is_valid(0));
        assert!(!v.is_valid(1));
        assert_eq!(v.get(1), ScalarValue::Null);
        assert_eq!(v.get(2), ScalarValue::Int64(7));
    }

    #[test]
    fn push_type_mismatch() {
        let mut v = Vector::new_empty(DataType::Int64);
        assert!(v.push(&ScalarValue::Utf8("x".into())).is_err());
    }

    #[test]
    fn int_into_float_coercion() {
        let mut v = Vector::new_empty(DataType::Float64);
        v.push(&ScalarValue::Int64(2)).unwrap();
        assert_eq!(v.get(0), ScalarValue::Float64(2.0));
    }

    #[test]
    fn take_gathers_rows() {
        let v = Vector::from_utf8(vec!["a".into(), "b".into(), "c".into()]);
        let t = v.take(&[2, 0]);
        assert_eq!(t.get(0), ScalarValue::Utf8("c".into()));
        assert_eq!(t.get(1), ScalarValue::Utf8("a".into()));
    }

    #[test]
    fn take_preserves_validity() {
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(1)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let t = v.take(&[1, 0]);
        assert!(!t.is_valid(0));
        assert!(t.is_valid(1));
    }

    #[test]
    fn append_merges_validity() {
        let mut a = Vector::from_i64(vec![1, 2]);
        let mut b = Vector::new_empty(DataType::Int64);
        b.push(&ScalarValue::Null).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.is_valid(0));
        assert!(!a.is_valid(2));
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = Vector::from_i64(vec![1]);
        let b = Vector::from_bool(vec![true]);
        assert!(a.append(&b).is_err());
    }

    fn dict_vec() -> Vector {
        let d = Utf8Dict::from_values(vec!["east", "north", "west"]);
        Vector::from_dict_codes(vec![2, 0, 0, 1], Some(vec![true, true, false, true]), d)
    }

    #[test]
    fn dict_vector_is_logically_utf8() {
        let v = dict_vec();
        assert_eq!(v.data_type(), DataType::Utf8);
        assert!(v.is_dict());
        assert_eq!(v.fixed_width(), Some(DICT_KEY_BITS));
        assert_eq!(v.get(0), ScalarValue::Utf8("west".into()));
        assert_eq!(v.get(2), ScalarValue::Null);
        assert_eq!(v.utf8_at(3), "north");
    }

    #[test]
    fn dict_take_and_slice_preserve_encoding() {
        let v = dict_vec();
        let t = v.take(&[3, 0]);
        assert!(t.is_dict());
        assert_eq!(t.get(0), ScalarValue::Utf8("north".into()));
        let s = v.slice(1, 2);
        assert!(s.is_dict());
        assert_eq!(s.get(0), ScalarValue::Utf8("east".into()));
        assert_eq!(s.get(1), ScalarValue::Null);
    }

    #[test]
    fn dict_decode_matches_gets() {
        let v = dict_vec();
        let flat = v.decode_dict();
        assert!(!flat.is_dict());
        for i in 0..v.len() {
            assert_eq!(v.get(i), flat.get(i));
        }
    }

    #[test]
    fn dict_append_mixed_encodings_decodes() {
        // dict + flat
        let mut a = dict_vec();
        let b = Vector::from_utf8(vec!["zz".into()]);
        a.append(&b).unwrap();
        assert!(!a.is_dict());
        assert_eq!(a.len(), 5);
        assert_eq!(a.get(4), ScalarValue::Utf8("zz".into()));
        // same-dict append stays encoded
        let mut c = dict_vec();
        let d = c.clone();
        c.append(&d).unwrap();
        assert!(c.is_dict());
        assert_eq!(c.len(), 8);
        assert_eq!(c.get(4), ScalarValue::Utf8("west".into()));
        // push decodes
        let mut e = dict_vec();
        e.push(&ScalarValue::Utf8("q".into())).unwrap();
        assert!(!e.is_dict());
        assert_eq!(e.get(1), ScalarValue::Utf8("east".into()));
    }

    #[test]
    fn dict_pack_fixed_key_uses_codes() {
        let v = dict_vec();
        let mut acc = vec![0u128; 4];
        v.pack_fixed_key(None, DICT_KEY_BITS, &mut acc);
        assert_eq!(acc[0], 2);
        assert_eq!(acc[1], 0);
        assert_eq!(acc[2], 1u128 << DICT_KEY_BITS); // NULL flag bit
        assert_eq!(acc[3], 1);
    }
}
