//! # rpt-common
//!
//! Foundational data representation shared by every crate in the RPT
//! reproduction: scalar values, data types, schemas, typed column vectors
//! with validity masks, the 2048-row [`chunk::DataChunk`] unit of vectorized
//! execution, selection vectors, and the vectorized hashing routines used by
//! hash joins, aggregation, and Bloom filters.
//!
//! The design mirrors the execution substrate described in §4.1 of
//! *Debunking the Myth of Join Ordering* (SIGMOD 2025): a push-based
//! vectorized engine processes tuples in batches ("data chunks", default
//! batch size 2048) and marks valid entries with a *selection vector*.

pub mod chunk;
pub mod dict;
pub mod error;
pub mod hash;
pub mod partition;
pub mod schema;
pub mod types;
pub mod vector;

pub use chunk::{DataChunk, SelectionVector, VECTOR_SIZE};
pub use dict::{Utf8Dict, DICT_KEY_BITS};
pub use error::{Error, Result};
pub use partition::{normalize_partition_count, partition_count_from_env, Partitioner};
pub use schema::{Field, Schema};
pub use types::{DataType, ScalarValue};
pub use vector::{ColumnData, Vector};
