//! Vectorized hashing for join keys, aggregation groups, and Bloom filters.
//!
//! A hand-rolled FxHash-style multiplicative hash (we deliberately avoid an
//! extra dependency; the constant is the same golden-ratio multiplier used by
//! rustc's FxHasher) plus a finalizer borrowed from MurmurHash3's fmix64 so
//! that low-entropy integer keys still spread across Bloom filter blocks.

use crate::vector::{ColumnData, Vector};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// fmix64 finalizer from MurmurHash3: full-avalanche bit mixing.
#[inline(always)]
pub fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Hash a single `i64` key.
#[inline(always)]
pub fn hash_i64(v: i64) -> u64 {
    mix64((v as u64).wrapping_mul(SEED))
}

/// Hash a single byte string.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    // FNV-1a over the bytes, then avalanche.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    mix64(h)
}

/// Combine a new column hash into an accumulated row hash (for composite
/// keys). Order-sensitive, like `Hash::hash` field-by-field.
#[inline(always)]
pub fn combine(acc: u64, next: u64) -> u64 {
    mix64(acc.rotate_left(31) ^ next.wrapping_mul(SEED))
}

/// Hash every *physical* row of a vector into `out` (overwrite mode) or
/// combine with existing hashes (combine mode).
pub fn hash_vector(vector: &Vector, out: &mut [u64], combine_mode: bool) {
    debug_assert_eq!(vector.len(), out.len());
    macro_rules! go {
        ($vals:expr, $hash:expr) => {
            if combine_mode {
                for (i, v) in $vals.iter().enumerate() {
                    out[i] = combine(out[i], $hash(v));
                }
            } else {
                for (i, v) in $vals.iter().enumerate() {
                    out[i] = $hash(v);
                }
            }
        };
    }
    // Dictionary-backed Utf8 hashes the *decoded* strings so routing and
    // Bloom probes agree with flat string vectors bit-for-bit.
    if let (Some(d), ColumnData::Int64(codes)) = (&vector.dict, &vector.data) {
        go!(codes, |v: &i64| hash_bytes(d.value(*v as usize).as_bytes()));
    } else {
        match &vector.data {
            ColumnData::Int64(vals) => go!(vals, |v: &i64| hash_i64(*v)),
            ColumnData::Float64(vals) => go!(vals, |v: &f64| hash_i64(v.to_bits() as i64)),
            ColumnData::Utf8(vals) => go!(vals, |v: &String| hash_bytes(v.as_bytes())),
            ColumnData::Bool(vals) => go!(vals, |v: &bool| hash_i64(*v as i64)),
        }
    }
    // NULL keys hash to a fixed sentinel so they never match anything in
    // joins (the join operators additionally filter NULL keys out).
    if let Some(validity) = &vector.validity {
        for (i, valid) in validity.iter().enumerate() {
            if !valid {
                out[i] = u64::MAX;
            }
        }
    }
}

/// Compute row hashes for the given key columns of physical rows.
pub fn hash_columns(columns: &[&Vector], num_rows: usize) -> Vec<u64> {
    let mut hashes = vec![0u64; num_rows];
    for (k, col) in columns.iter().enumerate() {
        hash_vector(col, &mut hashes, k > 0);
    }
    hashes
}

/// Row hashes over the *selected* rows of the key columns, without
/// materializing a gathered copy first: `out[i]` hashes physical row
/// `sel[i]` (or `i` when `sel` is `None`). Produces exactly the values
/// [`hash_columns`] yields on a [`Vector::take`]-gathered copy — including
/// the NULL sentinel semantics: an invalid key column overwrites the
/// accumulated hash with `u64::MAX` at that column's position (discarding
/// earlier columns), and later *valid* columns combine on top of the
/// sentinel, so only a NULL in the final key column leaves the row hash at
/// `u64::MAX` itself.
pub fn hash_columns_sel(columns: &[&Vector], sel: Option<&[u32]>, num_rows: usize) -> Vec<u64> {
    let mut out = vec![0u64; num_rows];
    let row_at = |i: usize| sel.map_or(i, |s| s[i] as usize);
    for (k, col) in columns.iter().enumerate() {
        macro_rules! go {
            ($vals:expr, $hash:expr) => {
                for (i, slot) in out.iter_mut().enumerate() {
                    let row = row_at(i);
                    if col.is_valid(row) {
                        let h = $hash(&$vals[row]);
                        *slot = if k == 0 { h } else { combine(*slot, h) };
                    } else {
                        *slot = u64::MAX;
                    }
                }
            };
        }
        if let (Some(d), ColumnData::Int64(codes)) = (&col.dict, &col.data) {
            go!(codes, |v: &i64| hash_bytes(d.value(*v as usize).as_bytes()));
        } else {
            match &col.data {
                ColumnData::Int64(vals) => go!(vals, |v: &i64| hash_i64(*v)),
                ColumnData::Float64(vals) => go!(vals, |v: &f64| hash_i64(v.to_bits() as i64)),
                ColumnData::Utf8(vals) => go!(vals, |v: &String| hash_bytes(v.as_bytes())),
                ColumnData::Bool(vals) => go!(vals, |v: &bool| hash_i64(*v as i64)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn i64_hash_spreads() {
        // Sequential keys must not collide and must differ in the high bits
        // (Bloom filters use the high bits to pick a block).
        let hashes: Vec<u64> = (0..10_000).map(hash_i64).collect();
        let distinct: HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
        let high_bits: HashSet<_> = hashes.iter().map(|h| h >> 48).collect();
        assert!(high_bits.len() > 5_000, "high bits poorly distributed");
    }

    #[test]
    fn bytes_hash_differs() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"a"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = combine(hash_i64(1), hash_i64(2));
        let b = combine(hash_i64(2), hash_i64(1));
        assert_ne!(a, b);
    }

    #[test]
    fn vector_hash_matches_scalar() {
        let v = Vector::from_i64(vec![5, 6, 7]);
        let mut out = vec![0u64; 3];
        hash_vector(&v, &mut out, false);
        assert_eq!(out[0], hash_i64(5));
        assert_eq!(out[2], hash_i64(7));
    }

    #[test]
    fn composite_key_hash() {
        let a = Vector::from_i64(vec![1, 1]);
        let b = Vector::from_i64(vec![2, 3]);
        let h = hash_columns(&[&a, &b], 2);
        assert_ne!(h[0], h[1]);
        // Must equal the scalar composition.
        assert_eq!(h[0], combine(hash_i64(1), hash_i64(2)));
    }

    #[test]
    fn null_keys_get_sentinel() {
        use crate::types::{DataType, ScalarValue};
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(5)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let mut out = vec![0u64; 2];
        hash_vector(&v, &mut out, false);
        assert_eq!(out[1], u64::MAX);
        assert_ne!(out[0], u64::MAX);
    }

    /// The gather-free selection-aware hash must equal hashing a
    /// `take`-gathered copy — including composite keys and the NULL
    /// sentinel in either column position.
    #[test]
    fn hash_columns_sel_matches_gathered() {
        use crate::types::{DataType, ScalarValue};
        let mut a = Vector::new_empty(DataType::Int64);
        for v in [
            ScalarValue::Int64(5),
            ScalarValue::Null,
            ScalarValue::Int64(-7),
            ScalarValue::Int64(0),
        ] {
            a.push(&v).unwrap();
        }
        let mut b = Vector::new_empty(DataType::Utf8);
        for v in [
            ScalarValue::Utf8("x".into()),
            ScalarValue::Utf8("y".into()),
            ScalarValue::Null,
            ScalarValue::Utf8("".into()),
        ] {
            b.push(&v).unwrap();
        }
        for sel in [None, Some(vec![3u32, 1, 1, 0, 2])] {
            let n = sel.as_ref().map_or(a.len(), Vec::len);
            let direct = hash_columns_sel(&[&a, &b], sel.as_deref(), n);
            let (ga, gb) = match &sel {
                Some(s) => (a.take(s), b.take(s)),
                None => (a.clone(), b.clone()),
            };
            let gathered = hash_columns(&[&ga, &gb], n);
            assert_eq!(direct, gathered, "sel {sel:?}");
        }
    }

    /// Dictionary-backed Utf8 vectors must hash identically to their
    /// decoded flat form — partition routing and Bloom probes depend on it.
    #[test]
    fn dict_vector_hashes_like_flat_strings() {
        use crate::dict::Utf8Dict;
        let d = Utf8Dict::from_values(vec!["a", "bb", "ccc"]);
        let dv = Vector::from_dict_codes(vec![2, 0, 0, 1], Some(vec![true, true, false, true]), d);
        let flat = dv.decode_dict();
        let mut h_dict = vec![0u64; 4];
        let mut h_flat = vec![0u64; 4];
        hash_vector(&dv, &mut h_dict, false);
        hash_vector(&flat, &mut h_flat, false);
        assert_eq!(h_dict, h_flat);
        for sel in [None, Some(vec![3u32, 0, 0])] {
            let n = sel.as_ref().map_or(4, Vec::len);
            assert_eq!(
                hash_columns_sel(&[&dv], sel.as_deref(), n),
                hash_columns_sel(&[&flat], sel.as_deref(), n),
                "sel {sel:?}"
            );
        }
    }

    #[test]
    fn float_hash_uses_bits() {
        let v = Vector::from_f64(vec![1.0, -1.0]);
        let mut out = vec![0u64; 2];
        hash_vector(&v, &mut out, false);
        assert_ne!(out[0], out[1]);
    }
}
