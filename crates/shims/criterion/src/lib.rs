//! Minimal, offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset of the API this workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and `black_box`. Instead of criterion's statistical machinery it runs a
//! warmup iteration plus a small fixed number of timed iterations and
//! prints the mean wall time. When invoked by `cargo test` (which passes
//! `--test` to `harness = false` bench binaries) benches run a single
//! iteration, acting as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-implementation of `std::hint::black_box` passthrough used by benches.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    /// `--test` mode: run each benchmark exactly once, no timing report.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (samples, test_mode) = (self.sample_size, self.test_mode);
        run_one(&id.to_string(), samples, test_mode, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.c.sample_size, self.c.test_mode, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.c.sample_size, self.c.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter display form.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` does the measured work.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    result: Option<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        black_box(f()); // warmup
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.result = Some(t0.elapsed() / self.samples as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        samples,
        test_mode,
        result: None,
    };
    f(&mut b);
    if test_mode {
        println!("bench {label}: ok (test mode)");
    } else {
        match b.result {
            Some(mean) => println!("bench {label}: {mean:?} mean over {samples} iters"),
            None => println!("bench {label}: no measurement recorded"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // `--test`, filters); the shim accepts and ignores them.
            $($group();)+
        }
    };
}
