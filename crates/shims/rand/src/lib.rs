//! Minimal, offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen_range` (integer and float `Range`/`RangeInclusive`), `gen`
//! (f64/bool/integers), and `gen_bool`. The generator is SplitMix64: not
//! the real `StdRng` stream (so absolute generated values differ from
//! upstream rand), but every consumer in this workspace only relies on
//! *seeded determinism*, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only `seed_from_u64` is supported).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix so consecutive seeds do not yield correlated first
            // draws.
            let mut r = StdRng { state: seed };
            r.next_u64();
            r
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by `Rng::gen_range`. Mirrors rand's
/// `SampleRange<T>` so the output type drives inference of integer range
/// literals (`rng.gen_range(0..50)` as an `i64` works).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods; blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (va, vb, vc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(0.5..300.0);
            assert!((0.5..300.0).contains(&f));
            let i = r.gen_range(3usize..=3);
            assert_eq!(i, 3);
        }
    }

    #[test]
    fn gen_bool_rate_roughly_honored() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((500..2000).contains(&hits), "hits = {hits}");
    }
}
