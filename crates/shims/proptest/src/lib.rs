//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the [`proptest!`] macro, the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, integer-range and regex-subset strategies,
//! `collection::vec` / `collection::btree_set`, `bool::ANY`, and the
//! `prop_assert!` family. Generation is deterministic (splitmix64 seeded
//! from the test name, overridable via `PROPTEST_SEED`); there is **no
//! shrinking** — a failure reports the generated inputs and the seed.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- rng

/// Deterministic splitmix64 generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                seed ^= v;
            }
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    pub fn seed(&self) -> u64 {
        self.state
    }
}

// ----------------------------------------------------------- strategy

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking: `generate` produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

// ------------------------------------------------------ regex strings

/// `&str` strategies are interpreted as a regex *subset*: one atom —
/// either a `[...]` character class or the `\PC` (printable) escape —
/// optionally followed by `{m,n}`. This covers the patterns used in the
/// workspace's tests.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, reps) = parse_simple_regex(self);
        let n = reps.generate(rng);
        let mut out = String::new();
        for _ in 0..n {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
        out
    }
}

fn parse_simple_regex(pat: &str) -> (Vec<char>, Range<usize>) {
    let chars: Vec<char> = pat.chars().collect();
    let (alphabet, i): (Vec<char>, usize) = if pat.starts_with("\\PC") {
        // Printable: ASCII printable plus a few multibyte chars to stress
        // tokenizers the way real \PC inputs would.
        let mut a: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
        a.extend(['é', 'λ', '≤', '中', '🦀']);
        (a, 3)
    } else if chars.first() == Some(&'[') {
        let close = chars
            .iter()
            .position(|&c| c == ']')
            .expect("unterminated char class in shim regex");
        let inner = &chars[1..close];
        let mut a = Vec::new();
        let mut j = 0;
        while j < inner.len() {
            if j + 2 < inner.len() && inner[j + 1] == '-' {
                let (lo, hi) = (inner[j] as u32, inner[j + 2] as u32);
                for c in lo..=hi {
                    a.push(char::from_u32(c).unwrap());
                }
                j += 3;
            } else {
                a.push(inner[j]);
                j += 1;
            }
        }
        (a, close + 1)
    } else {
        panic!("shim regex supports only `[...]` or `\\PC` atoms, got {pat:?}");
    };
    // Optional {m,n} repetition; default exactly once.
    let reps = if chars.get(i) == Some(&'{') {
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .expect("unterminated repetition in shim regex")
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (m, n) = match body.split_once(',') {
            Some((m, n)) => (m.parse().unwrap(), n.parse::<usize>().unwrap()),
            None => (body.parse().unwrap(), body.parse().unwrap()),
        };
        m..n + 1
    } else {
        1..2
    };
    (alphabet, reps)
}

// -------------------------------------------------------- collections

pub mod collection {
    use super::*;

    /// Size specification: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `want`; cap the
            // attempts so generation always terminates.
            for _ in 0..want.saturating_mul(16).max(64) {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod bool {
    use super::*;

    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.gen_bool()
        }
    }
}

// ------------------------------------------------------------- runner

/// Test-case failure carrying the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::bool as prop_bool;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// -------------------------------------------------------------- macros

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// The `proptest!` block: expands each contained `fn name(arg in strategy,
/// ...) { body }` into a `#[test]` that runs `config.cases` deterministic
/// cases. Assertion failures report the case number and inputs; there is
/// no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = rng.seed();
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} of {} failed (rng state {seed:#x}, \
                         rerun deterministic): {e}",
                        config.cases
                    );
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}
