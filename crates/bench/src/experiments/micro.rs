//! Figure 16 (Bloom probe vs hash probe microbenchmark) and the ablation
//! experiments for the design choices DESIGN.md calls out.

use crate::config::Config;
use crate::util::{database_for, render_table};
use rpt_bloom::BloomFilter;
use rpt_common::Result;
use rpt_core::{Mode, QueryOptions};
use std::time::Instant;

// --------------------------------------------------------------- Figure 16

/// One sweep point: build-side size vs probe throughput.
pub struct Fig16Row {
    pub build_rows: usize,
    pub hash_probe_secs: f64,
    pub bloom_probe_secs: f64,
    /// Batched (bitmask) Bloom probe — the stand-in for the paper's
    /// AVX2 "SIMD Bloom Probe" series.
    pub bloom_batched_secs: f64,
    pub hash_table_bytes: usize,
    pub bloom_bytes: usize,
}

/// Figure 16: fix the probe side, sweep the build side over powers of two.
/// Keys are uniform in `0..2^30` like the paper's microbenchmark.
///
/// Both sides measure the *engine's* code paths: the hash side probes a
/// real `JoinHashTable` (hash → bucket → key verification, exactly what a
/// semi-join or hash join pays per tuple); the Bloom side runs the
/// `ProbeBF` path (vectorized hash → batched bitmask probe → selection
/// conversion). Chunked at the engine's 2048-row vector size.
pub fn fig16_bloom_micro(probe_rows: usize, max_build_log2: u32) -> Vec<Fig16Row> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rpt_bloom::bitmask_to_selection;
    use rpt_common::chunk::VECTOR_SIZE;
    use rpt_common::hash::hash_columns;
    use rpt_common::{DataChunk, Vector};
    use rpt_exec::JoinHashTable;

    let mut rng = StdRng::seed_from_u64(16);
    let probe_keys: Vec<i64> = (0..probe_rows)
        .map(|_| rng.gen_range(0..1i64 << 30))
        .collect();
    // Pre-split the probe side into engine-sized chunks.
    let probe_chunks: Vec<DataChunk> = probe_keys
        .chunks(VECTOR_SIZE)
        .map(|c| DataChunk::new(vec![Vector::from_i64(c.to_vec())]))
        .collect();

    let mut out = Vec::new();
    let mut log2 = 7; // 128
    while log2 <= max_build_log2 {
        let n = 1usize << log2;
        let build_keys: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1i64 << 30)).collect();

        // Engine hash table (bucket lists + key verification).
        let ht = JoinHashTable::build(
            &[DataChunk::new(vec![Vector::from_i64(build_keys.clone())])],
            vec![0],
        )
        .expect("build hash table");
        let t0 = Instant::now();
        let mut survivors = 0usize;
        for c in &probe_chunks {
            survivors += ht.semi_probe(c, &[0]).len();
        }
        let hash_probe_secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(survivors);

        // Engine Bloom filter (scalar and batched/bitmask paths).
        let mut bf = BloomFilter::with_default_fpr(n);
        for &k in &build_keys {
            bf.insert_i64(k);
        }
        let t0 = Instant::now();
        let mut hits = 0u64;
        for &k in &probe_keys {
            hits += bf.probe_i64(k) as u64;
        }
        let bloom_probe_secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(hits);

        let t0 = Instant::now();
        let mut survivors = 0usize;
        let mut sel = Vec::with_capacity(VECTOR_SIZE);
        for c in &probe_chunks {
            let cols: Vec<&Vector> = c.columns.iter().collect();
            let hashes = hash_columns(&cols, c.num_rows());
            let mask = bf.probe_hashes_bitmask(&hashes);
            sel.clear();
            survivors += bitmask_to_selection(&mask, c.num_rows(), &mut sel);
        }
        let bloom_batched_secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(survivors);

        out.push(Fig16Row {
            build_rows: n,
            hash_probe_secs,
            bloom_probe_secs,
            bloom_batched_secs,
            hash_table_bytes: n * 16 + n * 4, // hash map entries + bucket ids
            bloom_bytes: bf.size_bytes(),
        });
        log2 += 1;
    }
    out
}

pub fn print_fig16(rows: &[Fig16Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.build_rows),
                format!("{:.4}", r.hash_probe_secs),
                format!("{:.4}", r.bloom_probe_secs),
                format!("{:.4}", r.bloom_batched_secs),
                format!("{:.1}", r.hash_probe_secs / r.bloom_batched_secs.max(1e-9)),
                format!("{}", r.hash_table_bytes),
                format!("{}", r.bloom_bytes),
            ]
        })
        .collect();
    render_table(
        &[
            "build rows",
            "hash probe s",
            "bloom probe s",
            "bloom batch s",
            "speedup",
            "HT bytes",
            "BF bytes",
        ],
        &table,
    )
}

// --------------------------------------------------------------- Ablations

/// Ablation rows: per query, work with a feature on vs off.
pub struct AblationRow {
    pub query: String,
    pub on_work: u64,
    pub off_work: u64,
}

/// Ablation 2 (DESIGN.md): §4.3 backward-pass skipping when the join order
/// aligns with the join tree. The skip only fires on *aligned* orders
/// (root-first tree traversals), so the ablation executes the LargestRoot
/// insertion order explicitly — the same order Yannakakis' join phase uses.
pub fn ablation_backward_pass(cfg: &Config) -> Result<Vec<AblationRow>> {
    use rpt_core::JoinOrder;
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let db = database_for(&w);
    let mut out = Vec::new();
    for qd in w.acyclic_queries() {
        if qd.num_joins < 2 {
            continue;
        }
        let q = db.bind_sql(&qd.sql)?;
        let graph = q.graph();
        let Some(tree) = rpt_graph::largest_root(&graph) else {
            continue;
        };
        let aligned = JoinOrder::LeftDeep(tree.insertion_order.clone());
        let mut on = QueryOptions::new(Mode::RobustPredicateTransfer).with_order(aligned.clone());
        on.prune_backward = true;
        let mut off = QueryOptions::new(Mode::RobustPredicateTransfer).with_order(aligned);
        off.prune_backward = false;
        let r_on = db.execute(&q, &on)?;
        let r_off = db.execute(&q, &off)?;
        out.push(AblationRow {
            query: qd.id.clone(),
            on_work: r_on.work(),
            off_work: r_off.work(),
        });
    }
    Ok(out)
}

/// Ablation 3: trivial PK-side semi-join pruning.
pub fn ablation_pruning(cfg: &Config) -> Result<Vec<AblationRow>> {
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let db = database_for(&w);
    let mut out = Vec::new();
    for qd in w.acyclic_queries() {
        if qd.num_joins < 2 {
            continue;
        }
        let q = db.bind_sql(&qd.sql)?;
        let mut on = QueryOptions::new(Mode::RobustPredicateTransfer);
        on.prune_trivial = true;
        let mut off = on.clone();
        off.prune_trivial = false;
        let r_on = db.execute(&q, &on)?;
        let r_off = db.execute(&q, &off)?;
        out.push(AblationRow {
            query: qd.id.clone(),
            on_work: r_on.work(),
            off_work: r_off.work(),
        });
    }
    Ok(out)
}

/// Ablation 4: Bloom filter FPR sweep — join-phase output rows (false
/// positives survive the transfer phase and get eliminated in the joins)
/// vs filter memory.
pub struct FprRow {
    pub fpr: f64,
    pub work: u64,
    pub join_output_rows: u64,
    /// Rows surviving Bloom probes (grows with the false-positive rate).
    pub bloom_survivors: u64,
}

pub fn ablation_fpr(cfg: &Config) -> Result<Vec<FprRow>> {
    let w = rpt_workloads::job(cfg.sf, cfg.seed);
    let db = database_for(&w);
    let qd = w.query("3a").expect("JOB 3a exists");
    let q = db.bind_sql(&qd.sql)?;
    let mut out = Vec::new();
    for fpr in [0.001, 0.01, 0.02, 0.1, 0.3, 0.49] {
        let mut opts = QueryOptions::new(Mode::RobustPredicateTransfer);
        opts.bloom_fpr = fpr;
        let r = db.execute(&q, &opts)?;
        out.push(FprRow {
            fpr,
            work: r.work(),
            join_output_rows: r.metrics.join_output_rows,
            bloom_survivors: r.metrics.bloom_probe_out,
        });
    }
    Ok(out)
}

/// Extension experiment (§5.1.3 made concrete): on the *cyclic* TPC-DS
/// templates, compare the worst random-order baseline against the hybrid
/// RPT+WCOJ executor, which has no join order at all.
pub struct HybridRow {
    pub query: String,
    pub baseline_best: u64,
    pub baseline_worst: u64,
    pub rpt_worst: u64,
    pub hybrid_work: u64,
}

pub fn hybrid_cyclic(cfg: &Config) -> Result<Vec<HybridRow>> {
    use rpt_core::{random_left_deep, JoinOrder};
    let w = rpt_workloads::tpcds(cfg.sf, cfg.seed);
    let db = database_for(&w);
    let mut out = Vec::new();
    for qd in w.queries.iter().filter(|q| q.cyclic) {
        let q = db.bind_sql(&qd.sql)?;
        let graph = q.graph();
        let n = 8;
        let run_orders = |mode: Mode| -> Result<(u64, u64)> {
            let mut best = u64::MAX;
            let mut worst = 0u64;
            for i in 0..n {
                let order =
                    JoinOrder::LeftDeep(random_left_deep(&graph, cfg.seed.wrapping_add(i as u64)));
                let r = db.execute(&q, &QueryOptions::new(mode).with_order(order))?;
                best = best.min(r.work());
                worst = worst.max(r.work());
            }
            Ok((best, worst))
        };
        let (b_best, b_worst) = run_orders(Mode::Baseline)?;
        let (_, rpt_worst) = run_orders(Mode::RobustPredicateTransfer)?;
        let hybrid = db.execute(&q, &QueryOptions::new(Mode::Hybrid))?;
        out.push(HybridRow {
            query: qd.id.clone(),
            baseline_best: b_best,
            baseline_worst: b_worst,
            rpt_worst,
            hybrid_work: hybrid.work(),
        });
    }
    Ok(out)
}

pub fn print_hybrid(rows: &[HybridRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.clone(),
                format!("{}", r.baseline_best),
                format!("{}", r.baseline_worst),
                format!("{}", r.rpt_worst),
                format!("{}", r.hybrid_work),
            ]
        })
        .collect();
    render_table(
        &[
            "cyclic query",
            "base best",
            "base worst",
            "RPT worst",
            "RPT+WCOJ",
        ],
        &table,
    )
}

/// Motivation experiment: how much does each executor suffer when the
/// optimizer's cardinality estimates are corrupted? (§1/§2.1: real
/// optimizers mis-estimate by orders of magnitude at ≥5 joins; the paper's
/// thesis is that RPT makes the executor tolerant of exactly this.)
///
/// For each noise level σ we re-run every query with the optimizer's plan
/// chosen under `exp(σ·z)`-multiplied estimates, and report the geomean
/// slowdown relative to the noise-free plan, per mode.
pub struct NoiseRow {
    pub sigma: f64,
    /// mode label → geomean work ratio (noisy plan / clean plan).
    pub degradation: Vec<(&'static str, f64)>,
}

pub fn ce_noise_tolerance(cfg: &Config) -> Result<Vec<NoiseRow>> {
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let db = database_for(&w);
    let modes = [Mode::Baseline, Mode::RobustPredicateTransfer];
    let mut out = Vec::new();
    for sigma in [0.0, 1.0, 2.0, 4.0] {
        let mut degradation = Vec::new();
        for mode in modes {
            let mut ratios = Vec::new();
            for qd in w.acyclic_queries() {
                if qd.num_joins < 2 {
                    continue;
                }
                let q = db.bind_sql(&qd.sql)?;
                let clean = db.execute(&q, &QueryOptions::new(mode))?.work() as f64;
                // Average over a few noise seeds so one lucky plan doesn't
                // hide the effect.
                let mut noisy_sum = 0.0;
                let seeds = 3;
                for seed in 0..seeds {
                    let mut opts = QueryOptions::new(mode);
                    opts.ce_noise = Some((cfg.seed.wrapping_add(seed), sigma));
                    noisy_sum += db.execute(&q, &opts)?.work() as f64;
                }
                ratios.push((noisy_sum / seeds as f64) / clean.max(1.0));
            }
            degradation.push((mode.label(), crate::util::geomean(&ratios)));
        }
        out.push(NoiseRow { sigma, degradation });
    }
    Ok(out)
}

pub fn print_noise(rows: &[NoiseRow]) -> String {
    let mut table = Vec::new();
    for r in rows {
        let mut cells = vec![format!("{:.1}", r.sigma)];
        for (_, d) in &r.degradation {
            cells.push(format!("{d:.3}"));
        }
        table.push(cells);
    }
    let mut headers = vec!["sigma"];
    let labels: Vec<&str> = rows
        .first()
        .map(|r| r.degradation.iter().map(|(l, _)| *l).collect())
        .unwrap_or_default();
    headers.extend(labels);
    render_table(&headers, &table)
}

pub fn print_ablation(rows: &[AblationRow], label: &str) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.clone(),
                format!("{}", r.on_work),
                format!("{}", r.off_work),
                format!("{:.3}", r.off_work as f64 / r.on_work.max(1) as f64),
            ]
        })
        .collect();
    format!(
        "{label}\n{}",
        render_table(&["query", "on", "off", "off/on"], &table)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_micro_shape() {
        // Unit tests run unoptimized, so we only check structural claims
        // here; the timing claim (Bloom probe beats hash probe, gap grows
        // with build size) is verified by the release-mode Criterion bench
        // `fig16_bloom_micro`.
        let rows = fig16_bloom_micro(50_000, 13);
        assert!(rows.len() >= 5);
        for r in &rows {
            // Bloom filters stay much smaller than hash tables.
            assert!(r.bloom_bytes < r.hash_table_bytes, "at {}", r.build_rows);
            assert!(r.hash_probe_secs > 0.0 && r.bloom_batched_secs > 0.0);
        }
        // Sizes double along the sweep.
        assert_eq!(rows[1].build_rows, rows[0].build_rows * 2);
    }

    #[test]
    fn pruning_reduces_or_equal_work() {
        let cfg = Config::tiny();
        let rows = ablation_pruning(&cfg).unwrap();
        // Pruning must never *increase* work dramatically; usually reduces.
        for r in &rows {
            assert!(
                r.on_work <= r.off_work * 11 / 10,
                "{}: pruning on {} off {}",
                r.query,
                r.on_work,
                r.off_work
            );
        }
    }

    #[test]
    fn rpt_tolerates_ce_noise_better() {
        let mut cfg = Config::tiny();
        cfg.sf = 0.05;
        let rows = ce_noise_tolerance(&cfg).unwrap();
        // At the highest noise level, the baseline's degradation must
        // exceed RPT's — the paper's central claim about optimizer error
        // tolerance.
        let worst = rows.last().unwrap();
        let base = worst
            .degradation
            .iter()
            .find(|(l, _)| *l == "DuckDB")
            .unwrap()
            .1;
        let rpt = worst
            .degradation
            .iter()
            .find(|(l, _)| *l == "RPT")
            .unwrap()
            .1;
        assert!(
            base > rpt,
            "σ=4: baseline degradation {base} should exceed RPT {rpt}"
        );
        // σ=0 must be exactly 1.0 for both.
        let zero = &rows[0];
        for (l, d) in &zero.degradation {
            assert!((d - 1.0).abs() < 1e-9, "{l} at σ=0: {d}");
        }
    }

    #[test]
    fn fpr_tradeoff_monotone_ish() {
        let cfg = Config::tiny();
        let rows = ablation_fpr(&cfg).unwrap();
        // Higher FPR → more false positives surviving into the join phase.
        let first = rows.first().unwrap().join_output_rows;
        let last = rows.last().unwrap().join_output_rows;
        assert!(
            last >= first,
            "fpr 0.3 joins {last} < fpr 0.001 joins {first}"
        );
    }
}
