//! Tables 1–2 (robustness factors) and the per-query distributions of
//! Figures 6–7 / Appendix B & C (Figures 21–31).

use crate::config::Config;
use crate::util::{database_for, fmt_x, render_table};
use rpt_common::Result;
use rpt_core::robustness::{plans_for_joins, robustness_factor, RobustnessReport};
use rpt_core::{Database, Mode, QueryOptions};
use rpt_workloads::Workload;
use std::collections::BTreeMap;

/// Robustness results for one query under several modes.
pub struct RfRow {
    pub bench: &'static str,
    pub query: String,
    pub cyclic: bool,
    pub num_joins: usize,
    /// Work of the baseline optimizer plan (the normalizer, `t_opt`).
    pub opt_work: u64,
    pub reports: BTreeMap<&'static str, RobustnessReport>,
}

/// Run the robustness experiment for one workload.
///
/// For each query: `N = plan_scale × (70m − 190)` random orders
/// (left-deep or bushy) per mode, with a work budget of
/// `budget_factor × opt_work` standing in for the paper's `1000 × t_opt`
/// timeout.
pub fn robustness_table(
    w: &Workload,
    modes: &[Mode],
    bushy: bool,
    cfg: &Config,
) -> Result<Vec<RfRow>> {
    let db = database_for(w);
    let mut rows = Vec::new();
    for qd in &w.queries {
        if qd.num_joins < 2 {
            continue; // trivial for join ordering, as in the paper
        }
        let q = db.bind_sql(&qd.sql)?;
        let opt = db.execute(&q, &QueryOptions::new(Mode::Baseline))?;
        let opt_work = opt.work().max(1);
        let n = plans_for_joins(qd.num_joins, cfg.plan_scale);
        let budget = opt_work.saturating_mul(cfg.budget_factor);
        let mut reports = BTreeMap::new();
        for &mode in modes {
            let rep = robustness_factor(&db, &q, mode, n, bushy, Some(budget), cfg.seed)?;
            reports.insert(mode.label(), rep);
        }
        rows.push(RfRow {
            bench: w.name,
            query: qd.id.clone(),
            cyclic: qd.cyclic,
            num_joins: qd.num_joins,
            opt_work,
            reports,
        });
    }
    Ok(rows)
}

/// Per-mode (avg, min, max) RF over acyclic queries — the paper's Table 1/2
/// row format.
pub fn summarize_rf(rows: &[RfRow], mode_label: &str) -> (f64, f64, f64) {
    let rfs: Vec<f64> = rows
        .iter()
        .filter(|r| !r.cyclic)
        .filter_map(|r| r.reports.get(mode_label).map(|rep| rep.rf_work()))
        .filter(|v| v.is_finite())
        .collect();
    if rfs.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN);
    }
    let avg = rfs.iter().sum::<f64>() / rfs.len() as f64;
    let min = rfs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rfs.iter().cloned().fold(0.0f64, f64::max);
    (avg, min, max)
}

/// Render Table 1/2 style output for a set of workload results.
pub fn print_rf_table(all: &[(String, Vec<RfRow>)], modes: &[Mode]) -> String {
    let mut out = String::new();
    let mut table_rows = Vec::new();
    for &mode in modes {
        let mut cells = vec![mode.label().to_string()];
        for (_, rows) in all {
            let (avg, min, max) = summarize_rf(rows, mode.label());
            cells.push(fmt_x(avg));
            cells.push(fmt_x(min));
            cells.push(fmt_x(max));
        }
        table_rows.push(cells);
    }
    let mut headers = vec!["RF"];
    let mut owned: Vec<String> = Vec::new();
    for (name, _) in all {
        owned.push(format!("{name} avg"));
        owned.push(format!("{name} min"));
        owned.push(format!("{name} max"));
    }
    headers.extend(owned.iter().map(String::as_str));
    out.push_str(&render_table(&headers, &table_rows));
    out
}

/// Render the per-query distribution (Figures 6/7/21–31): five-number
/// summary of work normalized by the baseline optimizer plan's work,
/// `*` marks timeouts, cyclic queries tagged `(cyclic)`.
pub fn print_distribution(rows: &[RfRow]) -> String {
    let mut table = Vec::new();
    for r in rows {
        for (label, rep) in &r.reports {
            let (mn, p25, med, p75, mx) = rep.work_box();
            let norm = r.opt_work as f64;
            table.push(vec![
                format!("{}{}", r.query, if r.cyclic { " (cyclic)" } else { "" }),
                label.to_string(),
                format!("{:.3}", mn / norm),
                format!("{:.3}", p25 / norm),
                format!("{:.3}", med / norm),
                format!("{:.3}", p75 / norm),
                format!("{:.3}", mx / norm),
                fmt_x(rep.rf_work()),
                if rep.timeouts > 0 {
                    format!("*{}", rep.timeouts)
                } else {
                    String::new()
                },
            ]);
        }
    }
    render_table(
        &[
            "query", "system", "min", "p25", "med", "p75", "max", "RF", "t/o",
        ],
        &table,
    )
}

/// Full robustness run over the paper's three robustness benchmarks
/// (TPC-H, JOB, TPC-DS), all requested modes.
pub fn run_robustness(
    modes: &[Mode],
    bushy: bool,
    cfg: &Config,
) -> Result<Vec<(String, Vec<RfRow>)>> {
    let workloads = [
        rpt_workloads::tpch(cfg.sf, cfg.seed),
        rpt_workloads::job(cfg.sf, cfg.seed),
        rpt_workloads::tpcds(cfg.sf, cfg.seed),
    ];
    let mut out = Vec::new();
    for w in &workloads {
        out.push((w.name.to_string(), robustness_table(w, modes, bushy, cfg)?));
    }
    Ok(out)
}

/// Robustness with a custom database (used by Figure 14's multithreaded
/// variant, which re-runs left-deep with `cfg.threads`).
pub fn robustness_multithreaded(w: &Workload, cfg: &Config) -> Result<Vec<RfRow>> {
    let db = database_for(w);
    let mut rows = Vec::new();
    for qd in w.acyclic_queries() {
        if qd.num_joins < 2 {
            continue;
        }
        let q = db.bind_sql(&qd.sql)?;
        let opt = db.execute(
            &q,
            &QueryOptions::new(Mode::Baseline).with_threads(cfg.threads),
        )?;
        let opt_work = opt.work().max(1);
        let n = plans_for_joins(qd.num_joins, cfg.plan_scale);
        let budget = opt_work.saturating_mul(cfg.budget_factor);
        let mut reports = BTreeMap::new();
        for mode in [Mode::Baseline, Mode::RobustPredicateTransfer] {
            let rep = robustness_mt_inner(&db, &q, mode, n, budget, cfg.seed, cfg.threads)?;
            reports.insert(mode.label(), rep);
        }
        rows.push(RfRow {
            bench: w.name,
            query: qd.id.clone(),
            cyclic: qd.cyclic,
            num_joins: qd.num_joins,
            opt_work,
            reports,
        });
    }
    Ok(rows)
}

fn robustness_mt_inner(
    db: &Database,
    q: &rpt_core::JoinQuery,
    mode: Mode,
    n: usize,
    budget: u64,
    seed: u64,
    threads: usize,
) -> Result<RobustnessReport> {
    use rpt_core::robustness::RunOutcome;
    let graph = q.graph();
    let mut outcomes = Vec::new();
    let mut works = Vec::new();
    let mut times = Vec::new();
    let mut timeouts = 0;
    for i in 0..n {
        let order = rpt_core::JoinOrder::LeftDeep(rpt_core::random_left_deep(
            &graph,
            seed.wrapping_add(i as u64),
        ));
        let opts = QueryOptions::new(mode)
            .with_order(order)
            .with_threads(threads)
            .with_budget(budget);
        match db.execute(q, &opts) {
            Ok(r) => {
                works.push(r.work());
                times.push(r.wall_time.as_secs_f64());
                outcomes.push(RunOutcome::Ok {
                    time_secs: r.wall_time.as_secs_f64(),
                    work: r.work(),
                });
            }
            Err(e) if e.is_budget() => {
                timeouts += 1;
                works.push(budget);
                outcomes.push(RunOutcome::Timeout);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(RobustnessReport {
        mode,
        outcomes,
        works,
        times,
        timeouts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpch_robustness_tiny() {
        let cfg = Config::tiny();
        let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
        let rows = robustness_table(
            &w,
            &[Mode::Baseline, Mode::RobustPredicateTransfer],
            false,
            &cfg,
        )
        .unwrap();
        assert!(!rows.is_empty());
        // Headline claim (Table 1 shape): RPT's average RF over acyclic
        // queries is much smaller than the baseline's.
        let (base_avg, _, base_max) = summarize_rf(&rows, "DuckDB");
        let (rpt_avg, _, rpt_max) = summarize_rf(&rows, "RPT");
        assert!(
            rpt_avg < base_avg,
            "RPT avg RF {rpt_avg} should beat baseline {base_avg}"
        );
        assert!(
            rpt_max <= base_max,
            "RPT max RF {rpt_max} vs baseline {base_max}"
        );
        let printed = print_rf_table(
            &[("TPC-H".into(), rows)],
            &[Mode::Baseline, Mode::RobustPredicateTransfer],
        );
        assert!(printed.contains("RPT"));
    }

    #[test]
    fn distribution_prints() {
        let cfg = Config::tiny();
        let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
        let rows = robustness_table(&w, &[Mode::RobustPredicateTransfer], false, &cfg).unwrap();
        let s = print_distribution(&rows);
        assert!(s.contains("q3"));
        assert!(s.contains("med"));
    }
}
