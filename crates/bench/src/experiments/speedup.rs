//! Table 3 (average speedups over the baseline with the optimizer's plan)
//! and Appendix A (Figures 17–20: per-query execution with the optimizer's
//! plan, normalized by the baseline).

use crate::config::Config;
use crate::util::{database_for, fmt_x, geomean, render_table};
use rpt_common::Result;
use rpt_core::{Mode, QueryOptions};
use rpt_workloads::Workload;
use std::collections::BTreeMap;

/// Per-query optimizer-plan measurements for each mode.
pub struct SpeedupRow {
    pub bench: &'static str,
    pub query: String,
    pub cyclic: bool,
    /// mode label → (weighted work, wall seconds, raw work)
    pub runs: BTreeMap<&'static str, (f64, f64, u64)>,
}

/// Run every query of a workload with the optimizer's plan under each mode.
pub fn speedup_table(w: &Workload, modes: &[Mode], _cfg: &Config) -> Result<Vec<SpeedupRow>> {
    let db = database_for(w);
    let mut rows = Vec::new();
    for qd in &w.queries {
        let q = db.bind_sql(&qd.sql)?;
        let mut runs = BTreeMap::new();
        for &mode in modes {
            let r = db.execute(&q, &QueryOptions::new(mode))?;
            runs.insert(
                mode.label(),
                (
                    r.metrics.weighted_work(),
                    r.wall_time.as_secs_f64(),
                    r.work(),
                ),
            );
        }
        rows.push(SpeedupRow {
            bench: w.name,
            query: qd.id.clone(),
            cyclic: qd.cyclic,
            runs,
        });
    }
    Ok(rows)
}

/// Geometric-mean speedup of `mode` over the baseline (Table 3 cells),
/// on the work metric.
pub fn geomean_speedup(rows: &[SpeedupRow], mode_label: &str) -> f64 {
    let ratios: Vec<f64> = rows
        .iter()
        .filter_map(|r| {
            let base = r.runs.get("DuckDB")?.0;
            let m = r.runs.get(mode_label)?.0;
            Some(base / m.max(1.0))
        })
        .collect();
    geomean(&ratios)
}

/// Wall-time variant of the geomean speedup.
pub fn geomean_speedup_time(rows: &[SpeedupRow], mode_label: &str) -> f64 {
    let ratios: Vec<f64> = rows
        .iter()
        .filter_map(|r| {
            let base = r.runs.get("DuckDB")?.1;
            let m = r.runs.get(mode_label)?.1;
            Some(base / m.max(1e-9))
        })
        .collect();
    geomean(&ratios)
}

/// Run Table 3 over the four benchmarks.
pub fn run_table3(cfg: &Config) -> Result<Vec<(String, Vec<SpeedupRow>)>> {
    let workloads = [
        rpt_workloads::tpch(cfg.sf, cfg.seed),
        rpt_workloads::job(cfg.sf, cfg.seed),
        rpt_workloads::tpcds(cfg.sf, cfg.seed),
        rpt_workloads::dsb(cfg.sf, cfg.seed),
    ];
    let modes = [
        Mode::Baseline,
        Mode::BloomJoin,
        Mode::PredicateTransfer,
        Mode::RobustPredicateTransfer,
    ];
    let mut out = Vec::new();
    for w in &workloads {
        out.push((w.name.to_string(), speedup_table(w, &modes, cfg)?));
    }
    Ok(out)
}

/// Render Table 3.
pub fn print_table3(all: &[(String, Vec<SpeedupRow>)]) -> String {
    let mut headers: Vec<String> = vec!["Speedup".into()];
    headers.extend(all.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for label in ["BloomJoin", "PT", "RPT"] {
        let mut cells = vec![label.to_string()];
        for (_, data) in all {
            cells.push(fmt_x(geomean_speedup(data, label)));
        }
        rows.push(cells);
    }
    render_table(&header_refs, &rows)
}

/// Render Appendix A (per-query normalized work, one row per query).
pub fn print_appendix_a(rows: &[SpeedupRow]) -> String {
    let mut table = Vec::new();
    for r in rows {
        let base = r.runs.get("DuckDB").map(|x| x.0).unwrap_or(1.0).max(1.0);
        let cell = |label: &str| -> String {
            r.runs
                .get(label)
                .map(|(w, _, _)| format!("{:.3}", *w / base))
                .unwrap_or_else(|| "-".into())
        };
        table.push(vec![
            format!("{}{}", r.query, if r.cyclic { " (cyclic)" } else { "" }),
            cell("DuckDB"),
            cell("BloomJoin"),
            cell("PT"),
            cell("RPT"),
        ]);
    }
    render_table(&["query", "DuckDB", "BloomJoin", "PT", "RPT"], &table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpt_speeds_up_tpch() {
        let cfg = Config::tiny();
        let w = rpt_workloads::tpch(0.1, cfg.seed);
        let rows =
            speedup_table(&w, &[Mode::Baseline, Mode::RobustPredicateTransfer], &cfg).unwrap();
        let s = geomean_speedup(&rows, "RPT");
        // RPT must not be slower than baseline on the work metric overall
        // (paper: ≈1.5× faster).
        assert!(s > 1.0, "RPT work speedup {s} <= 1");
    }

    #[test]
    fn all_modes_run_table3_shape() {
        let cfg = Config::tiny();
        let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
        let rows = speedup_table(
            &w,
            &[
                Mode::Baseline,
                Mode::BloomJoin,
                Mode::PredicateTransfer,
                Mode::RobustPredicateTransfer,
            ],
            &cfg,
        )
        .unwrap();
        let printed = print_table3(&[("TPC-H".into(), rows)]);
        assert!(printed.contains("RPT"));
        assert!(printed.contains("BloomJoin"));
    }

    #[test]
    fn appendix_a_prints_per_query() {
        let cfg = Config::tiny();
        let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
        let rows =
            speedup_table(&w, &[Mode::Baseline, Mode::RobustPredicateTransfer], &cfg).unwrap();
        let s = print_appendix_a(&rows);
        assert!(s.contains("q2"));
    }
}
