//! Figures 8–15.

use crate::config::Config;
use crate::util::{database_for, render_table};
use rpt_common::{DataType, Field, Result, Schema, Vector};
use rpt_core::robustness::{five_numbers, plans_for_joins};
use rpt_core::{random_left_deep, Database, JoinOrder, Mode, PlanNode, QueryOptions};
use rpt_storage::Table;
use std::collections::BTreeMap;

// ---------------------------------------------------------------- Figure 8

/// Figure 8: PT vs RPT on the queries whose Small2Large schedule
/// under-reduces (JOB 32a/32b, TPC-DS 54/83). Work of random left-deep
/// orders, normalized by RPT with the optimizer's order.
pub struct Fig8Row {
    pub query: String,
    /// mode label → (min, p25, med, p75, max) of normalized work
    pub boxes: BTreeMap<&'static str, (f64, f64, f64, f64, f64)>,
}

pub fn fig8_pt_vs_rpt(cfg: &Config) -> Result<Vec<Fig8Row>> {
    let job = rpt_workloads::job(cfg.sf, cfg.seed);
    let ds = rpt_workloads::tpcds(cfg.sf, cfg.seed);
    let targets: Vec<(&rpt_workloads::Workload, &str)> =
        vec![(&job, "32a"), (&job, "32b"), (&ds, "q54"), (&ds, "q83")];
    let mut out = Vec::new();
    for (w, id) in targets {
        let db = database_for(w);
        let qd = w.query(id).expect("query id exists");
        let q = db.bind_sql(&qd.sql)?;
        let norm = db
            .execute(&q, &QueryOptions::new(Mode::RobustPredicateTransfer))?
            .work()
            .max(1) as f64;
        let n = plans_for_joins(qd.num_joins, cfg.plan_scale).max(8);
        let graph = q.graph();
        let mut boxes = BTreeMap::new();
        for mode in [Mode::PredicateTransfer, Mode::RobustPredicateTransfer] {
            let mut works = Vec::new();
            for i in 0..n {
                let order =
                    JoinOrder::LeftDeep(random_left_deep(&graph, cfg.seed.wrapping_add(i as u64)));
                let r = db.execute(&q, &QueryOptions::new(mode).with_order(order))?;
                works.push(r.work() as f64 / norm);
            }
            boxes.insert(mode.label(), five_numbers(&works));
        }
        out.push(Fig8Row {
            query: format!("{} {}", w.name, id),
            boxes,
        });
    }
    Ok(out)
}

pub fn print_fig8(rows: &[Fig8Row]) -> String {
    let mut table = Vec::new();
    for r in rows {
        for (label, (mn, p25, med, p75, mx)) in &r.boxes {
            table.push(vec![
                r.query.clone(),
                label.to_string(),
                format!("{mn:.3}"),
                format!("{p25:.3}"),
                format!("{med:.3}"),
                format!("{p75:.3}"),
                format!("{mx:.3}"),
            ]);
        }
    }
    render_table(
        &["query", "system", "min", "p25", "med", "p75", "max"],
        &table,
    )
}

// ---------------------------------------------------------------- Figure 9

/// Figure 9: best random left-deep vs best random bushy vs the optimizer's
/// left-deep/bushy plans, all under RPT, normalized by best-left-deep.
pub struct Fig9Row {
    pub bench: &'static str,
    pub query: String,
    pub best_left_deep: u64,
    pub best_bushy: u64,
    pub optimizer_left_deep: u64,
    pub optimizer_bushy: u64,
}

pub fn fig9_bushy_gain(w: &rpt_workloads::Workload, cfg: &Config) -> Result<Vec<Fig9Row>> {
    let db = database_for(w);
    let mut out = Vec::new();
    for qd in w.acyclic_queries() {
        if qd.num_joins < 2 {
            continue;
        }
        let q = db.bind_sql(&qd.sql)?;
        let graph = q.graph();
        let n = plans_for_joins(qd.num_joins, cfg.plan_scale).max(6);
        let mode = Mode::RobustPredicateTransfer;
        let mut best_ld = u64::MAX;
        let mut best_bushy = u64::MAX;
        for i in 0..n {
            let seed = cfg.seed.wrapping_add(i as u64);
            let ld = JoinOrder::LeftDeep(random_left_deep(&graph, seed));
            let r = db.execute(&q, &QueryOptions::new(mode).with_order(ld))?;
            best_ld = best_ld.min(r.work());
            let bushy = JoinOrder::Bushy(rpt_core::random_bushy(&graph, seed));
            let r = db.execute(&q, &QueryOptions::new(mode).with_order(bushy))?;
            best_bushy = best_bushy.min(r.work());
        }
        let opt_ld = db.execute(&q, &QueryOptions::new(mode))?.work();
        let opt_bushy = db
            .execute(&q, &QueryOptions::new(mode).with_bushy_optimizer())?
            .work();
        out.push(Fig9Row {
            bench: w.name,
            query: qd.id.clone(),
            best_left_deep: best_ld,
            best_bushy,
            optimizer_left_deep: opt_ld,
            optimizer_bushy: opt_bushy,
        });
    }
    Ok(out)
}

pub fn print_fig9(rows: &[Fig9Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let norm = r.best_left_deep.max(1) as f64;
            vec![
                format!("{} {}", r.bench, r.query),
                "1.000".to_string(),
                format!("{:.3}", r.best_bushy as f64 / norm),
                format!("{:.3}", r.optimizer_left_deep as f64 / norm),
                format!("{:.3}", r.optimizer_bushy as f64 / norm),
            ]
        })
        .collect();
    render_table(
        &["query", "best LD", "best bushy", "opt LD", "opt bushy"],
        &table,
    )
}

/// Aggregate bushy-over-left-deep gain (the paper reports 6% TPC-H / 11%
/// JOB for best-random, 10% / 5% for optimizer plans).
pub fn fig9_gain_summary(rows: &[Fig9Row]) -> (f64, f64) {
    let best: Vec<f64> = rows
        .iter()
        .map(|r| r.best_left_deep as f64 / r.best_bushy.max(1) as f64)
        .collect();
    let opt: Vec<f64> = rows
        .iter()
        .map(|r| r.optimizer_left_deep as f64 / r.optimizer_bushy.max(1) as f64)
        .collect();
    (crate::util::geomean(&best), crate::util::geomean(&opt))
}

// --------------------------------------------------------------- Figure 10

/// Figure 10: the cost of picking the wrong build side for the top hash
/// join of JOB 17e — flip the topmost join's build side and compare.
pub struct Fig10Result {
    pub correct_work: u64,
    pub flipped_work: u64,
    pub correct_hash_build_rows: u64,
    pub flipped_hash_build_rows: u64,
    pub correct_time: f64,
    pub flipped_time: f64,
    /// Same flip applied to the baseline executor (no transfer phase):
    /// with unreduced inputs the wrong build side is much more costly,
    /// which is why the paper observes the effect on the *worst* random
    /// bushy plans.
    pub baseline_correct_build_rows: u64,
    pub baseline_flipped_build_rows: u64,
}

pub fn fig10_build_side(cfg: &Config) -> Result<Fig10Result> {
    let w = rpt_workloads::job(cfg.sf, cfg.seed);
    let db = database_for(&w);
    let qd = w.query("17e").expect("JOB 17e exists");
    let q = db.bind_sql(&qd.sql)?;
    // The optimizer's bushy plan, then the same plan with the top build
    // side flipped (the paper's (a) vs (b)).
    let opts = QueryOptions::new(Mode::RobustPredicateTransfer).with_bushy_optimizer();
    let plan = match db.choose_order(&q, &opts)? {
        JoinOrder::Bushy(p) => p,
        JoinOrder::LeftDeep(o) => PlanNode::left_deep(&o),
    };
    let correct = db.execute(
        &q,
        &QueryOptions::new(Mode::RobustPredicateTransfer)
            .with_order(JoinOrder::Bushy(plan.clone())),
    )?;
    let flipped = db.execute(
        &q,
        &QueryOptions::new(Mode::RobustPredicateTransfer)
            .with_order(JoinOrder::Bushy(plan.clone().flip_top_build_side())),
    )?;
    let base_correct = db.execute(
        &q,
        &QueryOptions::new(Mode::Baseline).with_order(JoinOrder::Bushy(plan.clone())),
    )?;
    let base_flipped = db.execute(
        &q,
        &QueryOptions::new(Mode::Baseline).with_order(JoinOrder::Bushy(plan.flip_top_build_side())),
    )?;
    Ok(Fig10Result {
        correct_work: correct.work(),
        flipped_work: flipped.work(),
        correct_hash_build_rows: correct.metrics.hash_build_rows,
        flipped_hash_build_rows: flipped.metrics.hash_build_rows,
        correct_time: correct.wall_time.as_secs_f64(),
        flipped_time: flipped.wall_time.as_secs_f64(),
        baseline_correct_build_rows: base_correct.metrics.hash_build_rows,
        baseline_flipped_build_rows: base_flipped.metrics.hash_build_rows,
    })
}

// --------------------------------------------------------------- Figure 11

/// Figure 11: JOB 2a case study — Σ intermediate results of the best and
/// worst random left-deep orders, with and without RPT.
pub struct Fig11Result {
    /// (best Σ intermediates, worst Σ intermediates) without RPT.
    pub baseline: (u64, u64),
    /// Same with RPT.
    pub rpt: (u64, u64),
    pub output_rows: u64,
    /// Pipelines per RPT plan and the peak concurrent pipelines the DAG
    /// scheduler achieved, read back from the `[scheduler]` trace entries.
    pub scheduler_pipelines: u64,
    pub scheduler_max_parallel: u64,
}

/// Extract one `[scheduler]` stat from a query's pipeline trace.
fn scheduler_stat(trace: &[(String, u64)], stat: &str) -> u64 {
    trace
        .iter()
        .rev()
        .find(|(label, _)| label == &format!("[scheduler] {stat}"))
        .map_or(0, |&(_, v)| v)
}

pub fn fig11_case_study(cfg: &Config) -> Result<Fig11Result> {
    let w = rpt_workloads::job(cfg.sf, cfg.seed);
    let db = database_for(&w);
    let qd = w.query("2a").expect("JOB 2a exists");
    let q = db.bind_sql(&qd.sql)?;
    let graph = q.graph();
    let n = plans_for_joins(qd.num_joins, cfg.plan_scale).max(10);
    let mut result = Fig11Result {
        baseline: (u64::MAX, 0),
        rpt: (u64::MAX, 0),
        output_rows: 0,
        scheduler_pipelines: 0,
        scheduler_max_parallel: 0,
    };
    for mode in [Mode::Baseline, Mode::RobustPredicateTransfer] {
        let mut best = u64::MAX;
        let mut worst = 0u64;
        for i in 0..n {
            let order =
                JoinOrder::LeftDeep(random_left_deep(&graph, cfg.seed.wrapping_add(i as u64)));
            // The paper's accounting treats the reduced tables as a fixed
            // part of Σ intermediates for every order; disable the
            // backward-pass alignment pruning so all orders share the same
            // transfer-phase materialization.
            let mut opts = QueryOptions::new(mode).with_order(order);
            opts.prune_backward = false;
            let r = db.execute(&q, &opts)?;
            let inter = r.metrics.intermediate_tuples;
            best = best.min(inter);
            worst = worst.max(inter);
            result.output_rows = r.metrics.output_rows;
            if mode == Mode::RobustPredicateTransfer {
                result.scheduler_pipelines = scheduler_stat(&r.trace, "pipelines");
                result.scheduler_max_parallel = result
                    .scheduler_max_parallel
                    .max(scheduler_stat(&r.trace, "max-parallel"));
            }
        }
        match mode {
            Mode::Baseline => result.baseline = (best, worst),
            _ => result.rpt = (best, worst),
        }
    }
    Ok(result)
}

// --------------------------------------------------------------- Figure 12

/// Figure 12: the adversarial instance where the query output is empty but
/// any plan without RPT must process ≈ N²/2 intermediate tuples.
///
/// `R(A,B)`: N rows, all `B = 1`. `S(B,C)`: N/2 rows `(1, 2)` and N/2 rows
/// `(9, 4)`. `T(C)`: N rows, all `C = 4`. Then `R ⋈ S` = N²/2 (the b=1
/// half), `S ⋈ T` = N²/2 (the c=4 half), and the 3-way output is empty —
/// so both binary join orders blow up while the fully reduced instance is
/// empty.
pub struct Fig12Result {
    pub n: usize,
    pub baseline_rs_first: u64,
    pub baseline_st_first: u64,
    pub rpt_work: u64,
    pub rpt_join_outputs: u64,
    pub output_rows: u64,
}

pub fn adversarial_db(n: usize) -> Database {
    let mut db = Database::new();
    let half = n / 2;
    db.register_table(
        Table::new(
            "r",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
            ]),
            vec![
                Vector::from_i64((0..n as i64).collect()),
                Vector::from_i64(vec![1; n]),
            ],
        )
        .expect("consistent columns"),
    );
    let mut sb = vec![1i64; half];
    sb.extend(vec![9i64; n - half]);
    let mut sc = vec![2i64; half];
    sc.extend(vec![4i64; n - half]);
    db.register_table(
        Table::new(
            "s",
            Schema::new(vec![
                Field::new("b", DataType::Int64),
                Field::new("c", DataType::Int64),
            ]),
            vec![Vector::from_i64(sb), Vector::from_i64(sc)],
        )
        .expect("consistent columns"),
    );
    db.register_table(
        Table::new(
            "t",
            Schema::new(vec![
                Field::new("c", DataType::Int64),
                Field::new("d", DataType::Int64),
            ]),
            vec![
                Vector::from_i64(vec![4; n]),
                Vector::from_i64((0..n as i64).collect()),
            ],
        )
        .expect("consistent columns"),
    );
    db
}

pub const ADVERSARIAL_SQL: &str =
    "SELECT COUNT(*) AS cnt FROM r, s, t WHERE r.b = s.b AND s.c = t.c";

pub fn fig12_adversarial(n: usize) -> Result<Fig12Result> {
    let db = adversarial_db(n);
    // (R ⋈ S) ⋈ T
    let rs = db.query(
        ADVERSARIAL_SQL,
        &QueryOptions::new(Mode::Baseline).with_order(JoinOrder::LeftDeep(vec![0, 1, 2])),
    )?;
    // (S ⋈ T) ⋈ R — note relation indices follow FROM order r,s,t.
    let st = db.query(
        ADVERSARIAL_SQL,
        &QueryOptions::new(Mode::Baseline).with_order(JoinOrder::LeftDeep(vec![1, 2, 0])),
    )?;
    let rpt = db.query(
        ADVERSARIAL_SQL,
        &QueryOptions::new(Mode::RobustPredicateTransfer)
            .with_order(JoinOrder::LeftDeep(vec![0, 1, 2])),
    )?;
    Ok(Fig12Result {
        n,
        baseline_rs_first: rs.metrics.join_output_rows,
        baseline_st_first: st.metrics.join_output_rows,
        rpt_work: rpt.work(),
        rpt_join_outputs: rpt.metrics.join_output_rows,
        output_rows: rpt.metrics.output_rows,
    })
}

// --------------------------------------------------------------- Figure 13

/// Figure 13: 50 random LargestRoot join trees (largest relation stays
/// root), join order fixed to the optimizer's; work normalized by the
/// unmodified LargestRoot run.
pub struct Fig13Row {
    pub bench: &'static str,
    pub query: String,
    pub box5: (f64, f64, f64, f64, f64),
}

pub fn fig13_random_trees(
    w: &rpt_workloads::Workload,
    trees: usize,
    cfg: &Config,
) -> Result<Vec<Fig13Row>> {
    let db = database_for(w);
    let mut out = Vec::new();
    for qd in w.acyclic_queries() {
        if qd.num_joins < 2 {
            continue;
        }
        let q = db.bind_sql(&qd.sql)?;
        let base_opts = QueryOptions::new(Mode::RobustPredicateTransfer);
        let order = db.choose_order(&q, &base_opts)?;
        let norm = db
            .execute(
                &q,
                &QueryOptions::new(Mode::RobustPredicateTransfer).with_order(order.clone()),
            )?
            .work()
            .max(1) as f64;
        let mut works = Vec::with_capacity(trees);
        for seed in 0..trees as u64 {
            let r = db.execute(
                &q,
                &QueryOptions::new(Mode::RobustPredicateTransfer)
                    .with_order(order.clone())
                    .with_random_tree(cfg.seed.wrapping_add(seed)),
            )?;
            works.push(r.work() as f64 / norm);
        }
        out.push(Fig13Row {
            bench: w.name,
            query: qd.id.clone(),
            box5: five_numbers(&works),
        });
    }
    Ok(out)
}

pub fn print_fig13(rows: &[Fig13Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let (mn, p25, med, p75, mx) = r.box5;
            vec![
                format!("{} {}", r.bench, r.query),
                format!("{mn:.3}"),
                format!("{p25:.3}"),
                format!("{med:.3}"),
                format!("{p75:.3}"),
                format!("{mx:.3}"),
            ]
        })
        .collect();
    render_table(&["query", "min", "p25", "med", "p75", "max"], &table)
}

// --------------------------------------------------------------- Figure 15

/// Figure 15: on-disk and on-disk+spill configurations. Wall time of the
/// optimizer's plan, loading the referenced tables from the on-disk
/// columnar format, normalized by the baseline's on-disk time.
pub struct Fig15Row {
    pub query: String,
    pub base_disk: f64,
    pub rpt_disk: f64,
    pub base_spill: f64,
    pub rpt_spill: f64,
}

pub fn fig15_spill(w: &rpt_workloads::Workload, cfg: &Config) -> Result<Vec<Fig15Row>> {
    use rpt_storage::disk::{write_table, DiskTable};
    let dir = std::env::temp_dir().join(format!("rpt_fig15_{}_{}", w.name, std::process::id()));
    std::fs::create_dir_all(&dir)?;
    for t in &w.tables {
        write_table(t, &dir.join(format!("{}.rptc", t.name)), 2048)?;
    }
    // Bind against a metadata db to learn which tables each query touches.
    let meta_db = database_for(w);
    let mut out = Vec::new();
    for qd in w.acyclic_queries() {
        if qd.num_joins < 2 {
            continue;
        }
        let bound = meta_db.bind_sql(&qd.sql)?;
        let table_names: std::collections::BTreeSet<String> = bound
            .relations
            .iter()
            .map(|r| r.table.name.clone())
            .collect();
        let run = |mode: Mode, spill: bool| -> Result<f64> {
            // Load the referenced tables from disk (identical cost for all
            // modes), then time execution separately: the paper's on-disk
            // numbers compare executor behaviour, and at laptop scale the
            // (shared) load step would otherwise drown the signal.
            let mut db = Database::new();
            for name in &table_names {
                let t = DiskTable::open(name.clone(), &dir.join(format!("{name}.rptc")))?.load()?;
                db.register_table(t);
            }
            let mut opts = QueryOptions::new(mode);
            if spill {
                // ≈50% of the workload's table bytes forces transfer-phase
                // materialization to spill.
                let total: usize = w.tables.iter().map(|t| t.size_bytes()).sum();
                opts = opts.with_spill(total / 20, &dir);
            }
            let t0 = std::time::Instant::now();
            db.query(&qd.sql, &opts)?;
            Ok(t0.elapsed().as_secs_f64())
        };
        let base_disk = run(Mode::Baseline, false)?;
        let rpt_disk = run(Mode::RobustPredicateTransfer, false)?;
        let base_spill = run(Mode::Baseline, true)?;
        let rpt_spill = run(Mode::RobustPredicateTransfer, true)?;
        out.push(Fig15Row {
            query: qd.id.clone(),
            base_disk,
            rpt_disk,
            base_spill,
            rpt_spill,
        });
        let _ = cfg;
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(out)
}

pub fn print_fig15(rows: &[Fig15Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let norm = r.base_disk.max(1e-9);
            vec![
                r.query.clone(),
                "1.000".into(),
                format!("{:.3}", r.rpt_disk / norm),
                format!("{:.3}", r.base_spill / norm),
                format!("{:.3}", r.rpt_spill / norm),
            ]
        })
        .collect();
    render_table(
        &[
            "query",
            "DuckDB disk",
            "RPT disk",
            "DuckDB +spill",
            "RPT +spill",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_quadratic_vs_rpt() {
        let n = 200;
        let r = fig12_adversarial(n).unwrap();
        let quad = (n * n / 2) as u64;
        // The 3-way join output is empty (output_rows counts rows into the
        // final aggregate, i.e. |OUT| of the join).
        assert_eq!(r.output_rows, 0);
        // Both baseline orders process ≈ N²/2 join outputs.
        assert!(
            r.baseline_rs_first >= quad * 9 / 10,
            "{}",
            r.baseline_rs_first
        );
        assert!(
            r.baseline_st_first >= quad * 9 / 10,
            "{}",
            r.baseline_st_first
        );
        // RPT's join phase produces (almost) nothing: full reduction
        // empties the tables (Bloom FPs allow a tiny residue).
        assert!(
            r.rpt_join_outputs < n as u64,
            "RPT join outputs {} not ~0",
            r.rpt_join_outputs
        );
        // Total RPT work is linear-ish, orders below N²/2.
        assert!(
            r.rpt_work < quad / 10,
            "rpt work {} vs {}",
            r.rpt_work,
            quad
        );
    }

    #[test]
    fn fig8_shows_pt_fragility() {
        let cfg = Config::tiny();
        let rows = fig8_pt_vs_rpt(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        // On at least one PT-fragile query, PT's worst normalized work
        // exceeds RPT's worst substantially.
        let fragile = rows.iter().any(|r| {
            let pt_max = r.boxes.get("PT").map(|b| b.4).unwrap_or(0.0);
            let rpt_max = r.boxes.get("RPT").map(|b| b.4).unwrap_or(f64::INFINITY);
            pt_max > rpt_max * 1.5
        });
        assert!(
            fragile,
            "PT never looked fragile: {:?}",
            rows.iter()
                .map(|r| (
                    &r.query,
                    r.boxes.get("PT").map(|b| b.4),
                    r.boxes.get("RPT").map(|b| b.4)
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig10_flipping_build_side_costs() {
        let cfg = Config::tiny();
        let r = fig10_build_side(&cfg).unwrap();
        // Under RPT the reduced builds are tiny, so the flip is ~neutral at
        // laptop scale (the paper's 37% shows up on SF100 intermediates).
        // The baseline flip shows the directional effect here.
        assert!(
            r.baseline_flipped_build_rows != r.baseline_correct_build_rows
                || r.flipped_hash_build_rows != r.correct_hash_build_rows,
            "flip changed nothing at all"
        );
    }

    #[test]
    fn fig11_rpt_narrows_gap() {
        // Needs enough data that intermediate counts aren't single-digit
        // noise (the paper runs SF100; we use sf=0.1 here).
        let mut cfg = Config::tiny();
        cfg.sf = 0.1;
        let r = fig11_case_study(&cfg).unwrap();
        let base_ratio = r.baseline.1 as f64 / r.baseline.0.max(1) as f64;
        let rpt_ratio = r.rpt.1 as f64 / r.rpt.0.max(1) as f64;
        assert!(
            rpt_ratio <= base_ratio,
            "RPT ratio {rpt_ratio} vs baseline {base_ratio}"
        );
    }
}
