//! One module per group of paper experiments.
//!
//! | module | reproduces |
//! |---|---|
//! | [`robustness`] | Tables 1–2, Figures 6–7, Appendix B/C (Figs. 21–31) |
//! | [`speedup`] | Table 3, Appendix A (Figs. 17–20) |
//! | [`figures`] | Figures 8, 9, 10, 11, 12, 13, 14, 15 |
//! | [`micro`] | Figure 16 (Bloom vs hash probe) + ablations |

pub mod figures;
pub mod micro;
pub mod robustness;
pub mod speedup;

pub use figures::*;
pub use micro::*;
pub use robustness::*;
pub use speedup::*;
