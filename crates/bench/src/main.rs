//! `rpt-bench` — regenerate every table and figure of the paper.
//!
//! ```text
//! rpt-bench <experiment> [--sf X] [--seed N] [--scale F] [--threads T]
//!
//! experiments:
//!   table1        robustness factors, random left-deep (Table 1)
//!   table2        robustness factors, random bushy (Table 2)
//!   table3        speedups with the optimizer's plan (Table 3)
//!   fig6          per-query left-deep distributions (Figure 6)
//!   fig7          per-query bushy distributions (Figure 7)
//!   fig8          PT vs RPT on fragile queries (Figure 8)
//!   fig9          bushy vs left-deep gains (Figure 9)
//!   fig10         wrong hash-join build side, JOB 17e (Figure 10)
//!   fig11         JOB 2a case study (Figure 11)
//!   fig12         adversarial quadratic instance (Figure 12)
//!   fig13         random LargestRoot join trees (Figure 13)
//!   fig14         multithreaded robustness (Figure 14)
//!   fig15         on-disk + spill (Figure 15)
//!   fig16         Bloom vs hash probe microbenchmark (Figure 16)
//!   appendix-a    per-query speedups, 4 benchmarks (Figures 17–20)
//!   appendix-bc   per-query distributions, 4 systems (Figures 21–31)
//!   hybrid        RPT+WCOJ on cyclic queries (§5.1.3 extension)
//!   noise         plan degradation under cardinality-estimation noise
//!   ablations     backward-pass / pruning / FPR ablations
//!   all           everything above
//! ```

use rpt_bench::experiments as ex;
use rpt_bench::util::{fmt_x, geomean};
use rpt_bench::Config;
use rpt_core::Mode;

fn parse_args() -> (String, Config) {
    let mut cfg = Config::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = String::from("all");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                cfg.sf = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.sf);
                i += 2;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.seed);
                i += 2;
            }
            "--scale" => {
                cfg.plan_scale = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.plan_scale);
                i += 2;
            }
            "--threads" => {
                cfg.threads = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.threads);
                i += 2;
            }
            other => {
                cmd = other.to_string();
                i += 1;
            }
        }
    }
    (cmd, cfg)
}

fn main() {
    let (cmd, cfg) = parse_args();
    let run = |name: &str| cmd == name || cmd == "all";
    let two = [Mode::Baseline, Mode::RobustPredicateTransfer];
    let four = [
        Mode::Baseline,
        Mode::BloomJoin,
        Mode::PredicateTransfer,
        Mode::RobustPredicateTransfer,
    ];

    if run("table1") {
        banner("Table 1: Robustness Factors (random left-deep)");
        let all = ex::run_robustness(&two, false, &cfg).expect("table1");
        println!("{}", ex::print_rf_table(&all, &two));
    }
    if run("table2") {
        banner("Table 2: Robustness Factors (random bushy)");
        let all = ex::run_robustness(&two, true, &cfg).expect("table2");
        println!("{}", ex::print_rf_table(&all, &two));
    }
    if run("table3") {
        banner("Table 3: speedups over DuckDB baseline (optimizer's plan, geomean)");
        let all = ex::run_table3(&cfg).expect("table3");
        println!("{}", ex::print_table3(&all));
    }
    if run("fig6") {
        banner("Figure 6: distribution of random left-deep plans (work / t_opt)");
        let all = ex::run_robustness(&two, false, &cfg).expect("fig6");
        for (name, rows) in &all {
            println!("--- {name} ---\n{}", ex::print_distribution(rows));
        }
    }
    if run("fig7") {
        banner("Figure 7: distribution of random bushy plans (work / t_opt)");
        let all = ex::run_robustness(&two, true, &cfg).expect("fig7");
        for (name, rows) in &all {
            println!("--- {name} ---\n{}", ex::print_distribution(rows));
        }
    }
    if run("fig8") {
        banner("Figure 8: PT vs RPT on Small2Large-fragile queries");
        let rows = ex::fig8_pt_vs_rpt(&cfg).expect("fig8");
        println!("{}", ex::print_fig8(&rows));
    }
    if run("fig9") {
        banner("Figure 9: bushy vs left-deep under RPT");
        for w in [
            rpt_workloads::tpch(cfg.sf, cfg.seed),
            rpt_workloads::job(cfg.sf, cfg.seed),
        ] {
            let rows = ex::fig9_bushy_gain(&w, &cfg).expect("fig9");
            let (best_gain, opt_gain) = ex::fig9_gain_summary(&rows);
            println!("--- {} ---\n{}", w.name, ex::print_fig9(&rows));
            println!(
                "bushy gain over left-deep: best-random {} / optimizer {}\n",
                fmt_x(best_gain),
                fmt_x(opt_gain)
            );
        }
    }
    if run("fig10") {
        banner("Figure 10: wrong hash-join build side (JOB 17e)");
        let r = ex::fig10_build_side(&cfg).expect("fig10");
        println!(
            "correct build side: work {} (hash-build rows {}), {:.4}s",
            r.correct_work, r.correct_hash_build_rows, r.correct_time
        );
        println!(
            "flipped build side: work {} (hash-build rows {}), {:.4}s",
            r.flipped_work, r.flipped_hash_build_rows, r.flipped_time
        );
        let rpt_ratio = (r.flipped_work.max(r.correct_work).max(1)) as f64
            / (r.flipped_work.min(r.correct_work).max(1)) as f64;
        let base_ratio = (r
            .baseline_flipped_build_rows
            .max(r.baseline_correct_build_rows)
            .max(1)) as f64
            / (r.baseline_flipped_build_rows
                .min(r.baseline_correct_build_rows)
                .max(1)) as f64;
        println!(
            "cost of the wrong orientation, RPT (reduced inputs): {}",
            fmt_x(rpt_ratio)
        );
        println!(
            "cost of the wrong orientation, baseline build rows ({} vs {}): {}\n",
            r.baseline_correct_build_rows,
            r.baseline_flipped_build_rows,
            fmt_x(base_ratio)
        );
    }
    if run("fig11") {
        banner("Figure 11: JOB 2a case study (Σ intermediate results)");
        let r = ex::fig11_case_study(&cfg).expect("fig11");
        println!(
            "w/o RPT: best {} worst {} (ratio {})",
            r.baseline.0,
            r.baseline.1,
            fmt_x(r.baseline.1 as f64 / r.baseline.0.max(1) as f64)
        );
        println!(
            "RPT:     best {} worst {} (ratio {})",
            r.rpt.0,
            r.rpt.1,
            fmt_x(r.rpt.1 as f64 / r.rpt.0.max(1) as f64)
        );
        println!(
            "scheduler: {} pipelines/plan, peak {} concurrent",
            r.scheduler_pipelines, r.scheduler_max_parallel
        );
        println!("output rows: {}\n", r.output_rows);
    }
    if run("fig12") {
        banner("Figure 12: adversarial instance (empty output, N²/2 w/o RPT)");
        for n in [100usize, 400, 1000] {
            let r = ex::fig12_adversarial(n).expect("fig12");
            println!(
                "N = {:5}: (R⋈S)⋈T = {:8} tuples, (S⋈T)⋈R = {:8} tuples, \
                 RPT join outputs = {:3}, output = {}",
                r.n, r.baseline_rs_first, r.baseline_st_first, r.rpt_join_outputs, r.output_rows
            );
        }
        println!();
    }
    if run("fig13") {
        banner("Figure 13: 50 random LargestRoot join trees (normalized work)");
        for w in [
            rpt_workloads::tpch(cfg.sf, cfg.seed),
            rpt_workloads::job(cfg.sf, cfg.seed),
        ] {
            let rows = ex::fig13_random_trees(&w, 50, &cfg).expect("fig13");
            println!("--- {} ---\n{}", w.name, ex::print_fig13(&rows));
        }
    }
    if run("fig14") {
        banner(format!(
            "Figure 14: multithreaded robustness ({} threads)",
            cfg.threads
        ));
        for w in [
            rpt_workloads::tpch(cfg.sf, cfg.seed),
            rpt_workloads::job(cfg.sf, cfg.seed),
        ] {
            let rows = ex::robustness_multithreaded(&w, &cfg).expect("fig14");
            println!("--- {} ---\n{}", w.name, ex::print_distribution(&rows));
        }
    }
    if run("fig15") {
        banner("Figure 15: on-disk and on-disk+spill (wall time, normalized)");
        for w in [
            rpt_workloads::tpch(cfg.sf, cfg.seed),
            rpt_workloads::job(cfg.sf, cfg.seed),
        ] {
            let rows = ex::fig15_spill(&w, &cfg).expect("fig15");
            println!("--- {} ---\n{}", w.name, ex::print_fig15(&rows));
            let disk: Vec<f64> = rows
                .iter()
                .map(|r| r.base_disk / r.rpt_disk.max(1e-9))
                .collect();
            let spill: Vec<f64> = rows
                .iter()
                .map(|r| r.base_spill / r.rpt_spill.max(1e-9))
                .collect();
            println!(
                "RPT speedup: on-disk {} / +spill {}\n",
                fmt_x(geomean(&disk)),
                fmt_x(geomean(&spill))
            );
        }
    }
    if run("fig16") {
        banner("Figure 16: Bloom probe vs hash probe microbenchmark");
        let rows = ex::fig16_bloom_micro(2_000_000, 22);
        println!("{}", ex::print_fig16(&rows));
    }
    if run("appendix-a") {
        banner("Appendix A (Figures 17–20): per-query speedups, optimizer's plan");
        let all = ex::run_table3(&cfg).expect("appendix-a");
        for (name, rows) in &all {
            println!("--- {name} ---\n{}", ex::print_appendix_a(rows));
        }
    }
    if run("appendix-bc") {
        banner("Appendix B/C (Figures 21–31): distributions for all systems");
        for bushy in [false, true] {
            println!(
                "=== {} plans ===",
                if bushy { "bushy" } else { "left-deep" }
            );
            let all = ex::run_robustness(&four, bushy, &cfg).expect("appendix-bc");
            for (name, rows) in &all {
                println!("--- {name} ---\n{}", ex::print_distribution(rows));
            }
        }
    }
    if run("hybrid") {
        banner("Extension: RPT+WCOJ on cyclic TPC-DS queries (work)");
        let rows = ex::hybrid_cyclic(&cfg).expect("hybrid");
        println!("{}", ex::print_hybrid(&rows));
        println!("The hybrid executor has no join order to get wrong; its work is a");
        println!("single deterministic number per query.\n");
    }
    if run("noise") {
        banner("Motivation: plan-quality degradation under CE noise (geomean work ratio)");
        let rows = ex::ce_noise_tolerance(&cfg).expect("noise");
        println!("{}", ex::print_noise(&rows));
        println!("RPT's plans barely degrade when estimates are corrupted; the baseline's do.\n");
    }
    if run("ablations") {
        banner("Ablations");
        let rows = ex::ablation_backward_pass(&cfg).expect("ablation");
        println!(
            "{}",
            ex::print_ablation(&rows, "backward-pass pruning (on vs off, work)")
        );
        let rows = ex::ablation_pruning(&cfg).expect("ablation");
        println!(
            "{}",
            ex::print_ablation(&rows, "trivial PK-side semi-join pruning (on vs off, work)")
        );
        println!("Bloom FPR sweep on JOB 3a:");
        for r in ex::ablation_fpr(&cfg).expect("ablation") {
            println!(
                "  fpr {:>5.3}: work {:>10}, bloom survivors {:>8}, join-phase rows {:>8}",
                r.fpr, r.work, r.bloom_survivors, r.join_output_rows
            );
        }
    }
}

fn banner(title: impl AsRef<str>) {
    let t = title.as_ref();
    println!("\n{}\n{}\n", t, "=".repeat(t.len()));
}
