//! Harness configuration.

/// Experiment knobs, shared by the CLI and the Criterion benches.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workload scale factor (1.0 ≈ a few hundred thousand tuples per
    /// benchmark; the CLI default 0.2 finishes the full suite in minutes).
    pub sf: f64,
    /// Data-generation seed.
    pub seed: u64,
    /// Fraction of the paper's `N = 70m − 190` random plans per query.
    pub plan_scale: f64,
    /// Work budget multiplier: random orders abort once they exceed
    /// `budget_factor ×` the optimizer-plan work (the paper's 1000×t_opt
    /// timeout analogue).
    pub budget_factor: u64,
    /// Threads for the multithreaded experiment.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sf: 0.2,
            seed: 42,
            plan_scale: 0.1,
            budget_factor: 1000,
            threads: 4,
        }
    }
}

impl Config {
    /// Tiny configuration for unit tests and Criterion benches.
    pub fn tiny() -> Config {
        Config {
            sf: 0.02,
            seed: 7,
            plan_scale: 0.02,
            budget_factor: 1000,
            threads: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = Config::default();
        assert!(c.sf > 0.0 && c.plan_scale > 0.0 && c.budget_factor > 1);
        let t = Config::tiny();
        assert!(t.sf < c.sf);
    }
}
