//! Shared helpers: database construction, formatting, statistics.

use rpt_core::Database;
use rpt_workloads::Workload;

/// Build an engine instance over a generated workload.
pub fn database_for(w: &Workload) -> Database {
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }
    db
}

/// Geometric mean of positive values (NaN on empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Format a ratio like the paper's tables ("1.5×").
pub fn fmt_x(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}×")
    } else {
        format!("{v:.2}×")
    }
}

/// Render a simple aligned table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_workloads::tpch;

    #[test]
    fn database_registers_all_tables() {
        let w = tpch(0.01, 3);
        let db = database_for(&w);
        assert_eq!(db.catalog().len(), w.tables.len());
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn table_rendering() {
        let s = render_table(
            &["a", "bench"],
            &[vec!["1".into(), "x".into()], vec!["22".into(), "yy".into()]],
        );
        assert!(s.contains("bench"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_x(1.5), "1.50×");
        assert_eq!(fmt_x(250.0), "250×");
        assert_eq!(fmt_x(f64::NAN), "-");
    }
}
