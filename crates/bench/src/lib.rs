//! # rpt-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation (§5 + appendices), shared between the `rpt-bench` CLI and the
//! Criterion benches. Each function returns plain-data rows; `print_*`
//! helpers render them in the same shape the paper reports.
//!
//! Metrics: alongside wall time we report the deterministic *work* metric
//! (tuples through stateful operators — scans, Bloom builds/probes, hash
//! builds, join outputs). At laptop scale wall time of sub-millisecond
//! queries is timer noise; work is the quantity the Yannakakis bound
//! actually constrains, so robustness factors are computed on work and
//! cross-checked on time.

pub mod config;
pub mod experiments;
pub mod util;

pub use config::Config;
pub use util::database_for;
