use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::database_for;
use rpt_bench::{experiments as ex, Config};
use rpt_core::{Mode, QueryOptions};

/// Table 3: end-to-end speedups with the optimizer's plan.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let all = ex::run_table3(&cfg).expect("table3");
    println!(
        "\n[Table 3] Speedups over baseline\n{}",
        ex::print_table3(&all)
    );
    // Wall-clock comparison on one query in release mode.
    let w = rpt_workloads::tpch(0.2, cfg.seed);
    let db = database_for(&w);
    let sql = &w.query("q3").expect("q3").sql;
    let q = db.bind_sql(sql).expect("bind");
    let mut g = c.benchmark_group("table3_q3");
    g.sample_size(20);
    g.bench_function("baseline", |b| {
        b.iter(|| {
            db.execute(&q, &QueryOptions::new(Mode::Baseline))
                .expect("run")
        })
    });
    g.bench_function("rpt", |b| {
        b.iter(|| {
            db.execute(&q, &QueryOptions::new(Mode::RobustPredicateTransfer))
                .expect("run")
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
