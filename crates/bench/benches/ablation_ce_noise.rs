use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Motivation experiment: plan degradation under cardinality-estimation
/// noise — the optimizer-error tolerance RPT buys.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let rows = ex::ce_noise_tolerance(&cfg).expect("noise");
    println!("\n[CE noise] geomean work ratio (noisy plan / clean plan)");
    println!("{}", ex::print_noise(&rows));
    let mut g = c.benchmark_group("ce_noise");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| ex::ce_noise_tolerance(&cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
