use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpt_core::{Database, Mode, QueryOptions, SchedulerKind};
use rpt_workloads::Workload;

/// Scheduler overlap: the global morsel-driven worker pool vs the legacy
/// scoped (pipeline × morsel thread-scope) scheduler, over the TPC-H
/// workload tables with partitioned sinks. Alongside wall time, reports
/// the partition-overlap counter — consumer partition tasks that started
/// while their producer pipeline was still merging — and the pool's
/// utilization. The wall-clock win needs a multi-core runner; the overlap
/// and task counters are meaningful even on one core.
fn bench(c: &mut Criterion) {
    let cfg = rpt_bench::Config::tiny();
    let w: Workload = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }

    let opts = |kind: SchedulerKind| {
        QueryOptions::new(Mode::RobustPredicateTransfer)
            .with_scheduler(kind)
            .with_partition_count(8)
            .with_workers(4)
    };

    // One-shot report: prove downstream partition tasks overlap producer
    // merges, and show the pool's task accounting.
    let mut total_overlap = 0u64;
    let mut total_tasks = 0u64;
    for qd in w.acyclic_queries() {
        let r = db
            .query(&qd.sql, &opts(SchedulerKind::Global))
            .unwrap_or_else(|e| panic!("{}: {e}", qd.id));
        total_overlap += r.metrics.sched_overlap_tasks;
        total_tasks += r.metrics.sched_tasks;
        println!(
            "[sched_overlap] {}: tasks={} overlap={} queue-depth={} util={}%",
            qd.id,
            r.metrics.sched_tasks,
            r.metrics.sched_overlap_tasks,
            r.metrics.sched_max_queue_depth,
            r.metrics.scheduler_utilization_pct(),
        );
    }
    println!("[sched_overlap] total tasks={total_tasks} overlap={total_overlap}");

    let mut g = c.benchmark_group("sched_overlap");
    g.sample_size(10);
    for (name, kind) in [
        ("global", SchedulerKind::Global),
        ("scoped", SchedulerKind::Scoped),
    ] {
        let opts = opts(kind);
        g.bench_with_input(BenchmarkId::new("tpch_acyclic", name), &opts, |b, opts| {
            b.iter(|| {
                for qd in w.acyclic_queries() {
                    black_box(db.query(&qd.sql, opts).expect("query"));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
