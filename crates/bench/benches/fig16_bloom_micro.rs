use criterion::BenchmarkId;
use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::experiments as ex;
use rpt_bloom::BloomFilter;
use rpt_common::hash::hash_i64;

/// Figure 16: Bloom probe vs hash probe as the build side grows.
/// This is the release-mode verification of the timing claim.
fn bench(c: &mut Criterion) {
    let rows = ex::fig16_bloom_micro(1_000_000, 20);
    println!("\n[Figure 16]\n{}", ex::print_fig16(&rows));
    let probe: Vec<u64> = (0..100_000i64).map(|k| hash_i64(k * 17)).collect();
    let mut g = c.benchmark_group("fig16");
    g.sample_size(20);
    for log2 in [12u32, 16, 20] {
        let n = 1usize << log2;
        let mut bf = BloomFilter::with_default_fpr(n);
        let mut ht = std::collections::HashSet::with_capacity(n);
        for k in 0..n as i64 {
            bf.insert_i64(k);
            ht.insert(hash_i64(k));
        }
        g.bench_with_input(BenchmarkId::new("bloom_probe", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0u64;
                for &h in &probe {
                    hits += bf.probe_hash(h) as u64;
                }
                hits
            })
        });
        g.bench_with_input(BenchmarkId::new("hash_probe", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0u64;
                for &h in &probe {
                    hits += ht.contains(&h) as u64;
                }
                hits
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
