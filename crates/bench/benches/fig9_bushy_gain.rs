use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Figure 9: bushy vs left-deep plan quality under RPT.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let rows = ex::fig9_bushy_gain(&w, &cfg).expect("fig9");
    let (best, opt) = ex::fig9_gain_summary(&rows);
    println!("\n[Figure 9] TPC-H\n{}", ex::print_fig9(&rows));
    println!("bushy gain: best-random {best:.3}x / optimizer {opt:.3}x");
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("tpch_bushy_gain", |b| {
        b.iter(|| ex::fig9_bushy_gain(&w, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
