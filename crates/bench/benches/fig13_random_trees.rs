use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Figure 13: random LargestRoot join trees (largest relation stays root).
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let rows = ex::fig13_random_trees(&w, 20, &cfg).expect("fig13");
    println!("\n[Figure 13] TPC-H\n{}", ex::print_fig13(&rows));
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("random_trees_sweep", |b| {
        b.iter(|| ex::fig13_random_trees(&w, 10, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
