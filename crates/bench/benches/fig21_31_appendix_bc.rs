use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};
use rpt_core::Mode;

/// Appendix B/C (Figures 21-31): distributions for all four systems.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let four = [
        Mode::Baseline,
        Mode::BloomJoin,
        Mode::PredicateTransfer,
        Mode::RobustPredicateTransfer,
    ];
    let all = ex::run_robustness(&four, false, &cfg).expect("appendix-bc");
    for (name, rows) in &all {
        println!("\n[Appendix B] {name}\n{}", ex::print_distribution(rows));
    }
    let w = rpt_workloads::tpcds(cfg.sf, cfg.seed);
    let mut g = c.benchmark_group("appendix_bc");
    g.sample_size(10);
    g.bench_function("tpcds_four_systems", |b| {
        b.iter(|| ex::robustness_table(&w, &four, false, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
