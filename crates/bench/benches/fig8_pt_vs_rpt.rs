use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Figure 8: PT vs RPT on the Small2Large-fragile queries.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let rows = ex::fig8_pt_vs_rpt(&cfg).expect("fig8");
    println!("\n[Figure 8] PT vs RPT\n{}", ex::print_fig8(&rows));
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("pt_vs_rpt_sweep", |b| {
        b.iter(|| ex::fig8_pt_vs_rpt(&cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
