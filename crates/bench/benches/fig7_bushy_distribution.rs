use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};
use rpt_core::Mode;

/// Figure 7: per-query distribution of random bushy plans.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let modes = [Mode::Baseline, Mode::RobustPredicateTransfer];
    let all = ex::run_robustness(&modes, true, &cfg).expect("fig7");
    for (name, rows) in &all {
        println!("\n[Figure 7] {name}\n{}", ex::print_distribution(rows));
    }
    let w = rpt_workloads::job(cfg.sf, cfg.seed);
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("job_bushy_distribution", |b| {
        b.iter(|| ex::robustness_table(&w, &modes, true, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
