use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Figure 10: wrong hash-join build side on JOB 17e.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let r = ex::fig10_build_side(&cfg).expect("fig10");
    println!(
        "\n[Figure 10] JOB 17e: correct work {} / flipped work {} (hash-build rows {} vs {})",
        r.correct_work, r.flipped_work, r.correct_hash_build_rows, r.flipped_hash_build_rows
    );
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("build_side_experiment", |b| {
        b.iter(|| ex::fig10_build_side(&cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
