use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Figure 11: JOB 2a case study on intermediate-result sizes.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let r = ex::fig11_case_study(&cfg).expect("fig11");
    println!(
        "\n[Figure 11] JOB 2a: w/o RPT best {} worst {}; RPT best {} worst {}; output {}",
        r.baseline.0, r.baseline.1, r.rpt.0, r.rpt.1, r.output_rows
    );
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("case_study", |b| {
        b.iter(|| ex::fig11_case_study(&cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
