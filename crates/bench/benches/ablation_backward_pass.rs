use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Ablation: §4.3 backward-pass skipping.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let rows = ex::ablation_backward_pass(&cfg).expect("ablation");
    println!(
        "\n{}",
        ex::print_ablation(&rows, "[Ablation] backward-pass pruning")
    );
    let mut g = c.benchmark_group("ablation_backward");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| ex::ablation_backward_pass(&cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
