use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpt_core::{Database, Mode, QueryOptions};
use rpt_workloads::Workload;

/// Partitioned vs serial GROUP BY merges over the TPC-H tables.
///
/// With `partition_count == 1` every worker's group table funnels through
/// the serial `Sink::combine` merge; with `partition_count == 8` workers
/// radix-route rows by group-key hash and the merge runs one task per
/// partition on the worker pool. Alongside wall time, a one-shot report
/// prints the merge accounting (tasks, largest task's group count) —
/// meaningful even on a single-core runner where the wall-clock win needs
/// real parallel hardware.
fn bench(c: &mut Criterion) {
    let cfg = rpt_bench::Config::tiny();
    let w: Workload = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }

    // A many-group aggregation (one group per order) and a few-group one
    // (priorities) over a join — the two shapes GROUP BY merges take.
    let queries: Vec<(&str, String)> = vec![
        (
            "orders_many_groups",
            "SELECT l.l_orderkey, COUNT(*) AS c, SUM(l.l_quantity) AS q \
             FROM lineitem l GROUP BY l.l_orderkey"
                .to_string(),
        ),
        (
            "join_priority_groups",
            "SELECT o.o_orderpriority, COUNT(*) AS c, SUM(l.l_quantity) AS q \
             FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey \
             GROUP BY o.o_orderpriority"
                .to_string(),
        ),
    ];

    let opts = |partitions: usize| {
        QueryOptions::new(Mode::RobustPredicateTransfer)
            .with_partition_count(partitions)
            .with_threads(cfg.threads)
            .with_workers(4)
    };

    // One-shot merge accounting: partitioned GROUP BY merges run one task
    // per partition and no task covers the full group set.
    for (id, sql) in &queries {
        let serial = db
            .query(sql, &opts(1))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let part = db
            .query(sql, &opts(8))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(serial.sorted_rows(), part.sorted_rows(), "{id} parity");
        let agg = |r: &rpt_core::QueryResult, suffix: &str| {
            r.trace
                .iter()
                .find(|(l, _)| l.starts_with("[merge] aggregate") && l.ends_with(suffix))
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        println!(
            "[agg_partition] {id}: groups={} agg-merge-tasks={} agg-max-task-groups={}",
            part.rows.len(),
            agg(&part, "tasks"),
            agg(&part, "max-task-rows"),
        );
    }

    let mut g = c.benchmark_group("agg_partition");
    g.sample_size(10);
    for (name, partitions) in [("serial", 1usize), ("partitioned", 8)] {
        let opts = opts(partitions);
        g.bench_with_input(BenchmarkId::new("tpch_groupby", name), &opts, |b, opts| {
            b.iter(|| {
                for (_, sql) in &queries {
                    black_box(db.query(sql, opts).expect("query"));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
