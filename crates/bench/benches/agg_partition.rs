use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpt_core::{Database, Mode, QueryOptions};
use rpt_workloads::Workload;

/// Partitioned vs serial GROUP BY merges — and fixed-key fast-path vs
/// generic group tables — over the TPC-H tables.
///
/// With `partition_count == 1` every worker's group table funnels through
/// the serial `Sink::combine` merge; with `partition_count == 8` workers
/// radix-route rows by group-key hash and the merge runs one task per
/// partition on the worker pool. Alongside wall time, a one-shot report
/// prints the merge accounting (tasks, largest task's group count) —
/// meaningful even on a single-core runner where the wall-clock win needs
/// real parallel hardware.
///
/// The `fast`/`generic` legs pin the type-specialized aggregation win on
/// the all-`Int64` GROUP BY: packed `u64`/`u128` keys + open addressing vs
/// encoded-key collision chains (`RPT_AGG_FAST=off` parity path). The
/// `examples/agg_bench.rs` harness records the same comparison into
/// `BENCH_agg.json`.
fn bench(c: &mut Criterion) {
    let cfg = rpt_bench::Config::tiny();
    let w: Workload = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let mut db = Database::new();
    for t in &w.tables {
        db.register_table(t.clone());
    }

    // A many-group aggregation (one group per order) and a few-group one
    // (priorities) over a join — the two shapes GROUP BY merges take.
    let queries: Vec<(&str, String)> = vec![
        (
            "orders_many_groups",
            "SELECT l.l_orderkey, COUNT(*) AS c, SUM(l.l_quantity) AS q \
             FROM lineitem l GROUP BY l.l_orderkey"
                .to_string(),
        ),
        (
            "join_priority_groups",
            "SELECT o.o_orderpriority, COUNT(*) AS c, SUM(l.l_quantity) AS q \
             FROM orders o, lineitem l WHERE o.o_orderkey = l.l_orderkey \
             GROUP BY o.o_orderpriority"
                .to_string(),
        ),
    ];

    let opts = |partitions: usize| {
        QueryOptions::new(Mode::RobustPredicateTransfer)
            .with_partition_count(partitions)
            .with_threads(cfg.threads)
            .with_workers(4)
    };

    // One-shot merge accounting: partitioned GROUP BY merges run one task
    // per partition and no task covers the full group set.
    for (id, sql) in &queries {
        let serial = db
            .query(sql, &opts(1))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        let part = db
            .query(sql, &opts(8))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(serial.sorted_rows(), part.sorted_rows(), "{id} parity");
        let agg = |r: &rpt_core::QueryResult, suffix: &str| {
            r.trace
                .iter()
                .find(|(l, _)| l.starts_with("[merge] aggregate") && l.ends_with(suffix))
                .map(|&(_, n)| n)
                .unwrap_or(0)
        };
        println!(
            "[agg_partition] {id}: groups={} agg-merge-tasks={} agg-max-task-groups={}",
            part.rows.len(),
            agg(&part, "tasks"),
            agg(&part, "max-task-rows"),
        );
    }

    // One-shot path accounting: the all-Int64 GROUP BY engages the fast
    // path automatically, the forced-generic run does not, and the two are
    // row-identical.
    {
        let (id, sql) = &queries[0];
        let fast = db.query(sql, &opts(8).with_agg_fast(true)).expect("fast");
        let gen = db
            .query(sql, &opts(8).with_agg_fast(false))
            .expect("generic");
        assert_eq!(fast.sorted_rows(), gen.sorted_rows(), "{id} path parity");
        assert!(
            fast.metrics.agg_fast_path_chunks > 0,
            "{id}: fast path idle"
        );
        assert_eq!(gen.metrics.agg_fast_path_chunks, 0);
        println!(
            "[agg_partition] {id}: fast-path-chunks={} generic-chunks={}",
            fast.metrics.agg_fast_path_chunks, gen.metrics.agg_generic_chunks,
        );
    }

    let mut g = c.benchmark_group("agg_partition");
    g.sample_size(10);
    for (name, partitions) in [("serial", 1usize), ("partitioned", 8)] {
        let opts = opts(partitions);
        g.bench_with_input(BenchmarkId::new("tpch_groupby", name), &opts, |b, opts| {
            b.iter(|| {
                for (_, sql) in &queries {
                    black_box(db.query(sql, opts).expect("query"));
                }
            })
        });
    }
    // Fast vs generic group tables on the all-Int64 many-groups query
    // (the shape the fixed-key fast path exists for).
    for (name, fast) in [("fast", true), ("generic", false)] {
        let opts = opts(8).with_agg_fast(fast);
        let sql = &queries[0].1;
        g.bench_with_input(
            BenchmarkId::new("int64_groupby_path", name),
            &opts,
            |b, opts| b.iter(|| black_box(db.query(sql, opts).expect("query"))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
