use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};
use rpt_core::Mode;

/// Table 2: robustness factors for random bushy join orders.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let modes = [Mode::Baseline, Mode::RobustPredicateTransfer];
    let all = ex::run_robustness(&modes, true, &cfg).expect("table2");
    println!(
        "\n[Table 2] Robustness Factors (bushy)\n{}",
        ex::print_rf_table(&all, &modes)
    );
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("tpch_bushy_sweep", |b| {
        b.iter(|| ex::robustness_table(&w, &modes, true, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
