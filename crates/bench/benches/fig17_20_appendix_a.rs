use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Appendix A (Figures 17-20): per-query speedups with optimizer plans.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let all = ex::run_table3(&cfg).expect("appendix-a");
    for (name, rows) in &all {
        println!("\n[Appendix A] {name}\n{}", ex::print_appendix_a(rows));
    }
    let w = rpt_workloads::tpcds(cfg.sf, cfg.seed);
    let modes = [
        rpt_core::Mode::Baseline,
        rpt_core::Mode::RobustPredicateTransfer,
    ];
    let mut g = c.benchmark_group("appendix_a");
    g.sample_size(10);
    g.bench_function("tpcds_speedups", |b| {
        b.iter(|| ex::speedup_table(&w, &modes, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
