use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Ablation: §4.3 trivial PK-side semi-join pruning.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let rows = ex::ablation_pruning(&cfg).expect("ablation");
    println!(
        "\n{}",
        ex::print_ablation(&rows, "[Ablation] trivial semi-join pruning")
    );
    let mut g = c.benchmark_group("ablation_pruning");
    g.sample_size(10);
    g.bench_function("sweep", |b| {
        b.iter(|| ex::ablation_pruning(&cfg).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
