use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};
use rpt_core::Mode;

/// Figure 6: per-query distribution of random left-deep plans.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let modes = [Mode::Baseline, Mode::RobustPredicateTransfer];
    let all = ex::run_robustness(&modes, false, &cfg).expect("fig6");
    for (name, rows) in &all {
        println!("\n[Figure 6] {name}\n{}", ex::print_distribution(rows));
    }
    let w = rpt_workloads::job(cfg.sf, cfg.seed);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("job_leftdeep_distribution", |b| {
        b.iter(|| ex::robustness_table(&w, &modes, false, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
