use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Ablation: Bloom filter false-positive-rate sweep.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let rows = ex::ablation_fpr(&cfg).expect("ablation");
    println!("\n[Ablation] FPR sweep on JOB 3a:");
    for r in &rows {
        println!(
            "  fpr {:>5.3}: work {:>9}, join rows {:>7}",
            r.fpr, r.work, r.join_output_rows
        );
    }
    let mut g = c.benchmark_group("ablation_fpr");
    g.sample_size(10);
    g.bench_function("sweep", |b| b.iter(|| ex::ablation_fpr(&cfg).expect("run")));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
