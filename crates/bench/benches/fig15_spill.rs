use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Figure 15: on-disk tables and spilling transfer-phase intermediates.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let rows = ex::fig15_spill(&w, &cfg).expect("fig15");
    println!("\n[Figure 15] TPC-H\n{}", ex::print_fig15(&rows));
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("spill_sweep", |b| {
        b.iter(|| ex::fig15_spill(&w, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
