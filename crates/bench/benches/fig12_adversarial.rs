use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::experiments as ex;

/// Figure 12: the adversarial instance (quadratic w/o RPT, empty output).
fn bench(c: &mut Criterion) {
    for n in [100usize, 400, 1000] {
        let r = ex::fig12_adversarial(n).expect("fig12");
        println!(
            "[Figure 12] N={n}: RS-first {} / ST-first {} / RPT joins {} / out {}",
            r.baseline_rs_first, r.baseline_st_first, r.rpt_join_outputs, r.output_rows
        );
    }
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("adversarial_n400", |b| {
        b.iter(|| ex::fig12_adversarial(400).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
