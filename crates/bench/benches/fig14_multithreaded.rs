use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};

/// Figure 14: robustness under multi-threaded execution.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let rows = ex::robustness_multithreaded(&w, &cfg).expect("fig14");
    println!(
        "\n[Figure 14] TPC-H ({} threads)\n{}",
        cfg.threads,
        ex::print_distribution(&rows)
    );
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("multithreaded_sweep", |b| {
        b.iter(|| ex::robustness_multithreaded(&w, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
