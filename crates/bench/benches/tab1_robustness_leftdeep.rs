use criterion::{criterion_group, criterion_main, Criterion};
use rpt_bench::{experiments as ex, Config};
use rpt_core::Mode;

/// Table 1: robustness factors for random left-deep join orders.
/// Prints the table once, then measures one robustness sweep.
fn bench(c: &mut Criterion) {
    let cfg = Config::tiny();
    let modes = [Mode::Baseline, Mode::RobustPredicateTransfer];
    let all = ex::run_robustness(&modes, false, &cfg).expect("table1");
    println!(
        "\n[Table 1] Robustness Factors (left-deep)\n{}",
        ex::print_rf_table(&all, &modes)
    );
    let w = rpt_workloads::tpch(cfg.sf, cfg.seed);
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("tpch_robustness_sweep", |b| {
        b.iter(|| ex::robustness_table(&w, &modes, false, &cfg).expect("sweep"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
