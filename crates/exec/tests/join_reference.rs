//! Property test: the vectorized hash join must agree with a naive
//! nested-loop reference implementation on random inputs, and the exact
//! semi-join must equal "rows with ≥1 match".

use proptest::prelude::*;
use rpt_common::{DataChunk, Vector};
use rpt_exec::JoinHashTable;

fn reference_join(build: &[i64], probe: &[i64]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (p, pk) in probe.iter().enumerate() {
        for (b, bk) in build.iter().enumerate() {
            if pk == bk {
                out.push((p, b));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn hash_join_matches_nested_loop(
        build in proptest::collection::vec(-5i64..5, 0..40),
        probe in proptest::collection::vec(-5i64..5, 0..40),
    ) {
        let ht = JoinHashTable::build(
            &[DataChunk::new(vec![Vector::from_i64(build.clone())])],
            vec![0],
        )
        .unwrap();
        let probe_chunk = DataChunk::new(vec![Vector::from_i64(probe.clone())]);
        let (mut p_out, mut b_out) = (vec![], vec![]);
        ht.probe(&probe_chunk, &[0], &mut p_out, &mut b_out);
        let mut got: Vec<(usize, usize)> = p_out
            .iter()
            .zip(b_out.iter())
            .map(|(&p, &b)| (p as usize, b as usize))
            .collect();
        got.sort_unstable();
        let mut want = reference_join(&build, &probe);
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn semi_join_matches_membership(
        build in proptest::collection::vec(-5i64..5, 0..40),
        probe in proptest::collection::vec(-5i64..5, 0..40),
    ) {
        let ht = JoinHashTable::build(
            &[DataChunk::new(vec![Vector::from_i64(build.clone())])],
            vec![0],
        )
        .unwrap();
        let probe_chunk = DataChunk::new(vec![Vector::from_i64(probe.clone())]);
        let got = ht.semi_probe(&probe_chunk, &[0]);
        let want: Vec<u32> = probe
            .iter()
            .enumerate()
            .filter(|(_, k)| build.contains(k))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn composite_key_join_matches_reference(
        rows in proptest::collection::vec((-3i64..3, -3i64..3), 0..30),
        probes in proptest::collection::vec((-3i64..3, -3i64..3), 0..30),
    ) {
        let build = DataChunk::new(vec![
            Vector::from_i64(rows.iter().map(|r| r.0).collect()),
            Vector::from_i64(rows.iter().map(|r| r.1).collect()),
        ]);
        let ht = JoinHashTable::build(&[build], vec![0, 1]).unwrap();
        let probe_chunk = DataChunk::new(vec![
            Vector::from_i64(probes.iter().map(|r| r.0).collect()),
            Vector::from_i64(probes.iter().map(|r| r.1).collect()),
        ]);
        let (mut p_out, mut b_out) = (vec![], vec![]);
        ht.probe(&probe_chunk, &[0, 1], &mut p_out, &mut b_out);
        let mut got: Vec<(usize, usize)> = p_out
            .iter()
            .zip(b_out.iter())
            .map(|(&p, &b)| (p as usize, b as usize))
            .collect();
        got.sort_unstable();
        let mut want = Vec::new();
        for (p, pk) in probes.iter().enumerate() {
            for (b, bk) in rows.iter().enumerate() {
                if pk == bk {
                    want.push((p, b));
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
