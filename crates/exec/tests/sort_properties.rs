//! Property tests for the partitioned sort/TopK sink: random typed rows
//! (with NULLs) × random key directions × random partition and worker
//! counts must produce exactly the rows `sort_unstable_by` yields under
//! the engine's published total order (`cmp_scalar_rows`) on the gathered
//! input, sliced by OFFSET/LIMIT — and a TopK whose limit covers every
//! row must equal the full sort.

use proptest::prelude::*;
use rpt_common::{DataChunk, DataType, Field, ScalarValue, Schema, Vector};
use rpt_exec::{cmp_scalar_rows, ExecContext, Resources, SinkFactory, SortKey, SortSinkFactory};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("x", DataType::Float64),
        Field::new("s", DataType::Utf8),
    ])
}

/// One generated row: `(key, null_roll, tag)` — `null_roll == 0` makes the
/// key NULL; `tag` derives the float and string columns.
type Row = (i64, u32, i64);

fn chunk_of(rows: &[Row]) -> DataChunk {
    let mut key = Vector::from_i64(rows.iter().map(|&(k, _, _)| k).collect());
    if rows.iter().any(|&(_, n, _)| n == 0) {
        key.validity = Some(rows.iter().map(|&(_, n, _)| n != 0).collect());
    }
    DataChunk::new(vec![
        key,
        Vector::from_f64(rows.iter().map(|&(_, _, t)| t as f64 / 7.0).collect()),
        Vector::from_utf8(
            rows.iter()
                .map(|&(_, _, t)| format!("s{:03}", t.rem_euclid(40)))
                .collect(),
        ),
    ])
}

/// Split into `chunk_size` chunks dealt round-robin across `workers`.
fn worker_chunks(rows: &[Row], chunk_size: usize, workers: usize) -> Vec<Vec<DataChunk>> {
    let mut per_worker: Vec<Vec<DataChunk>> = vec![Vec::new(); workers];
    for (i, ck) in rows.chunks(chunk_size.max(1)).enumerate() {
        per_worker[i % workers].push(chunk_of(ck));
    }
    per_worker
}

/// Drive the sink exactly as the pipeline driver does and return the
/// published output rows in order.
fn run_engine(
    factory: &SortSinkFactory,
    ctx: &ExecContext,
    per_worker: Vec<Vec<DataChunk>>,
) -> Vec<Vec<ScalarValue>> {
    let res = Resources::new(1, 0, 0);
    let mut states = Vec::new();
    for chunks in per_worker {
        let mut s = factory.make(ctx).expect("make");
        for c in chunks {
            s.sink(c, ctx).expect("sink");
        }
        states.push(s);
    }
    if factory.partitioned_merge(ctx) {
        factory
            .merge_partitioned("sort", states, ctx, &res)
            .expect("merge");
    } else {
        let mut it = states.into_iter();
        let mut merged = it.next().expect("at least one worker");
        for s in it {
            merged.combine(s).expect("combine");
        }
        merged.finalize(&res).expect("finalize");
    }
    res.buffer(0)
        .expect("buffer")
        .iter()
        .flat_map(|c| c.rows())
        .collect()
}

fn reference(
    rows: &[Row],
    keys: &[SortKey],
    limit: Option<usize>,
    offset: usize,
) -> Vec<Vec<ScalarValue>> {
    let mut all: Vec<Vec<ScalarValue>> = chunk_of(rows).rows();
    all.sort_unstable_by(|a, b| cmp_scalar_rows(keys, a, b));
    let lo = offset.min(all.len());
    let hi = limit
        .map(|l| lo.saturating_add(l).min(all.len()))
        .unwrap_or(all.len());
    all[lo..hi].to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine's output is byte-identical to `sort_unstable_by` under
    /// the same total order, regardless of partitioning, worker count, or
    /// chunking — including NULL keys in either declared placement.
    #[test]
    fn sort_sink_matches_sort_unstable_by(
        rows in proptest::collection::vec((-25i64..25, 0u32..5, -100i64..100), 1..180),
        chunk_size in 1usize..40,
        pc_exp in 0u32..4,
        workers in 1usize..4,
        desc0 in proptest::bool::ANY,
        nf0 in proptest::bool::ANY,
        desc1 in proptest::bool::ANY,
        nf1 in proptest::bool::ANY,
        limit_roll in 0usize..80,
        offset in 0usize..6,
    ) {
        let partitions = 1usize << pc_exp;
        let keys = vec![
            SortKey { col: 0, desc: desc0, nulls_first: nf0 },
            SortKey { col: 2, desc: desc1, nulls_first: nf1 },
        ];
        // ~1/3 full sorts, the rest TopK with a small bound.
        let limit = if limit_roll < 27 { None } else { Some(limit_roll - 27) };
        let expected = reference(&rows, &keys, limit, offset);

        let factory = SortSinkFactory::new(0, keys.clone(), limit, offset, schema());
        let ctx = ExecContext::new()
            .with_threads(workers)
            .with_partitions(partitions);
        let got = run_engine(&factory, &ctx, worker_chunks(&rows, chunk_size, workers));
        prop_assert_eq!(&expected, &got,
            "partitions={} workers={} chunk={} keys={:?} limit={:?} offset={}",
            partitions, workers, chunk_size, keys, limit, offset);

        // The TopK bound held on every run the sink kept.
        if let Some(l) = limit {
            let m = ctx.metrics.summary();
            prop_assert!(
                m.sort_max_run_rows <= (l + offset) as u64,
                "run of {} rows exceeds bound {}", m.sort_max_run_rows, l + offset
            );
        }
    }

    /// A TopK whose limit covers the whole input is exactly the full sort.
    #[test]
    fn topk_with_covering_limit_is_full_sort(
        rows in proptest::collection::vec((-25i64..25, 0u32..5, -100i64..100), 1..120),
        chunk_size in 1usize..40,
        pc_exp in 0u32..4,
        workers in 1usize..4,
        desc in proptest::bool::ANY,
        nf in proptest::bool::ANY,
        slack in 0usize..10,
    ) {
        let partitions = 1usize << pc_exp;
        let keys = vec![SortKey { col: 0, desc, nulls_first: nf }];

        let full = SortSinkFactory::new(0, keys.clone(), None, 0, schema());
        let ctx = ExecContext::new()
            .with_threads(workers)
            .with_partitions(partitions);
        let full_rows = run_engine(&full, &ctx, worker_chunks(&rows, chunk_size, workers));

        let topk = SortSinkFactory::new(0, keys, Some(rows.len() + slack), 0, schema());
        let ctx = ExecContext::new()
            .with_threads(workers)
            .with_partitions(partitions);
        let topk_rows = run_engine(&topk, &ctx, worker_chunks(&rows, chunk_size, workers));

        prop_assert_eq!(full_rows, topk_rows);
    }
}
