//! The global morsel-driven scheduler: readiness/topology units, the
//! partition-overlap rendezvous proof, and Global-vs-Scoped parity at the
//! executor level.
//!
//! The rendezvous test is the acceptance check for partition-wise
//! downstream scheduling: a producer whose partition-1 merge *blocks until
//! the consumer has started processing partition 0* can only complete if
//! the consumer's partition tasks become runnable the moment their
//! partition seals — a scheduler that barriers on the whole buffer
//! deadlocks (and fails via timeout) instead.

use rpt_common::{DataChunk, DataType, Error, Field, Result, ScalarValue, Schema, Vector};
use rpt_exec::operators::buffer::BufferSinkFactory;
use rpt_exec::operators::{AggregateFactory, BufferScan};
use rpt_exec::pipeline::run_physical;
use rpt_exec::{
    run_physical_global, ExecContext, Executor, NodeDeps, OpSpec, Operator, PartitionMerger,
    PhysicalPipeline, PipelinePlan, ResourceId, Resources, RouteMode, SchedulerKind, Sink,
    SinkFactory, SinkSpec, SourceSpec,
};
use rpt_storage::Table;
use std::any::Any;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

fn table(name: &str, ids: Vec<i64>, vals: Vec<i64>) -> Arc<Table> {
    Arc::new(
        Table::new(
            name,
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Int64),
            ]),
            vec![Vector::from_i64(ids), Vector::from_i64(vals)],
        )
        .unwrap(),
    )
}

fn two_col_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("v", DataType::Int64),
    ])
}

fn collect_pipeline(src: SourceSpec, ops: Vec<OpSpec>, buf_id: usize) -> PipelinePlan {
    PipelinePlan {
        label: format!("collect{buf_id}"),
        source: src,
        ops,
        sink: SinkSpec::Buffer {
            buf_id,
            blooms: vec![],
        },
        intermediate: false,
        route: RouteMode::Radix,
        sink_schema: two_col_schema(),
    }
}

/// A chained plan (scan → buffer 0 → buffer 1 → buffer 2) executes in
/// topological order on the global pool and produces the sealed buffers.
#[test]
fn chained_buffers_execute_in_dependency_order() {
    for (workers, partitions) in [(1, 1), (2, 2), (4, 8)] {
        let t = table("t", (0..100).collect(), (0..100).collect());
        let ctx = ExecContext::new()
            .with_scheduler(SchedulerKind::Global)
            .with_workers(workers)
            .with_partitions(partitions);
        let mut exec = Executor::new(ctx, 3, 0, 0);
        let p0 = collect_pipeline(SourceSpec::Table(t), vec![], 0);
        let p1 = collect_pipeline(SourceSpec::Buffer(0), vec![], 1);
        let p2 = collect_pipeline(SourceSpec::Buffer(1), vec![], 2);
        exec.run_dag(&[p0, p1, p2], 4).unwrap();
        assert_eq!(
            exec.buffer_rows(2),
            100,
            "workers={workers} pc={partitions}"
        );
        if partitions == 1 {
            // A single partition seals all at once — by definition no
            // consumer task can start before the producer sealed
            // everything, so the overlap counter must stay at zero.
            assert_eq!(exec.ctx.metrics.summary().sched_overlap_tasks, 0);
        }
    }
}

/// Pipelines blocked on an unbuilt hash table stay blocked until the build
/// finalizes; the probe then sees every build row (readiness gating).
#[test]
fn probe_waits_for_hash_table_readiness() {
    let build = table("b", (0..50).collect(), (0..50).map(|x| x * 2).collect());
    let probe = table("p", (0..200).map(|i| i % 60).collect(), (0..200).collect());
    let ctx = ExecContext::new()
        .with_scheduler(SchedulerKind::Global)
        .with_workers(4)
        .with_partitions(4);
    let mut exec = Executor::new(ctx, 1, 0, 1);
    let p_build = PipelinePlan {
        label: "build".into(),
        source: SourceSpec::Table(build),
        ops: vec![],
        sink: SinkSpec::HashBuild {
            ht_id: 0,
            key_cols: vec![0],
            blooms: vec![],
        },
        intermediate: true,
        route: RouteMode::Radix,
        sink_schema: two_col_schema(),
    };
    // List the probe pipeline FIRST: only dependency readiness (not plan
    // order) can sequence it after the build.
    let p_probe = collect_pipeline(
        SourceSpec::Table(probe),
        vec![OpSpec::JoinProbe {
            ht_id: 0,
            key_cols: vec![0],
            build_output_cols: vec![1],
        }],
        0,
    );
    exec.run_dag(&[p_probe, p_build], 4).unwrap();
    // keys 0..50 match; probe ids are i % 60 → 200 * 50/60
    let expected: u64 = (0..200).filter(|i| i % 60 < 50).count() as u64;
    assert_eq!(exec.buffer_rows(0), expected);
}

/// Cyclic dependency records are rejected up front with `Error::Plan`.
#[test]
fn global_scheduler_rejects_cycles() {
    let t = table("t", vec![1, 2], vec![3, 4]);
    let ctx = ExecContext::new().with_partitions(2);
    let res = Resources::with_partitions(2, 0, 0, 2);
    let phys: Vec<PhysicalPipeline> = vec![
        collect_pipeline(SourceSpec::Table(t.clone()), vec![], 0).lower(),
        collect_pipeline(SourceSpec::Table(t), vec![], 1).lower(),
    ];
    let deps = vec![
        NodeDeps {
            reads: vec![ResourceId::Buffer(1)],
            writes: vec![ResourceId::Buffer(0)],
        },
        NodeDeps {
            reads: vec![ResourceId::Buffer(0)],
            writes: vec![ResourceId::Buffer(1)],
        },
    ];
    let err = run_physical_global(&phys, &deps, &ctx, &res, 2).unwrap_err();
    assert!(matches!(err, Error::Plan(_)), "got {err}");
}

/// A failing task aborts the run and propagates the first error; dependent
/// pipelines never execute.
#[test]
fn task_error_propagates_and_halts() {
    let t = table("t", (0..100).collect(), (0..100).collect());
    let ctx = ExecContext::new()
        .with_scheduler(SchedulerKind::Global)
        .with_workers(2)
        .with_budget(10); // first morsel blows the budget
    let mut exec = Executor::new(ctx, 2, 0, 0);
    let p0 = collect_pipeline(SourceSpec::Table(t), vec![], 0);
    let p1 = collect_pipeline(SourceSpec::Buffer(0), vec![], 1);
    let err = exec.run_dag(&[p0, p1], 4).unwrap_err();
    assert!(err.is_budget(), "expected budget abort, got {err}");
}

// ---------------------------------------------------------- rendezvous

/// Producer sink state: passthrough row counter (the merger publishes
/// synthetic partitions, so the sunk chunks themselves are discarded).
struct NullSink {
    rows: u64,
}

impl Sink for NullSink {
    fn sink(&mut self, chunk: DataChunk, _ctx: &ExecContext) -> Result<()> {
        self.rows += chunk.num_rows() as u64;
        Ok(())
    }

    fn combine(&mut self, _other: Box<dyn Sink>) -> Result<()> {
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn finalize(self: Box<Self>, _res: &Resources) -> Result<()> {
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

type Gate = Arc<(Mutex<bool>, Condvar)>;

/// Merger whose partition-1 task BLOCKS until the consumer pipeline has
/// started processing partition 0 (rendezvous with a timeout so a
/// barriering scheduler fails loudly instead of hanging).
struct RendezvousMerger {
    buf_id: usize,
    gate: Gate,
}

impl PartitionMerger for RendezvousMerger {
    fn partitions(&self) -> usize {
        2
    }

    fn merge_partition(&self, part: usize, _ctx: &ExecContext, res: &Resources) -> Result<()> {
        if part == 1 {
            let (lock, cv) = &*self.gate;
            let mut started = lock.lock().unwrap();
            let deadline = Duration::from_secs(10);
            while !*started {
                let (guard, timeout) = cv.wait_timeout(started, deadline).unwrap();
                started = guard;
                if timeout.timed_out() {
                    return Err(Error::Exec(
                        "rendezvous timed out: consumer never started on the sealed \
                         partition while the producer was still merging"
                            .into(),
                    ));
                }
            }
        }
        let base = part as i64 * 100;
        let chunk = DataChunk::new(vec![
            Vector::from_i64((base..base + 10).collect()),
            Vector::from_i64((base..base + 10).collect()),
        ]);
        res.publish_buffer_partition(self.buf_id, part, vec![chunk])
    }

    fn finish(&self, _ctx: &ExecContext, _res: &Resources) -> Result<()> {
        Ok(())
    }

    fn max_task_rows(&self) -> u64 {
        10
    }
}

struct RendezvousFactory {
    buf_id: usize,
    gate: Gate,
}

impl SinkFactory for RendezvousFactory {
    fn make(&self, _ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        Ok(Box::new(NullSink { rows: 0 }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        vec![ResourceId::Buffer(self.buf_id)]
    }

    fn partitioned_merge(&self, _ctx: &ExecContext) -> bool {
        true
    }

    fn make_merger(
        &self,
        _states: Vec<Box<dyn Sink>>,
        _ctx: &ExecContext,
    ) -> Result<Box<dyn PartitionMerger>> {
        Ok(Box::new(RendezvousMerger {
            buf_id: self.buf_id,
            gate: self.gate.clone(),
        }))
    }
}

/// Streaming operator that trips the gate: proof the consumer is running.
struct SignalStarted {
    gate: Gate,
}

impl Operator for SignalStarted {
    fn execute(
        &self,
        chunk: DataChunk,
        _ctx: &ExecContext,
        _res: &Resources,
    ) -> Result<Option<DataChunk>> {
        let (lock, cv) = &*self.gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        Ok(Some(chunk))
    }
}

/// THE overlap proof: a consumer partition task runs while the producer is
/// still merging its other partition, and the scheduler counts it.
#[test]
fn consumer_partition_task_overlaps_producer_merge() {
    let gate: Gate = Arc::new((Mutex::new(false), Condvar::new()));
    let ctx = ExecContext::new().with_partitions(2);
    let res = Resources::with_partitions(2, 0, 0, 2);

    let producer = PhysicalPipeline {
        label: "producer".into(),
        source: SourceSpec::Table(table("src", vec![1, 2, 3], vec![0, 0, 0])).lower(),
        ops: vec![],
        sink: Box::new(RendezvousFactory {
            buf_id: 0,
            gate: gate.clone(),
        }),
        intermediate: true,
        route: RouteMode::Radix,
    };
    let consumer = PhysicalPipeline {
        label: "consumer".into(),
        source: Box::new(BufferScan::new(0)),
        ops: vec![Box::new(SignalStarted { gate: gate.clone() })],
        sink: Box::new(BufferSinkFactory::new(1, two_col_schema(), vec![])),
        intermediate: false,
        route: RouteMode::Radix,
    };
    let deps = vec![
        NodeDeps {
            reads: vec![],
            writes: vec![ResourceId::Buffer(0)],
        },
        NodeDeps {
            reads: vec![ResourceId::Buffer(0)],
            writes: vec![ResourceId::Buffer(1)],
        },
    ];

    let stats = run_physical_global(&[producer, consumer], &deps, &ctx, &res, 2).unwrap();

    // The rendezvous succeeded (no timeout): partition-0 consumption ran
    // strictly inside the producer's merge window — and the scheduler
    // observed it.
    assert!(stats.overlap_tasks >= 1, "no overlap counted: {stats:?}");
    assert_eq!(stats.pipelines, 2);
    // Both synthetic partitions flowed through the consumer.
    let rows: usize = res.buffer(1).unwrap().iter().map(|c| c.num_rows()).sum();
    assert_eq!(rows, 20);
}

// ------------------------------------- aggregate rendezvous (real merger)

/// Delegates to the *real* [`AggregateFactory`] but wraps its merger so
/// the partition-1 merge blocks until the consumer signals — the
/// aggregate-path twin of [`RendezvousMerger`], proving a consumer of an
/// aggregate buffer runs while the producer is still merging groups.
struct GatedAggFactory {
    inner: AggregateFactory,
    gate: Gate,
}

struct GatedMerger {
    inner: Box<dyn PartitionMerger>,
    gate: Gate,
}

impl SinkFactory for GatedAggFactory {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        self.inner.make(ctx)
    }

    fn writes(&self) -> Vec<ResourceId> {
        self.inner.writes()
    }

    fn partitioned_merge(&self, ctx: &ExecContext) -> bool {
        self.inner.partitioned_merge(ctx)
    }

    fn make_merger(
        &self,
        states: Vec<Box<dyn Sink>>,
        ctx: &ExecContext,
    ) -> Result<Box<dyn PartitionMerger>> {
        Ok(Box::new(GatedMerger {
            inner: self.inner.make_merger(states, ctx)?,
            gate: self.gate.clone(),
        }))
    }
}

impl PartitionMerger for GatedMerger {
    fn partitions(&self) -> usize {
        self.inner.partitions()
    }

    fn merge_partition(&self, part: usize, ctx: &ExecContext, res: &Resources) -> Result<()> {
        if part == 1 {
            let (lock, cv) = &*self.gate;
            let mut started = lock.lock().unwrap();
            let deadline = Duration::from_secs(10);
            while !*started {
                let (guard, timeout) = cv.wait_timeout(started, deadline).unwrap();
                started = guard;
                if timeout.timed_out() {
                    return Err(Error::Exec(
                        "aggregate rendezvous timed out: consumer never started on the \
                         sealed partition while the aggregate merge was still running"
                            .into(),
                    ));
                }
            }
        }
        self.inner.merge_partition(part, ctx, res)
    }

    fn finish(&self, ctx: &ExecContext, res: &Resources) -> Result<()> {
        self.inner.finish(ctx, res)
    }

    fn max_task_rows(&self) -> u64 {
        self.inner.max_task_rows()
    }
}

/// A downstream consumer of an *aggregate* buffer becomes runnable the
/// moment its partition seals: with the partition-1 group merge gated on
/// the consumer having started, the run can only complete via overlap —
/// and `overlap_tasks` records it.
#[test]
fn aggregate_consumer_overlaps_group_merge() {
    use rpt_common::hash::hash_i64;
    use rpt_common::Partitioner;
    use rpt_exec::AggExpr;

    // Keys for both of the two hash partitions, so each partition seals a
    // non-empty group chunk.
    let partitioner = Partitioner::new(2);
    let mut keys: Vec<i64> = Vec::new();
    for part in 0..2 {
        keys.extend(
            (0..1000)
                .filter(|&k| partitioner.of_hash(hash_i64(k)) == part)
                .take(5),
        );
    }
    let n = keys.len();
    assert!(n >= 10, "need keys in both partitions");

    let gate: Gate = Arc::new((Mutex::new(false), Condvar::new()));
    let ctx = ExecContext::new().with_partitions(2);
    let res = Resources::with_partitions(2, 0, 0, 2);
    let out_schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("c", DataType::Int64),
    ]);

    let producer = PhysicalPipeline {
        label: "aggregate".into(),
        source: SourceSpec::Table(table("src", keys.clone(), vec![0; n])).lower(),
        ops: vec![],
        sink: Box::new(GatedAggFactory {
            inner: AggregateFactory::new(
                0,
                vec![0],
                vec![AggExpr::count_star("c")],
                vec![DataType::Int64, DataType::Int64],
                out_schema.clone(),
                vec![],
            ),
            gate: gate.clone(),
        }),
        intermediate: true,
        route: RouteMode::Radix,
    };
    let consumer = PhysicalPipeline {
        label: "consume-groups".into(),
        source: Box::new(BufferScan::new(0)),
        ops: vec![Box::new(SignalStarted { gate: gate.clone() })],
        sink: Box::new(BufferSinkFactory::new(1, out_schema, vec![])),
        intermediate: false,
        route: RouteMode::Radix,
    };
    let deps = vec![
        NodeDeps {
            reads: vec![],
            writes: vec![ResourceId::Buffer(0)],
        },
        NodeDeps {
            reads: vec![ResourceId::Buffer(0)],
            writes: vec![ResourceId::Buffer(1)],
        },
    ];
    let stats = run_physical_global(&[producer, consumer], &deps, &ctx, &res, 2).unwrap();

    // No timeout: the consumer ran on partition 0's groups strictly inside
    // the producer's merge window, and the scheduler counted the overlap.
    assert!(stats.overlap_tasks >= 1, "no overlap counted: {stats:?}");
    // Every group flowed through: one output row per distinct key.
    let rows: usize = res.buffer(1).unwrap().iter().map(|c| c.num_rows()).sum();
    assert_eq!(rows, n, "expected one group per distinct key");
    // AggExpr goes through the real merger: no merge task saw all groups.
    assert!(stats.merge_tasks >= 2);
}

// ------------------------------------------------------------- parity

/// Build the two-pipeline join workload used for parity runs.
fn join_pipelines() -> Vec<PipelinePlan> {
    let build = table("b", (0..100).collect(), (0..100).map(|x| x * 10).collect());
    let probe = table("p", (0..300).map(|i| i % 120).collect(), (0..300).collect());
    let p1 = PipelinePlan {
        label: "build".into(),
        source: SourceSpec::Table(build),
        ops: vec![],
        sink: SinkSpec::HashBuild {
            ht_id: 0,
            key_cols: vec![0],
            blooms: vec![],
        },
        intermediate: true,
        route: RouteMode::Radix,
        sink_schema: two_col_schema(),
    };
    let p2 = PipelinePlan {
        label: "probe".into(),
        source: SourceSpec::Table(probe),
        ops: vec![OpSpec::JoinProbe {
            ht_id: 0,
            key_cols: vec![0],
            build_output_cols: vec![1],
        }],
        sink: SinkSpec::Buffer {
            buf_id: 0,
            blooms: vec![],
        },
        intermediate: false,
        route: RouteMode::Radix,
        sink_schema: Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
            Field::new("bv", DataType::Int64),
        ]),
    };
    vec![p1, p2]
}

/// Global and Scoped produce identical result multisets across the
/// `partition_count × worker-count` matrix; with `threads == 1` the chunk
/// order is bit-identical too (ordered-chain determinism).
#[test]
fn global_matches_scoped_across_partition_matrix() {
    let run = |kind: SchedulerKind, partitions: usize, workers: usize| {
        let ctx = ExecContext::new()
            .with_scheduler(kind)
            .with_workers(workers)
            .with_partitions(partitions);
        let mut exec = Executor::new(ctx, 1, 0, 1);
        exec.run_dag(&join_pipelines(), workers).unwrap();
        let mut rows: Vec<Vec<ScalarValue>> = exec
            .buffer(0)
            .unwrap()
            .iter()
            .flat_map(|c| c.rows())
            .collect();
        rows.sort_by_key(|r| (r[0].as_i64(), r[1].as_i64(), r[2].as_i64()));
        (rows, exec.ctx.metrics.summary())
    };
    let (base_rows, base_m) = run(SchedulerKind::Scoped, 1, 1);
    for partitions in [1usize, 2, 8] {
        for workers in [1usize, 2, 8] {
            let (rows, m) = run(SchedulerKind::Global, partitions, workers);
            assert_eq!(
                rows, base_rows,
                "global pc={partitions} workers={workers} differs"
            );
            // Deterministic totals: same tuples flowed through the same
            // operators under any scheduling.
            assert_eq!(m.hash_build_rows, base_m.hash_build_rows);
            assert_eq!(m.join_output_rows, base_m.join_output_rows);
            assert_eq!(m.output_rows, base_m.output_rows);
            let (srows, _) = run(SchedulerKind::Scoped, partitions, workers);
            assert_eq!(
                srows, base_rows,
                "scoped pc={partitions} workers={workers} differs"
            );
        }
    }
}

/// With `threads == 1` the global scheduler's ordered chains reproduce the
/// scoped scheduler's buffer *chunk order* exactly, not just the multiset.
#[test]
fn ordered_chains_are_bit_deterministic() {
    let run = |kind: SchedulerKind| {
        let ctx = ExecContext::new()
            .with_scheduler(kind)
            .with_workers(2)
            .with_partitions(4);
        let mut exec = Executor::new(ctx, 2, 0, 0);
        let t = table("t", (0..500).collect(), (0..500).collect());
        let p0 = collect_pipeline(SourceSpec::Table(t), vec![], 0);
        let p1 = collect_pipeline(SourceSpec::Buffer(0), vec![], 1);
        exec.run_dag(&[p0, p1], 2).unwrap();
        let chunks = exec.buffer(1).unwrap();
        chunks
            .iter()
            .flat_map(|c| c.rows())
            .map(|r| r[0].as_i64().unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(SchedulerKind::Global), run(SchedulerKind::Scoped));
}

/// `run_physical` (scoped driver) merges partitioned sinks on its own
/// morsel workers — sanity-check it end to end with several thread counts.
#[test]
fn scoped_driver_merges_on_morsel_workers() {
    for threads in [1usize, 2, 4] {
        let ctx = ExecContext::new().with_threads(threads).with_partitions(4);
        let res = Resources::with_partitions(1, 0, 0, 4);
        let t = table("t", (0..1000).collect(), (0..1000).collect());
        let phys = collect_pipeline(SourceSpec::Table(t), vec![], 0).lower();
        run_physical(&phys, &ctx, &res).unwrap();
        let rows: usize = res.buffer(0).unwrap().iter().map(|c| c.num_rows()).sum();
        assert_eq!(rows, 1000, "threads={threads}");
        let s = ctx.metrics.summary();
        assert_eq!(s.merge_tasks, 4, "threads={threads}");
    }
}
