//! Property tests for the type-specialized aggregation fast path: the
//! fixed-key (packed `u64`/`u128`) group tables must be *byte-identical* to
//! the generic encoded-key tables over random `Int64`/`Bool` keys with
//! NULLs, at every partition count × worker count, including the `i64`
//! extremes — and the metrics must show which path ran.

use proptest::prelude::*;
use rpt_common::{DataChunk, DataType, Field, ScalarValue, Schema, Vector};
use rpt_exec::operators::AggregateFactory;
use rpt_exec::{AggExpr, AggFunc, ExecContext, Expr, Resources, SinkFactory};

fn out_schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("b", DataType::Bool),
        Field::new("c", DataType::Int64),
        Field::new("s", DataType::Int64),
        Field::new("mn", DataType::Int64),
        Field::new("mx", DataType::Int64),
        Field::new("av", DataType::Float64),
    ])
}

fn factory() -> AggregateFactory {
    AggregateFactory::new(
        0,
        vec![0, 1],
        vec![
            AggExpr::count_star("c"),
            AggExpr {
                func: AggFunc::Sum,
                input: Some(Expr::col(2)),
                alias: "s".into(),
            },
            AggExpr {
                func: AggFunc::Min,
                input: Some(Expr::col(2)),
                alias: "mn".into(),
            },
            AggExpr {
                func: AggFunc::Max,
                input: Some(Expr::col(2)),
                alias: "mx".into(),
            },
            AggExpr {
                func: AggFunc::Avg,
                input: Some(Expr::col(2)),
                alias: "av".into(),
            },
        ],
        vec![DataType::Int64, DataType::Bool, DataType::Int64],
        out_schema(),
        vec![],
    )
}

/// `(key, bool-flag, value)` chunks with NULLs derived from the key stream
/// (`k % 9 == 0` → NULL key, `k % 7 == 0` → NULL flag, `k % 5 == 0` → NULL
/// value), dealt round-robin to `workers`.
fn worker_chunks(keys: &[i64], chunk_size: usize, workers: usize) -> Vec<Vec<DataChunk>> {
    let mut per_worker: Vec<Vec<DataChunk>> = vec![Vec::new(); workers];
    for (i, ck) in keys.chunks(chunk_size.max(1)).enumerate() {
        let mut kv = Vector::new_empty(DataType::Int64);
        let mut bv = Vector::new_empty(DataType::Bool);
        let mut vv = Vector::new_empty(DataType::Int64);
        for (j, &k) in ck.iter().enumerate() {
            kv.push(&if k % 9 == 0 {
                ScalarValue::Null
            } else {
                ScalarValue::Int64(k)
            })
            .unwrap();
            bv.push(&if k % 7 == 0 {
                ScalarValue::Null
            } else {
                ScalarValue::Bool(k % 2 == 0)
            })
            .unwrap();
            vv.push(&if k % 5 == 0 {
                ScalarValue::Null
            } else {
                ScalarValue::Int64((i * chunk_size + j) as i64 - 20)
            })
            .unwrap();
        }
        per_worker[i % workers].push(DataChunk::new(vec![kv, bv, vv]));
    }
    per_worker
}

/// Drive the sink the way the pipeline driver does (one state per worker,
/// then the partitioned merge or serial Combine+Finalize) and return every
/// published row in partition order.
fn run(
    fast: bool,
    partitions: usize,
    per_worker: Vec<Vec<DataChunk>>,
) -> (Vec<Vec<ScalarValue>>, ExecContext) {
    let factory = factory();
    let ctx = ExecContext::new()
        .with_partitions(partitions)
        .with_agg_fast(fast);
    let res = Resources::with_partitions(1, 0, 0, partitions);
    let mut states = Vec::new();
    for chunks in per_worker {
        let mut s = factory.make(&ctx).unwrap();
        for c in chunks {
            s.sink(c, &ctx).unwrap();
        }
        states.push(s);
    }
    if factory.partitioned_merge(&ctx) {
        factory
            .merge_partitioned("test", states, &ctx, &res)
            .unwrap();
    } else {
        let mut it = states.into_iter();
        let mut merged = it.next().expect("at least one worker");
        for s in it {
            merged.combine(s).unwrap();
        }
        merged.finalize(&res).unwrap();
    }
    let rows: Vec<Vec<ScalarValue>> = res
        .buffer(0)
        .unwrap()
        .iter()
        .flat_map(|c| c.rows())
        .collect();
    (rows, ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fast path must be *byte-identical* to the generic path: same
    /// rows in the same order (identical routing hashes → identical
    /// partition contents → identical encoded-key sort), across random
    /// partition counts and worker counts, with NULLs in keys and values.
    #[test]
    fn fast_path_is_byte_identical_to_generic(
        keys in proptest::collection::vec(-40i64..40, 1..150),
        chunk_size in 1usize..50,
        pc_exp in 0u32..4,
        workers in 1usize..4,
    ) {
        let partitions = 1usize << pc_exp;
        let (generic, gctx) = run(false, partitions, worker_chunks(&keys, chunk_size, workers));
        let (fast, fctx) = run(true, partitions, worker_chunks(&keys, chunk_size, workers));
        prop_assert_eq!(&generic, &fast, "fast vs generic rows differ");
        prop_assert!(!generic.is_empty());

        // The metrics record which table implementation consumed chunks.
        let (g, f) = (gctx.metrics.summary(), fctx.metrics.summary());
        prop_assert!(g.agg_generic_chunks > 0 && g.agg_fast_path_chunks == 0,
            "generic run counted fast={} generic={}", g.agg_fast_path_chunks, g.agg_generic_chunks);
        prop_assert!(f.agg_fast_path_chunks > 0 && f.agg_generic_chunks == 0,
            "fast run counted fast={} generic={}", f.agg_fast_path_chunks, f.agg_generic_chunks);
    }
}

/// The `i64` extremes pack, group, and finalize identically on both paths
/// (MIN/MAX/−1/0 exercise every bit of the 64-bit value field).
#[test]
fn extreme_keys_are_byte_identical() {
    let keys = vec![
        i64::MAX,
        i64::MIN,
        -1,
        0,
        1,
        i64::MAX,
        i64::MIN,
        i64::MAX - 1,
        i64::MIN + 1,
        0,
    ];
    for partitions in [1usize, 2, 8] {
        for workers in [1usize, 2] {
            let (generic, _) = run(false, partitions, worker_chunks(&keys, 3, workers));
            let (fast, _) = run(true, partitions, worker_chunks(&keys, 3, workers));
            assert_eq!(generic, fast, "pc={partitions} w={workers}");
        }
    }
}

/// SUM overflow at `i64::MAX` is an `Error::Exec` through the sink on the
/// fast path too (checked adds survive the columnar accumulators).
#[test]
fn fast_path_sink_surfaces_sum_overflow() {
    for fast in [false, true] {
        let factory = AggregateFactory::new(
            0,
            vec![0],
            vec![AggExpr {
                func: AggFunc::Sum,
                input: Some(Expr::col(1)),
                alias: "s".into(),
            }],
            vec![DataType::Int64, DataType::Int64],
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("s", DataType::Int64),
            ]),
            vec![],
        );
        let ctx = ExecContext::new().with_agg_fast(fast);
        let mut sink = factory.make(&ctx).unwrap();
        sink.sink(
            DataChunk::new(vec![
                Vector::from_i64(vec![3, 3]),
                Vector::from_i64(vec![i64::MAX, 0]),
            ]),
            &ctx,
        )
        .unwrap();
        let err = sink
            .sink(
                DataChunk::new(vec![Vector::from_i64(vec![3]), Vector::from_i64(vec![1])]),
                &ctx,
            )
            .unwrap_err();
        assert!(err.to_string().contains("SUM"), "fast={fast}: {err}");
    }
}
