//! Property tests for the hash-partitioned sinks: random chunk streams ×
//! random partition counts × random worker counts must produce exactly the
//! unpartitioned baseline's contents (as multisets), route every row to the
//! partition its key hashes to, and build bit-identical Bloom filters.

use proptest::prelude::*;
use rpt_common::hash::hash_i64;
use rpt_common::{DataChunk, DataType, Field, Partitioner, Schema, Vector};
use rpt_exec::operators::buffer::BufferSinkFactory;
use rpt_exec::operators::hash_build::HashBuildFactory;
use rpt_exec::operators::AggregateFactory;
use rpt_exec::{AggExpr, AggFunc, BloomSink, ExecContext, Expr, Resources, SinkFactory};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ])
}

/// `(key, row id)` chunks of `chunk_size`, dealt round-robin to `workers`.
fn worker_chunks(keys: &[i64], chunk_size: usize, workers: usize) -> Vec<Vec<DataChunk>> {
    let mut per_worker: Vec<Vec<DataChunk>> = vec![Vec::new(); workers];
    for (i, ck) in keys.chunks(chunk_size.max(1)).enumerate() {
        let vals: Vec<i64> = (0..ck.len()).map(|j| (i * chunk_size + j) as i64).collect();
        per_worker[i % workers].push(DataChunk::new(vec![
            Vector::from_i64(ck.to_vec()),
            Vector::from_i64(vals),
        ]));
    }
    per_worker
}

/// Drive a sink the way the pipeline driver does: one state per worker,
/// then the partitioned parallel merge (or serial Combine + Finalize).
fn run_sink(
    factory: &dyn SinkFactory,
    ctx: &ExecContext,
    res: &Resources,
    per_worker: Vec<Vec<DataChunk>>,
) {
    let mut states = Vec::new();
    for chunks in per_worker {
        let mut s = factory.make(ctx).unwrap();
        for c in chunks {
            s.sink(c, ctx).unwrap();
        }
        states.push(s);
    }
    if factory.partitioned_merge(ctx) {
        factory.merge_partitioned("test", states, ctx, res).unwrap();
    } else {
        let mut it = states.into_iter();
        let mut merged = it.next().expect("at least one worker");
        for s in it {
            merged.combine(s).unwrap();
        }
        merged.finalize(res).unwrap();
    }
}

/// Sorted multiset of `(key, val)` rows across chunks.
fn row_multiset<'a>(chunks: impl Iterator<Item = &'a DataChunk>) -> Vec<(i64, i64)> {
    let mut rows: Vec<(i64, i64)> = chunks
        .flat_map(|c| {
            c.rows()
                .into_iter()
                .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        })
        .collect();
    rows.sort_unstable();
    rows
}

fn bloom_spec() -> BloomSink {
    BloomSink {
        filter_id: 0,
        key_cols: vec![0],
        expected_keys: 256,
        fpr: 0.02,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Partitioned `BufferSink` (CreateBF): contents equal the
    /// unpartitioned baseline as a multiset, every row lands in the
    /// partition its key hashes to, and the published Bloom filter is
    /// bit-identical to the baseline's.
    #[test]
    fn partitioned_buffer_sink_matches_baseline(
        keys in proptest::collection::vec(-40i64..40, 1..150),
        chunk_size in 1usize..50,
        pc_exp in 1u32..4,
        workers in 1usize..4,
    ) {
        let partitions = 1usize << pc_exp;
        let factory = BufferSinkFactory::new(0, schema(), vec![bloom_spec()]);

        let base_ctx = ExecContext::new().with_partitions(1);
        let base_res = Resources::with_partitions(1, 1, 0, 1);
        run_sink(&factory, &base_ctx, &base_res, worker_chunks(&keys, chunk_size, 1));

        let ctx = ExecContext::new().with_threads(workers).with_partitions(partitions);
        let res = Resources::with_partitions(1, 1, 0, partitions);
        run_sink(&factory, &ctx, &res, worker_chunks(&keys, chunk_size, workers));

        // Multiset parity of the whole buffer.
        let base = row_multiset(base_res.buffer(0).unwrap().iter().map(|c| c.as_ref()));
        let part = row_multiset(res.buffer(0).unwrap().iter().map(|c| c.as_ref()));
        prop_assert_eq!(&base, &part);
        prop_assert_eq!(base.len(), keys.len());

        // Radix routing: every row sits in the partition its key hashes to.
        let partitioner = Partitioner::new(partitions);
        for p in 0..partitions {
            for chunk in res.buffer_partition(0, p).unwrap().iter() {
                for row in chunk.rows() {
                    let key = row[0].as_i64().unwrap();
                    prop_assert_eq!(partitioner.of_hash(hash_i64(key)), p,
                        "key {} in wrong partition {}", key, p);
                }
            }
        }

        // The CreateBF filter is bit-identical regardless of partitioning.
        let base_filter = base_res.filter(0).unwrap();
        let part_filter = res.filter(0).unwrap();
        prop_assert_eq!(base_filter.words(), part_filter.words());
        prop_assert_eq!(base_filter.num_inserted(), part_filter.num_inserted());
    }

    /// Partitioned `AggregateSink`: the merged GROUP BY result equals the
    /// single-partition path's as a multiset of `(key, SUM, COUNT)` groups,
    /// every group is sealed in the partition its key hashes to, and no
    /// merge task covers the full group set once groups spread.
    #[test]
    fn partitioned_aggregate_sink_matches_baseline(
        keys in proptest::collection::vec(-40i64..40, 1..150),
        chunk_size in 1usize..50,
        pc_exp in 1u32..4,
        workers in 1usize..4,
    ) {
        let partitions = 1usize << pc_exp;
        let out_schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("s", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let factory = AggregateFactory::new(
            0,
            vec![0],
            vec![
                AggExpr {
                    func: AggFunc::Sum,
                    input: Some(Expr::col(1)),
                    alias: "s".into(),
                },
                AggExpr::count_star("c"),
            ],
            vec![DataType::Int64, DataType::Int64],
            out_schema,
            vec![],
        );

        let base_ctx = ExecContext::new().with_partitions(1);
        let base_res = Resources::with_partitions(1, 0, 0, 1);
        run_sink(&factory, &base_ctx, &base_res, worker_chunks(&keys, chunk_size, 1));

        let ctx = ExecContext::new().with_threads(workers).with_partitions(partitions);
        let res = Resources::with_partitions(1, 0, 0, partitions);
        run_sink(&factory, &ctx, &res, worker_chunks(&keys, chunk_size, workers));

        let groups = |chunks: &[std::sync::Arc<DataChunk>]| {
            let mut rows: Vec<(i64, i64, i64)> = chunks
                .iter()
                .flat_map(|c| {
                    c.rows().into_iter().map(|r| {
                        (
                            r[0].as_i64().unwrap(),
                            r[1].as_i64().unwrap(),
                            r[2].as_i64().unwrap(),
                        )
                    })
                })
                .collect();
            rows.sort_unstable();
            rows
        };
        let base = groups(&base_res.buffer(0).unwrap());
        let part = groups(&res.buffer(0).unwrap());
        prop_assert_eq!(&base, &part);
        let distinct: std::collections::HashSet<i64> = keys.iter().copied().collect();
        prop_assert_eq!(base.len(), distinct.len());
        prop_assert_eq!(base.iter().map(|&(_, _, c)| c).sum::<i64>(), keys.len() as i64);

        // Each group was merged and sealed in the partition its key
        // hashes to — the same radix the other partitioned sinks use.
        let partitioner = Partitioner::new(partitions);
        for p in 0..partitions {
            for chunk in res.buffer_partition(0, p).unwrap().iter() {
                for row in chunk.rows() {
                    let key = row[0].as_i64().unwrap();
                    prop_assert_eq!(partitioner.of_hash(hash_i64(key)), p,
                        "group {} in wrong partition {}", key, p);
                }
            }
        }

        // Merge accounting: one task per partition, and no task saw every
        // group (only checkable when the hash spread is certain).
        let m = ctx.metrics.summary();
        prop_assert_eq!(m.merge_tasks, partitions as u64);
        if distinct.len() >= 16 {
            prop_assert!(m.merge_max_task_rows < distinct.len() as u64,
                "a merge task covered all {} groups", distinct.len());
        }
    }

    /// Partitioned `HashBuildSink`: the published table holds the same rows
    /// (each inside the partition its key hashes to), and both hash-join
    /// probes and semi-join probes agree with the unpartitioned baseline.
    #[test]
    fn partitioned_hash_build_matches_baseline(
        keys in proptest::collection::vec(-40i64..40, 1..150),
        probes in proptest::collection::vec(-60i64..60, 1..100),
        chunk_size in 1usize..50,
        pc_exp in 1u32..4,
        workers in 1usize..4,
    ) {
        let partitions = 1usize << pc_exp;
        let factory = HashBuildFactory::new(0, vec![0], schema(), vec![]);

        let base_ctx = ExecContext::new().with_partitions(1);
        let base_res = Resources::with_partitions(0, 0, 1, 1);
        run_sink(&factory, &base_ctx, &base_res, worker_chunks(&keys, chunk_size, 1));

        let ctx = ExecContext::new().with_threads(workers).with_partitions(partitions);
        let res = Resources::with_partitions(0, 0, 1, partitions);
        run_sink(&factory, &ctx, &res, worker_chunks(&keys, chunk_size, workers));

        let base_ht = base_res.hash_table(0).unwrap();
        let ht = res.hash_table(0).unwrap();
        prop_assert_eq!(ht.num_partitions(), partitions);
        prop_assert_eq!(ht.num_rows(), keys.len());

        // Build rows as multisets + per-partition routing.
        let partitioner = Partitioner::new(partitions);
        let mut part_rows = Vec::new();
        for p in 0..partitions {
            let data = &ht.partition(p).data;
            for row in data.rows() {
                let key = row[0].as_i64().unwrap();
                prop_assert_eq!(partitioner.of_hash(hash_i64(key)), p,
                    "build key {} in wrong partition {}", key, p);
                part_rows.push((key, row[1].as_i64().unwrap()));
            }
        }
        part_rows.sort_unstable();
        prop_assert_eq!(part_rows, row_multiset(std::iter::once(&base_ht.partition(0).data)));

        // Probe parity: same (probe key, build value) match multiset.
        let probe = DataChunk::new(vec![Vector::from_i64(probes.clone())]);
        let matches = |t: &rpt_exec::PartitionedHashTable| {
            let (mut pr, mut br) = (vec![], vec![]);
            t.probe(&probe, &[0], &mut pr, &mut br);
            let vals = t.gather(1, &br);
            let mut out: Vec<(i64, i64)> = pr
                .iter()
                .enumerate()
                .map(|(i, &p)| (probes[p as usize], vals.get(i).as_i64().unwrap()))
                .collect();
            out.sort_unstable();
            out
        };
        prop_assert_eq!(matches(&base_ht), matches(&ht));

        // Semi-probe parity (selection order included).
        prop_assert_eq!(base_ht.semi_probe(&probe, &[0]), ht.semi_probe(&probe, &[0]));
    }
}
