//! Property tests for the work-stealing scheduler × the Preserve sink
//! route: over random key streams and the full
//! `partition_count {1..8} × workers {1..4}` matrix, a DAG whose
//! consumers take partition-preserving routes under the stealing
//! scheduler must produce exactly what the global FIFO produces with
//! radix re-partitioning — and with `workers == 1` (the scheduler's
//! ordered chains, `threads == 1` throughout) the output must be
//! bit-identical, chunk order included.

use proptest::prelude::*;
use rpt_common::{DataType, Field, ScalarValue, Schema, Vector};
use rpt_exec::{
    AggExpr, AggFunc, BloomSink, ExecContext, Executor, Expr, OpSpec, PipelinePlan, RouteMode,
    SchedulerKind, SinkSpec, SourceSpec,
};
use rpt_storage::Table;
use std::sync::Arc;

fn in_schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Int64),
    ])
}

fn agg_schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("c", DataType::Int64),
        Field::new("s", DataType::Int64),
    ])
}

/// The three-pipeline DAG the planner's elision pass targets: a CreateBF
/// buffer distributed on the key column, a grouped aggregate consuming it
/// on the same key, and a CreateBF consumer of the aggregate's output —
/// both consumers take `route` (the planner marks them `Preserve` when
/// elision applies; `Radix` is the general path).
fn pipelines(keys: &[i64], route: RouteMode) -> Vec<PipelinePlan> {
    let t = Arc::new(
        Table::new(
            "t",
            in_schema(),
            vec![
                Vector::from_i64(keys.to_vec()),
                Vector::from_i64((0..keys.len() as i64).collect()),
            ],
        )
        .unwrap(),
    );
    let bloom = |filter_id: usize| BloomSink {
        filter_id,
        key_cols: vec![0],
        expected_keys: 256,
        fpr: 0.02,
    };
    let p0 = PipelinePlan {
        label: "createbf".into(),
        source: SourceSpec::Table(t),
        ops: vec![],
        sink: SinkSpec::Buffer {
            buf_id: 0,
            blooms: vec![bloom(0)],
        },
        intermediate: true,
        route: RouteMode::Radix,
        sink_schema: in_schema(),
    };
    let p1 = PipelinePlan {
        label: "aggregate".into(),
        source: SourceSpec::Buffer(0),
        ops: vec![],
        sink: SinkSpec::Aggregate {
            buf_id: 1,
            group_cols: vec![0],
            aggs: vec![
                AggExpr::count_star("c"),
                AggExpr {
                    func: AggFunc::Sum,
                    input: Some(Expr::col(1)),
                    alias: "s".into(),
                },
            ],
            input_types: vec![DataType::Int64, DataType::Int64],
            output_schema: agg_schema(),
            key_dicts: vec![],
        },
        intermediate: true,
        route,
        sink_schema: agg_schema(),
    };
    // Aggregate output is [group key, aggs...]: still distributed on
    // column 0, so a keyed buffer consumer stays elision-eligible.
    let p2 = PipelinePlan {
        label: "consume".into(),
        source: SourceSpec::Buffer(1),
        ops: vec![OpSpec::Project(vec![
            Expr::col(0),
            Expr::col(1),
            Expr::col(2),
        ])],
        sink: SinkSpec::Buffer {
            buf_id: 2,
            blooms: vec![bloom(1)],
        },
        intermediate: false,
        route,
        sink_schema: agg_schema(),
    };
    vec![p0, p1, p2]
}

/// Full row sequence of buffer 2 (partition concatenation order) plus the
/// run's elided-chunk count.
fn run(
    keys: &[i64],
    sched: SchedulerKind,
    route: RouteMode,
    partitions: usize,
    workers: usize,
) -> (Vec<Vec<ScalarValue>>, u64) {
    let ctx = ExecContext::new()
        .with_scheduler(sched)
        .with_workers(workers)
        .with_partitions(partitions);
    let mut exec = Executor::new(ctx, 3, 2, 0);
    exec.run_dag(&pipelines(keys, route), workers.max(2))
        .unwrap();
    let rows: Vec<Vec<ScalarValue>> = exec
        .buffer(2)
        .unwrap()
        .iter()
        .flat_map(|c| c.rows())
        .collect();
    let m = exec.ctx.metrics.summary();
    (rows, m.repartition_elided_chunks)
}

fn sorted(mut rows: Vec<Vec<ScalarValue>>) -> Vec<Vec<ScalarValue>> {
    rows.sort_by_key(|r| (r[0].as_i64(), r[1].as_i64(), r[2].as_i64()));
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stealing + Preserve ≡ global FIFO + radix: identical group rows
    /// (exact sequence at `workers == 1`, multiset above), no elided
    /// chunks on any radix leg, and elision engaged whenever the plan is
    /// actually partitioned.
    #[test]
    fn stealing_preserve_matches_fifo_radix(
        keys in proptest::collection::vec(-60i64..60, 1..250),
        partitions in 1usize..=8,
        workers in 1usize..=4,
    ) {
        let (base, base_elided) =
            run(&keys, SchedulerKind::Global, RouteMode::Radix, partitions, workers);
        prop_assert_eq!(base_elided, 0, "radix leg elided chunks");

        let legs = [
            (SchedulerKind::Stealing, RouteMode::Radix),
            (SchedulerKind::Global, RouteMode::Preserve),
            (SchedulerKind::Stealing, RouteMode::Preserve),
        ];
        for (sched, route) in legs {
            let (rows, elided) = run(&keys, sched, route, partitions, workers);
            match route {
                RouteMode::Radix => prop_assert_eq!(elided, 0, "{sched:?} radix elided"),
                RouteMode::Preserve => {
                    // Partitioned runs must take the preserved route at
                    // least once per consumer (single-partition plans
                    // legitimately fall back to plain `sink`).
                    if partitions > 1 {
                        prop_assert!(elided > 0, "{sched:?} preserve never elided");
                    }
                }
            }
            if workers == 1 {
                prop_assert_eq!(
                    &rows, &base,
                    "{sched:?}/{route:?} pc={} differs bit-for-bit", partitions
                );
            } else {
                prop_assert_eq!(
                    sorted(rows), sorted(base.clone()),
                    "{sched:?}/{route:?} pc={} workers={} differs", partitions, workers
                );
            }
        }
    }

    /// Repeatability: the stealing scheduler with preserved routes is
    /// bit-deterministic under ordered chains (`threads == 1`,
    /// `workers == 1`) — two runs of the same config emit the same bytes.
    #[test]
    fn stealing_preserve_is_deterministic_single_threaded(
        keys in proptest::collection::vec(-60i64..60, 1..250),
        partitions in 1usize..=8,
    ) {
        let (a, _) = run(&keys, SchedulerKind::Stealing, RouteMode::Preserve, partitions, 1);
        let (b, _) = run(&keys, SchedulerKind::Stealing, RouteMode::Preserve, partitions, 1);
        prop_assert_eq!(a, b, "pc={} not deterministic", partitions);
    }
}
