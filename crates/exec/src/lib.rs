//! # rpt-exec
//!
//! A push-based vectorized execution engine reproducing the DuckDB execution
//! model the paper integrates with (§4.1, Figure 3):
//!
//! * queries run as a sequence of **pipelines**; each pipeline has a
//!   *source* (`GetData`), a chain of streaming *operators* (`Execute`), and
//!   a *sink* (`Sink`/`Combine`/`Finalize`) that is a pipeline breaker;
//! * tuples flow in 2048-row data chunks with selection vectors;
//! * the two new RPT operators are implemented here: **CreateBF** (a sink
//!   that buffers chunks and builds Bloom filters, then acts as the source
//!   of the next pipeline) and **ProbeBF** (a streaming operator that probes
//!   a Bloom filter and refines the chunk's selection vector);
//! * morsel-style multi-threaded execution (§5.3) with thread-local sink
//!   state merged in `Combine`/`Finalize`;
//! * a work-budget cancellation mechanism standing in for the paper's
//!   `1000 × t_opt` timeout.
//!
//! The planner in `rpt-core` compiles logical RPT plans into
//! [`pipeline::PipelinePlan`]s. Those specs *lower* onto the physical
//! operator traits in [`operators`] (`Source`/`Operator`/`Sink`), and the
//! DAG [`scheduler`] executes pipelines concurrently whenever their
//! buffer/filter/hash-table dependencies allow, via
//! [`pipeline::Executor::run_dag`].

pub mod aggregate;
pub mod context;
pub mod expr;
pub mod global;
pub mod hash_table;
pub mod operators;
pub mod pipeline;
pub mod scheduler;
pub mod wcoj;

pub use aggregate::{AggState, AggUpdateStats, AggregateState, ChunkKeys, KeyLayout};
pub use context::{
    agg_fast_from_env, default_worker_count, memory_budget_from_env, plan_verify_from_env,
    repartition_elide_from_env, spill_encoding_from_env, spill_prefetch_from_env,
    storage_encoding_from_env, utilization_pct, ExecContext, Metrics, MetricsSummary,
    SchedulerKind, VerifyMode,
};
pub use expr::{
    prunable_conjuncts, prunable_utf8_conjuncts, AggExpr, AggFunc, ArithOp, CmpOp, Expr,
};
pub use global::{run_physical_global, GlobalStats};
pub use hash_table::{BuildRef, JoinHashTable, PartitionedHashTable};
pub use operators::{
    cmp_scalar_rows, expand_partition_grains, AccessLog, ChunkList, Operator, PartitionMerger,
    ResourceId, Resources, ScanPrune, Sink, SinkFactory, SortKey, SortSink, SortSinkFactory,
    Source,
};
pub use pipeline::{
    BloomSink, Executor, OpSpec, PhysicalPipeline, PipelinePlan, RouteMode, SinkSpec, SourceSpec,
};
pub use scheduler::{run_dag, NodeDeps, SchedulerStats};
pub use wcoj::{generic_join, WcojRelation};
