//! Join hash tables (build side of hash joins and exact semi-joins), and
//! their hash-partitioned aggregate: a [`PartitionedHashTable`] holds one
//! [`JoinHashTable`] per radix partition so builds can run per-partition in
//! parallel, and routes every probe row to the single partition whose table
//! can contain its matches (build and probe share the [`Partitioner`]).

use rpt_common::hash::hash_columns;
use rpt_common::{ColumnData, DataChunk, DataType, Partitioner, Result, Vector};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// The keys are already avalanche-mixed by `rpt_common::hash`, so the map
/// uses an identity hasher.
#[derive(Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only accepts u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// `u64 → V` map keyed by an already-mixed hash (shared with the
/// aggregation group table, whose group-key hashes are pre-avalanched the
/// same way).
pub type IdentityMap<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

/// A materialized build side: all build rows (flattened) plus a hash → row
/// index multimap on the key columns.
pub struct JoinHashTable {
    /// Flattened build-side rows (all columns).
    pub data: DataChunk,
    pub key_cols: Vec<usize>,
    map: IdentityMap<Vec<u32>>,
}

/// Typed row-vs-row equality on one column (NULLs never equal).
#[inline]
fn values_equal(a: &Vector, ia: usize, b: &Vector, ib: usize) -> bool {
    if !a.is_valid(ia) || !b.is_valid(ib) {
        return false;
    }
    // Dictionary-backed string vectors: a same-dictionary pair compares
    // codes directly (the Int64 payload arm below); any other mix with a
    // dictionary side resolves both strings.
    match (&a.dict, &b.dict) {
        (None, None) => {}
        (Some(x), Some(y)) if Arc::ptr_eq(x, y) => {}
        _ => {
            if a.data_type() != DataType::Utf8 || b.data_type() != DataType::Utf8 {
                return false;
            }
            return a.utf8_at(ia) == b.utf8_at(ib);
        }
    }
    match (&a.data, &b.data) {
        (ColumnData::Int64(x), ColumnData::Int64(y)) => x[ia] == y[ib],
        (ColumnData::Float64(x), ColumnData::Float64(y)) => x[ia] == y[ib],
        (ColumnData::Utf8(x), ColumnData::Utf8(y)) => x[ia] == y[ib],
        (ColumnData::Bool(x), ColumnData::Bool(y)) => x[ia] == y[ib],
        _ => false,
    }
}

/// Gather probe key columns over the logical rows of a chunk.
fn gather_probe_keys(chunk: &DataChunk, probe_keys: &[usize]) -> Vec<Vector> {
    probe_keys
        .iter()
        .map(|&k| match &chunk.selection {
            Some(sel) => chunk.columns[k].take(sel),
            None => chunk.columns[k].clone(),
        })
        .collect()
}

impl JoinHashTable {
    /// Build from pre-flattened chunks.
    pub fn build(chunks: &[DataChunk], key_cols: Vec<usize>) -> Result<JoinHashTable> {
        // Concatenate.
        let mut data = match chunks.first() {
            Some(first) => {
                let flat = first.flattened();
                let mut acc = flat;
                for c in &chunks[1..] {
                    acc.append(c)?;
                }
                acc
            }
            None => DataChunk::default(),
        };
        data.flatten();
        let n = data.num_rows();
        let mut map: IdentityMap<Vec<u32>> = IdentityMap::default();
        if n > 0 {
            let keys: Vec<&Vector> = key_cols.iter().map(|&k| &data.columns[k]).collect();
            let hashes = hash_columns(&keys, n);
            for (row, &h) in hashes.iter().enumerate() {
                if h == u64::MAX {
                    continue; // NULL key: never matches
                }
                map.entry(h).or_default().push(row as u32);
            }
        }
        Ok(JoinHashTable {
            data,
            key_cols,
            map,
        })
    }

    pub fn num_rows(&self) -> usize {
        self.data.num_rows()
    }

    /// Emit every build row matching logical probe row `row` (whose gathered
    /// key vectors and row hash are precomputed).
    #[inline]
    fn matches_into(&self, gathered: &[Vector], row: usize, hash: u64, out: &mut impl FnMut(u32)) {
        if let Some(cands) = self.map.get(&hash) {
            for &b in cands {
                let ok = self
                    .key_cols
                    .iter()
                    .zip(gathered.iter())
                    .all(|(&kc, pv)| values_equal(pv, row, &self.data.columns[kc], b as usize));
                if ok {
                    out(b);
                }
            }
        }
    }

    /// Does logical probe row `row` have at least one match?
    #[inline]
    fn has_match(&self, gathered: &[Vector], row: usize, hash: u64) -> bool {
        match self.map.get(&hash) {
            Some(cands) => cands.iter().any(|&b| {
                self.key_cols
                    .iter()
                    .zip(gathered.iter())
                    .all(|(&kc, pv)| values_equal(pv, row, &self.data.columns[kc], b as usize))
            }),
            None => false,
        }
    }

    /// Hash-join probe: for each logical row of `chunk` (keyed on
    /// `probe_keys`), emit one `(logical_probe_row, build_row)` pair per
    /// match. Duplicates on the build side produce multiple pairs — this is
    /// where non-robust join orders blow up.
    pub fn probe(
        &self,
        chunk: &DataChunk,
        probe_keys: &[usize],
        probe_out: &mut Vec<u32>,
        build_out: &mut Vec<u32>,
    ) {
        let n = chunk.num_rows();
        if n == 0 || self.num_rows() == 0 {
            return;
        }
        let gathered = gather_probe_keys(chunk, probe_keys);
        let refs: Vec<&Vector> = gathered.iter().collect();
        let hashes = hash_columns(&refs, n);
        for (row, &h) in hashes.iter().enumerate() {
            if h == u64::MAX {
                continue;
            }
            self.matches_into(&gathered, row, h, &mut |b| {
                probe_out.push(row as u32);
                build_out.push(b);
            });
        }
    }

    /// Exact semi-join probe: logical rows of `chunk` with ≥ 1 match
    /// (no duplication). This is the hash-based semi-join of the classic
    /// Yannakakis algorithm.
    pub fn semi_probe(&self, chunk: &DataChunk, probe_keys: &[usize]) -> Vec<u32> {
        let n = chunk.num_rows();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        let gathered = gather_probe_keys(chunk, probe_keys);
        let refs: Vec<&Vector> = gathered.iter().collect();
        let hashes = hash_columns(&refs, n);
        for (row, &h) in hashes.iter().enumerate() {
            if h == u64::MAX {
                continue;
            }
            if self.has_match(&gathered, row, h) {
                out.push(row as u32);
            }
        }
        out
    }
}

/// A match emitted by a partitioned probe: `(partition, build row within
/// that partition's table)`.
pub type BuildRef = (u32, u32);

/// One [`JoinHashTable`] per radix partition, with probes routed by the
/// same key hash the build side partitioned on. With one partition this
/// degenerates to a plain wrapped table (and keeps the fast paths).
pub struct PartitionedHashTable {
    parts: Vec<JoinHashTable>,
    partitioner: Partitioner,
}

impl PartitionedHashTable {
    /// Wrap an unpartitioned table (partition count 1).
    pub fn single(table: JoinHashTable) -> PartitionedHashTable {
        PartitionedHashTable {
            parts: vec![table],
            partitioner: Partitioner::new(1),
        }
    }

    /// Assemble from per-partition tables (the length must be the
    /// partition count the build side routed with: a power of two).
    pub fn from_parts(parts: Vec<JoinHashTable>) -> PartitionedHashTable {
        assert!(
            parts.len().is_power_of_two(),
            "partition count must be a power of two, got {}",
            parts.len()
        );
        let partitioner = Partitioner::new(parts.len());
        PartitionedHashTable { parts, partitioner }
    }

    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    pub fn partition(&self, part: usize) -> &JoinHashTable {
        &self.parts[part]
    }

    pub fn num_rows(&self) -> usize {
        self.parts.iter().map(JoinHashTable::num_rows).sum()
    }

    /// Hash-join probe (see [`JoinHashTable::probe`]): each probe row is
    /// routed to exactly one partition — the one its key hash maps to —
    /// so matches and multiplicities are identical to an unpartitioned
    /// probe over the union of the partitions.
    pub fn probe(
        &self,
        chunk: &DataChunk,
        probe_keys: &[usize],
        probe_out: &mut Vec<u32>,
        build_out: &mut Vec<BuildRef>,
    ) {
        let n = chunk.num_rows();
        if n == 0 || self.num_rows() == 0 {
            return;
        }
        // With one partition `of_hash` is constant 0, so this is exactly
        // the unpartitioned probe loop — no temporaries, no extra branch.
        let gathered = gather_probe_keys(chunk, probe_keys);
        let refs: Vec<&Vector> = gathered.iter().collect();
        let hashes = hash_columns(&refs, n);
        for (row, &h) in hashes.iter().enumerate() {
            if h == u64::MAX {
                continue;
            }
            let part = self.partitioner.of_hash(h) as u32;
            self.parts[part as usize].matches_into(&gathered, row, h, &mut |b| {
                probe_out.push(row as u32);
                build_out.push((part, b));
            });
        }
    }

    /// Exact semi-join probe (see [`JoinHashTable::semi_probe`]).
    pub fn semi_probe(&self, chunk: &DataChunk, probe_keys: &[usize]) -> Vec<u32> {
        if self.parts.len() == 1 {
            return self.parts[0].semi_probe(chunk, probe_keys);
        }
        let n = chunk.num_rows();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        let gathered = gather_probe_keys(chunk, probe_keys);
        let refs: Vec<&Vector> = gathered.iter().collect();
        let hashes = hash_columns(&refs, n);
        for (row, &h) in hashes.iter().enumerate() {
            if h == u64::MAX {
                continue;
            }
            if self.parts[self.partitioner.of_hash(h)].has_match(&gathered, row, h) {
                out.push(row as u32);
            }
        }
        out
    }

    /// Gather build-side column `col` for the given probe matches (the
    /// probe-side analogue of `Vector::take` across partitions). Stays
    /// vectorized: one bulk `take` per partition plus one permutation
    /// `take` to restore match order — no per-row scalar dispatch.
    pub fn gather(&self, col: usize, matches: &[BuildRef]) -> Vector {
        if self.parts.len() == 1 {
            let rows: Vec<u32> = matches.iter().map(|&(_, b)| b).collect();
            return self.parts[0].data.columns[col].take(&rows);
        }
        // Bucket the match indices per partition.
        let mut per_part: Vec<Vec<u32>> = vec![Vec::new(); self.parts.len()];
        for &(part, b) in matches {
            per_part[part as usize].push(b);
        }
        // Concatenate the per-partition bulk takes (partition-major)…
        let mut offsets = vec![0u32; self.parts.len()];
        let mut acc = 0u32;
        let mut concat = Vector::new_empty(self.parts[0].data.columns[col].data_type());
        for (p, idx) in per_part.iter().enumerate() {
            offsets[p] = acc;
            acc += idx.len() as u32;
            if !idx.is_empty() {
                concat
                    .append(&self.parts[p].data.columns[col].take(idx))
                    .expect("partition column types agree");
            }
        }
        // …then permute back into match order.
        let mut next = offsets;
        let perm: Vec<u32> = matches
            .iter()
            .map(|&(part, _)| {
                let pos = next[part as usize];
                next[part as usize] += 1;
                pos
            })
            .collect();
        concat.take(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::ScalarValue;

    fn build_chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![1, 2, 2, 3]),
            Vector::from_utf8(vec!["a".into(), "b".into(), "b2".into(), "c".into()]),
        ])
    }

    #[test]
    fn build_and_probe() {
        let ht = JoinHashTable::build(&[build_chunk()], vec![0]).unwrap();
        assert_eq!(ht.num_rows(), 4);
        let probe = DataChunk::new(vec![Vector::from_i64(vec![2, 5, 1])]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        // key 2 matches build rows 1 and 2; key 1 matches build row 0.
        assert_eq!(p, vec![0, 0, 2]);
        let mut bs = b.clone();
        bs.sort_unstable();
        assert_eq!(bs, vec![0, 1, 2]);
    }

    #[test]
    fn probe_respects_selection() {
        let ht = JoinHashTable::build(&[build_chunk()], vec![0]).unwrap();
        let mut probe = DataChunk::new(vec![Vector::from_i64(vec![2, 5, 1])]);
        probe.set_selection(vec![2]); // only the key 1 row, logical idx 0
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert_eq!(p, vec![0]);
        assert_eq!(b, vec![0]);
    }

    #[test]
    fn composite_keys() {
        let build = DataChunk::new(vec![
            Vector::from_i64(vec![1, 1, 2]),
            Vector::from_i64(vec![10, 20, 10]),
        ]);
        let ht = JoinHashTable::build(&[build], vec![0, 1]).unwrap();
        let probe = DataChunk::new(vec![
            Vector::from_i64(vec![1, 2, 1]),
            Vector::from_i64(vec![10, 10, 30]),
        ]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0, 1], &mut p, &mut b);
        assert_eq!(p, vec![0, 1]);
        assert_eq!(b, vec![0, 2]);
    }

    #[test]
    fn semi_probe_no_duplication() {
        let ht = JoinHashTable::build(&[build_chunk()], vec![0]).unwrap();
        let probe = DataChunk::new(vec![Vector::from_i64(vec![2, 5, 2])]);
        let sel = ht.semi_probe(&probe, &[0]);
        assert_eq!(sel, vec![0, 2]); // each matching row once
    }

    #[test]
    fn null_keys_never_match() {
        let mut keycol = Vector::new_empty(rpt_common::DataType::Int64);
        keycol.push(&ScalarValue::Int64(1)).unwrap();
        keycol.push(&ScalarValue::Null).unwrap();
        let ht = JoinHashTable::build(&[DataChunk::new(vec![keycol])], vec![0]).unwrap();
        let mut probe_key = Vector::new_empty(rpt_common::DataType::Int64);
        probe_key.push(&ScalarValue::Null).unwrap();
        probe_key.push(&ScalarValue::Int64(1)).unwrap();
        let probe = DataChunk::new(vec![probe_key]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert_eq!(p, vec![1]); // only the non-null key matches
        assert_eq!(b, vec![0]);
        assert_eq!(ht.semi_probe(&probe, &[0]), vec![1]);
    }

    #[test]
    fn empty_build_side() {
        let ht = JoinHashTable::build(&[], vec![0]).unwrap();
        assert_eq!(ht.num_rows(), 0);
        let probe = DataChunk::new(vec![Vector::from_i64(vec![1])]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert!(p.is_empty() && b.is_empty());
    }

    /// Partition build chunks by key hash, rebuild per-partition tables,
    /// and verify probes and semi-probes match the unpartitioned table.
    #[test]
    fn partitioned_probe_matches_unpartitioned() {
        use rpt_common::hash::hash_columns;

        let keys: Vec<i64> = (0..500).map(|i| i % 37).collect();
        let vals: Vec<i64> = (0..500).collect();
        let build = DataChunk::new(vec![Vector::from_i64(keys), Vector::from_i64(vals)]);
        let flat = JoinHashTable::build(std::slice::from_ref(&build), vec![0]).unwrap();

        let partitioner = Partitioner::new(8);
        let hashes = hash_columns(&[&build.columns[0]], build.num_rows());
        let split = partitioner.split_chunk(&build, &hashes);
        let parts: Vec<JoinHashTable> = split
            .into_iter()
            .map(|c| JoinHashTable::build(&c.into_iter().collect::<Vec<_>>(), vec![0]).unwrap())
            .collect();
        let pht = PartitionedHashTable::from_parts(parts);
        assert_eq!(pht.num_rows(), flat.num_rows());

        let probe = DataChunk::new(vec![Vector::from_i64((0..60).collect())]);
        let (mut fp, mut fb) = (vec![], vec![]);
        flat.probe(&probe, &[0], &mut fp, &mut fb);
        let (mut pp, mut pb) = (vec![], vec![]);
        pht.probe(&probe, &[0], &mut pp, &mut pb);

        // Same matches as multisets of (probe key, build value).
        let key = |p: u32| probe.value(0, p as usize).as_i64().unwrap();
        let mut flat_pairs: Vec<(i64, i64)> = fp
            .iter()
            .zip(fb.iter())
            .map(|(&p, &b)| {
                (
                    key(p),
                    flat.data.columns[1].get(b as usize).as_i64().unwrap(),
                )
            })
            .collect();
        let gathered = pht.gather(1, &pb);
        let mut part_pairs: Vec<(i64, i64)> = pp
            .iter()
            .enumerate()
            .map(|(i, &p)| (key(p), gathered.get(i).as_i64().unwrap()))
            .collect();
        flat_pairs.sort_unstable();
        part_pairs.sort_unstable();
        assert_eq!(flat_pairs, part_pairs);

        // Semi-probe selections are identical (order included).
        assert_eq!(flat.semi_probe(&probe, &[0]), pht.semi_probe(&probe, &[0]));
    }

    #[test]
    fn multi_chunk_build() {
        let c1 = DataChunk::new(vec![Vector::from_i64(vec![1, 2])]);
        let c2 = DataChunk::new(vec![Vector::from_i64(vec![3])]);
        let ht = JoinHashTable::build(&[c1, c2], vec![0]).unwrap();
        assert_eq!(ht.num_rows(), 3);
        let probe = DataChunk::new(vec![Vector::from_i64(vec![3])]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert_eq!(b, vec![2]);
    }
}
