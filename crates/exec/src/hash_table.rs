//! Join hash tables (build side of hash joins and exact semi-joins).

use rpt_common::hash::hash_columns;
use rpt_common::{ColumnData, DataChunk, Result, Vector};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The keys are already avalanche-mixed by `rpt_common::hash`, so the map
/// uses an identity hasher.
#[derive(Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only accepts u64 keys");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type IdentityMap<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

/// A materialized build side: all build rows (flattened) plus a hash → row
/// index multimap on the key columns.
pub struct JoinHashTable {
    /// Flattened build-side rows (all columns).
    pub data: DataChunk,
    pub key_cols: Vec<usize>,
    map: IdentityMap<Vec<u32>>,
}

/// Typed row-vs-row equality on one column (NULLs never equal).
#[inline]
fn values_equal(a: &Vector, ia: usize, b: &Vector, ib: usize) -> bool {
    if !a.is_valid(ia) || !b.is_valid(ib) {
        return false;
    }
    match (&a.data, &b.data) {
        (ColumnData::Int64(x), ColumnData::Int64(y)) => x[ia] == y[ib],
        (ColumnData::Float64(x), ColumnData::Float64(y)) => x[ia] == y[ib],
        (ColumnData::Utf8(x), ColumnData::Utf8(y)) => x[ia] == y[ib],
        (ColumnData::Bool(x), ColumnData::Bool(y)) => x[ia] == y[ib],
        _ => false,
    }
}

impl JoinHashTable {
    /// Build from pre-flattened chunks.
    pub fn build(chunks: &[DataChunk], key_cols: Vec<usize>) -> Result<JoinHashTable> {
        // Concatenate.
        let mut data = match chunks.first() {
            Some(first) => {
                let flat = first.flattened();
                let mut acc = flat;
                for c in &chunks[1..] {
                    acc.append(c)?;
                }
                acc
            }
            None => DataChunk::default(),
        };
        data.flatten();
        let n = data.num_rows();
        let mut map: IdentityMap<Vec<u32>> = IdentityMap::default();
        if n > 0 {
            let keys: Vec<&Vector> = key_cols.iter().map(|&k| &data.columns[k]).collect();
            let hashes = hash_columns(&keys, n);
            for (row, &h) in hashes.iter().enumerate() {
                if h == u64::MAX {
                    continue; // NULL key: never matches
                }
                map.entry(h).or_default().push(row as u32);
            }
        }
        Ok(JoinHashTable {
            data,
            key_cols,
            map,
        })
    }

    pub fn num_rows(&self) -> usize {
        self.data.num_rows()
    }

    /// Hash-join probe: for each logical row of `chunk` (keyed on
    /// `probe_keys`), emit one `(logical_probe_row, build_row)` pair per
    /// match. Duplicates on the build side produce multiple pairs — this is
    /// where non-robust join orders blow up.
    pub fn probe(
        &self,
        chunk: &DataChunk,
        probe_keys: &[usize],
        probe_out: &mut Vec<u32>,
        build_out: &mut Vec<u32>,
    ) {
        let n = chunk.num_rows();
        if n == 0 || self.num_rows() == 0 {
            return;
        }
        // Gather probe key columns over logical rows.
        let gathered: Vec<Vector> = probe_keys
            .iter()
            .map(|&k| match &chunk.selection {
                Some(sel) => chunk.columns[k].take(sel),
                None => chunk.columns[k].clone(),
            })
            .collect();
        let refs: Vec<&Vector> = gathered.iter().collect();
        let hashes = hash_columns(&refs, n);
        for (row, &h) in hashes.iter().enumerate() {
            if h == u64::MAX {
                continue;
            }
            if let Some(cands) = self.map.get(&h) {
                for &b in cands {
                    let ok =
                        self.key_cols.iter().zip(gathered.iter()).all(|(&kc, pv)| {
                            values_equal(pv, row, &self.data.columns[kc], b as usize)
                        });
                    if ok {
                        probe_out.push(row as u32);
                        build_out.push(b);
                    }
                }
            }
        }
    }

    /// Exact semi-join probe: logical rows of `chunk` with ≥ 1 match
    /// (no duplication). This is the hash-based semi-join of the classic
    /// Yannakakis algorithm.
    pub fn semi_probe(&self, chunk: &DataChunk, probe_keys: &[usize]) -> Vec<u32> {
        let n = chunk.num_rows();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        let gathered: Vec<Vector> = probe_keys
            .iter()
            .map(|&k| match &chunk.selection {
                Some(sel) => chunk.columns[k].take(sel),
                None => chunk.columns[k].clone(),
            })
            .collect();
        let refs: Vec<&Vector> = gathered.iter().collect();
        let hashes = hash_columns(&refs, n);
        for (row, &h) in hashes.iter().enumerate() {
            if h == u64::MAX {
                continue;
            }
            if let Some(cands) = self.map.get(&h) {
                let hit = cands.iter().any(|&b| {
                    self.key_cols
                        .iter()
                        .zip(gathered.iter())
                        .all(|(&kc, pv)| values_equal(pv, row, &self.data.columns[kc], b as usize))
                });
                if hit {
                    out.push(row as u32);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::ScalarValue;

    fn build_chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![1, 2, 2, 3]),
            Vector::from_utf8(vec!["a".into(), "b".into(), "b2".into(), "c".into()]),
        ])
    }

    #[test]
    fn build_and_probe() {
        let ht = JoinHashTable::build(&[build_chunk()], vec![0]).unwrap();
        assert_eq!(ht.num_rows(), 4);
        let probe = DataChunk::new(vec![Vector::from_i64(vec![2, 5, 1])]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        // key 2 matches build rows 1 and 2; key 1 matches build row 0.
        assert_eq!(p, vec![0, 0, 2]);
        let mut bs = b.clone();
        bs.sort_unstable();
        assert_eq!(bs, vec![0, 1, 2]);
    }

    #[test]
    fn probe_respects_selection() {
        let ht = JoinHashTable::build(&[build_chunk()], vec![0]).unwrap();
        let mut probe = DataChunk::new(vec![Vector::from_i64(vec![2, 5, 1])]);
        probe.set_selection(vec![2]); // only the key 1 row, logical idx 0
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert_eq!(p, vec![0]);
        assert_eq!(b, vec![0]);
    }

    #[test]
    fn composite_keys() {
        let build = DataChunk::new(vec![
            Vector::from_i64(vec![1, 1, 2]),
            Vector::from_i64(vec![10, 20, 10]),
        ]);
        let ht = JoinHashTable::build(&[build], vec![0, 1]).unwrap();
        let probe = DataChunk::new(vec![
            Vector::from_i64(vec![1, 2, 1]),
            Vector::from_i64(vec![10, 10, 30]),
        ]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0, 1], &mut p, &mut b);
        assert_eq!(p, vec![0, 1]);
        assert_eq!(b, vec![0, 2]);
    }

    #[test]
    fn semi_probe_no_duplication() {
        let ht = JoinHashTable::build(&[build_chunk()], vec![0]).unwrap();
        let probe = DataChunk::new(vec![Vector::from_i64(vec![2, 5, 2])]);
        let sel = ht.semi_probe(&probe, &[0]);
        assert_eq!(sel, vec![0, 2]); // each matching row once
    }

    #[test]
    fn null_keys_never_match() {
        let mut keycol = Vector::new_empty(rpt_common::DataType::Int64);
        keycol.push(&ScalarValue::Int64(1)).unwrap();
        keycol.push(&ScalarValue::Null).unwrap();
        let ht = JoinHashTable::build(&[DataChunk::new(vec![keycol])], vec![0]).unwrap();
        let mut probe_key = Vector::new_empty(rpt_common::DataType::Int64);
        probe_key.push(&ScalarValue::Null).unwrap();
        probe_key.push(&ScalarValue::Int64(1)).unwrap();
        let probe = DataChunk::new(vec![probe_key]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert_eq!(p, vec![1]); // only the non-null key matches
        assert_eq!(b, vec![0]);
        assert_eq!(ht.semi_probe(&probe, &[0]), vec![1]);
    }

    #[test]
    fn empty_build_side() {
        let ht = JoinHashTable::build(&[], vec![0]).unwrap();
        assert_eq!(ht.num_rows(), 0);
        let probe = DataChunk::new(vec![Vector::from_i64(vec![1])]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert!(p.is_empty() && b.is_empty());
    }

    #[test]
    fn multi_chunk_build() {
        let c1 = DataChunk::new(vec![Vector::from_i64(vec![1, 2])]);
        let c2 = DataChunk::new(vec![Vector::from_i64(vec![3])]);
        let ht = JoinHashTable::build(&[c1, c2], vec![0]).unwrap();
        assert_eq!(ht.num_rows(), 3);
        let probe = DataChunk::new(vec![Vector::from_i64(vec![3])]);
        let (mut p, mut b) = (vec![], vec![]);
        ht.probe(&probe, &[0], &mut p, &mut b);
        assert_eq!(b, vec![2]);
    }
}
