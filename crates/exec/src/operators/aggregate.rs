//! Hash-aggregation sink; the merged result is published as a one-chunk
//! buffer.

use super::{downcast_sink, ResourceId, Resources, Sink, SinkFactory};
use crate::aggregate::AggregateState;
use crate::context::ExecContext;
use crate::expr::AggExpr;
use rpt_common::{DataChunk, DataType, Result, Schema};
use std::any::Any;

pub struct AggregateSink {
    buf_id: usize,
    state: AggregateState,
    output_schema: Schema,
    rows: u64,
}

impl Sink for AggregateSink {
    fn sink(&mut self, chunk: DataChunk, _ctx: &ExecContext) -> Result<()> {
        self.rows += chunk.num_rows() as u64;
        self.state.update(&chunk)
    }

    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()> {
        let other = downcast_sink::<AggregateSink>(other)?;
        self.rows += other.rows;
        self.state.merge(other.state);
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn finalize(self: Box<Self>, res: &Resources) -> Result<()> {
        let this = *self;
        let out = this.state.finalize(&this.output_schema)?;
        res.publish_buffer(this.buf_id, vec![out])
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

pub struct AggregateFactory {
    buf_id: usize,
    group_cols: Vec<usize>,
    aggs: Vec<AggExpr>,
    input_types: Vec<DataType>,
    output_schema: Schema,
}

impl AggregateFactory {
    pub fn new(
        buf_id: usize,
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: Vec<DataType>,
        output_schema: Schema,
    ) -> AggregateFactory {
        AggregateFactory {
            buf_id,
            group_cols,
            aggs,
            input_types,
            output_schema,
        }
    }
}

impl SinkFactory for AggregateFactory {
    fn make(&self, _ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        Ok(Box::new(AggregateSink {
            buf_id: self.buf_id,
            state: AggregateState::new(
                self.group_cols.clone(),
                self.aggs.clone(),
                &self.input_types,
            )?,
            output_schema: self.output_schema.clone(),
            rows: 0,
        }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        vec![ResourceId::Buffer(self.buf_id)]
    }
}
