//! Hash-aggregation sink; the merged result is published as a buffer.
//!
//! With `partition_count > 1` and at least one group column, every worker
//! keeps one [`AggregateState`] *per hash partition* and radix-routes each
//! input row by its group-key hash (computed once per chunk, vectorized,
//! and reused as the group table's hash — see
//! [`crate::aggregate::AggregateState`]). The driver's merge then runs
//! one task per partition ([`AggregateMerger`]): task `p` merges every
//! worker's partition-`p` state, finalizes it, and seals that buffer
//! partition — GROUP BY merges never re-serialize over the full group set,
//! and a downstream consumer of the aggregate buffer becomes runnable the
//! moment its partition seals.
//!
//! Global (no-group) aggregates stay single-partition: their "merge" is a
//! constant-size fold, and the zero-row → one-row output contract needs a
//! single finalize point.

use super::{
    check_partition_hashes, downcast_sink, PartitionMerger, PartitionSlots, ResourceId, Resources,
    Sink, SinkFactory,
};
use crate::aggregate::AggregateState;
use crate::context::ExecContext;
use crate::expr::AggExpr;
use rpt_common::{DataChunk, DataType, Error, Partitioner, Result, Schema, Utf8Dict};
use rpt_storage::GovernedHandle;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub struct AggregateSink {
    buf_id: usize,
    /// One group table per hash partition (a single entry when
    /// unpartitioned or group-less).
    parts: Vec<AggregateState>,
    partitioner: Partitioner,
    output_schema: Schema,
    rows: u64,
    /// Reusable identity row-index buffer for the single-partition path
    /// (no per-chunk `Vec` allocation).
    ident: Vec<u32>,
    /// Unevictable governor registration (group tables must stay
    /// addressable); residency is a documented estimate, see
    /// [`AggregateSink::report_residency`].
    governed: Option<GovernedHandle>,
}

impl AggregateSink {
    /// Number of distinct groups across this worker's partitions.
    pub fn num_groups(&self) -> usize {
        self.parts.iter().map(AggregateState::num_groups).sum()
    }

    /// Report an *estimate* of the group tables' footprint to the
    /// governor: distinct groups × 16 bytes per output column (key codes +
    /// accumulators). Group tables cannot spill, so precision only affects
    /// how early the evictable buffers get pushed out.
    fn report_residency(&self) {
        if let Some(h) = &self.governed {
            let per_group = self.output_schema.len().max(1).saturating_mul(16);
            h.update(self.num_groups().saturating_mul(per_group));
        }
    }
}

impl Sink for AggregateSink {
    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()> {
        let n = chunk.num_rows();
        if n == 0 {
            return Ok(());
        }
        self.rows = self.rows.saturating_add(n as u64);
        // Aggregate inputs and group-key material are evaluated once per
        // chunk: the vectorized hash doubles as the radix routing key and
        // the group table's bucket hash, and on the fast path the packed
        // fixed-width keys ride along in the same pass.
        let inputs = self.parts[0].eval_inputs(&chunk)?;
        let keys = self.parts[0].prepare_keys(&chunk);
        let m = &ctx.metrics;
        if self.parts[0].is_fast() {
            m.add(&m.agg_fast_path_chunks, 1);
        } else {
            m.add(&m.agg_generic_chunks, 1);
        }
        if self.partitioner.is_single() {
            self.ident.clear();
            self.ident.extend(0..n as u32);
            let (part, ident) = (&mut self.parts[0], &self.ident);
            part.update_rows(&chunk, &inputs, ident, &keys)?;
            self.report_residency();
            return Ok(());
        }
        let mut rows_by_part: Vec<Vec<u32>> = vec![Vec::new(); self.partitioner.count()];
        for (row, &h) in keys.hashes.iter().enumerate() {
            rows_by_part[self.partitioner.of_hash(h)].push(row as u32);
        }
        for (p, rows) in rows_by_part.into_iter().enumerate() {
            if !rows.is_empty() {
                self.parts[p].update_rows(&chunk, &inputs, &rows, &keys)?;
            }
        }
        self.report_residency();
        Ok(())
    }

    fn sink_part(&mut self, chunk: DataChunk, part: usize, ctx: &ExecContext) -> Result<()> {
        if self.partitioner.is_single() {
            return self.sink(chunk, ctx);
        }
        let n = chunk.num_rows();
        if n == 0 {
            return Ok(());
        }
        self.rows = self.rows.saturating_add(n as u64);
        // The group-key hash is still needed — it doubles as the group
        // table's bucket hash (and `prepare_keys` *is* `key_hashes`, the
        // same hash the producer distributed on) — but the per-row scatter
        // is skipped: every row goes to partition `part` with an identity
        // selection.
        let inputs = self.parts[part].eval_inputs(&chunk)?;
        let keys = self.parts[part].prepare_keys(&chunk);
        // The hashes are already computed, so the membership check costs
        // only the comparison; it still counts toward `verify_checks_run`.
        if ctx.verify.enabled() {
            check_partition_hashes(&keys.hashes, &self.partitioner, part, ctx)?;
        }
        let m = &ctx.metrics;
        if self.parts[part].is_fast() {
            m.add(&m.agg_fast_path_chunks, 1);
        } else {
            m.add(&m.agg_generic_chunks, 1);
        }
        m.add(&m.repartition_elided_chunks, 1);
        self.ident.clear();
        self.ident.extend(0..n as u32);
        let (state, ident) = (&mut self.parts[part], &self.ident);
        state.update_rows(&chunk, &inputs, ident, &keys)?;
        self.report_residency();
        Ok(())
    }

    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()> {
        let other = downcast_sink::<AggregateSink>(other)?;
        self.rows = self.rows.saturating_add(other.rows);
        for (mine, theirs) in self.parts.iter_mut().zip(other.parts) {
            mine.merge(theirs)?;
        }
        self.report_residency();
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn finalize(self: Box<Self>, res: &Resources) -> Result<()> {
        let this = *self;
        if this.parts.len() == 1 {
            let mut parts = this.parts;
            let out = parts.remove(0).finalize(&this.output_schema)?;
            return res.publish_buffer(this.buf_id, vec![out]);
        }
        // Serial finalize of a partitioned sink (direct harness use; the
        // pipeline drivers go through the merger instead).
        for (p, state) in this.parts.into_iter().enumerate() {
            let out = state.finalize(&this.output_schema)?;
            let chunks = if out.num_rows() == 0 {
                vec![]
            } else {
                vec![out]
            };
            res.publish_buffer_partition(this.buf_id, p, chunks)?;
        }
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

pub struct AggregateFactory {
    buf_id: usize,
    group_cols: Vec<usize>,
    aggs: Vec<AggExpr>,
    input_types: Vec<DataType>,
    output_schema: Schema,
    /// Per input column: the table dictionary of a dictionary-coded `Utf8`
    /// column (extends fast-path eligibility to string group keys).
    key_dicts: Vec<Option<Arc<Utf8Dict>>>,
}

impl AggregateFactory {
    pub fn new(
        buf_id: usize,
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: Vec<DataType>,
        output_schema: Schema,
        key_dicts: Vec<Option<Arc<Utf8Dict>>>,
    ) -> AggregateFactory {
        AggregateFactory {
            buf_id,
            group_cols,
            aggs,
            input_types,
            output_schema,
            key_dicts,
        }
    }

    /// One per-partition group table. The table implementation is chosen
    /// here, at sink construction: the fixed-key fast path when the
    /// context allows it (`ctx.agg_fast`, default on, `RPT_AGG_FAST=off`
    /// to disable) *and* every group column is fixed-width — `Int64`,
    /// `Bool`, or a `Utf8` column with a planner-attached dictionary
    /// packing its codes — else the generic encoded-key table.
    fn state(&self, ctx: &ExecContext) -> Result<AggregateState> {
        AggregateState::with_fast_path_dicts(
            self.group_cols.clone(),
            self.aggs.clone(),
            &self.input_types,
            ctx.agg_fast,
            &self.key_dicts,
        )
    }
}

impl SinkFactory for AggregateFactory {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        let partitioner = if self.group_cols.is_empty() {
            Partitioner::new(1)
        } else {
            Partitioner::new(ctx.partition_count)
        };
        let parts = (0..partitioner.count())
            .map(|_| self.state(ctx))
            .collect::<Result<Vec<_>>>()?;
        Ok(Box::new(AggregateSink {
            buf_id: self.buf_id,
            parts,
            partitioner,
            output_schema: self.output_schema.clone(),
            rows: 0,
            ident: Vec::new(),
            governed: ctx.governor.as_ref().map(|g| g.register(false)),
        }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        vec![ResourceId::Buffer(self.buf_id)]
    }

    fn partitioned_merge(&self, ctx: &ExecContext) -> bool {
        !self.group_cols.is_empty() && ctx.partition_count > 1
    }

    fn make_merger(
        &self,
        states: Vec<Box<dyn Sink>>,
        _ctx: &ExecContext,
    ) -> Result<Box<dyn PartitionMerger>> {
        let mut workers = Vec::with_capacity(states.len());
        for s in states {
            workers.push(*downcast_sink::<AggregateSink>(s)?);
        }
        // The states' own layout is authoritative (the factory normalized
        // `ctx.partition_count` when it built them).
        let partitions = workers
            .first()
            .map(|w| w.parts.len())
            .ok_or_else(|| Error::Exec("partitioned merge without sink states".into()))?;
        let slots =
            PartitionSlots::transpose(workers.into_iter().map(|w| w.parts).collect(), partitions);
        Ok(Box::new(AggregateMerger {
            buf_id: self.buf_id,
            output_schema: self.output_schema.clone(),
            partitions,
            slots,
            max_task_rows: AtomicU64::new(0),
        }))
    }
}

/// Merge plan of a partitioned [`AggregateSink`]: task `p` merges every
/// worker's partition-`p` group table, finalizes it (groups sorted by
/// encoded key within the partition), and seals buffer partition `p` —
/// making any consumer of that partition runnable immediately. `finish`
/// has nothing left to publish.
struct AggregateMerger {
    buf_id: usize,
    output_schema: Schema,
    partitions: usize,
    slots: PartitionSlots<AggregateState>,
    max_task_rows: AtomicU64,
}

impl PartitionMerger for AggregateMerger {
    fn partitions(&self) -> usize {
        self.partitions
    }

    fn merge_partition(&self, part: usize, _ctx: &ExecContext, res: &Resources) -> Result<()> {
        let mut states = self.slots.take(part)?.into_iter();
        let mut merged = states
            .next()
            .ok_or_else(|| Error::Exec("aggregate merge without worker states".into()))?;
        for s in states {
            merged.merge(s)?;
        }
        // Report the *merged* (distinct) group count this task sealed:
        // directly comparable with the result's total group count, so the
        // no-full-result merge assertion holds regardless of how many
        // worker states repeated the same groups.
        self.max_task_rows
            .fetch_max(merged.num_groups() as u64, Ordering::Relaxed);
        let out = merged.finalize(&self.output_schema)?;
        let chunks = if out.num_rows() == 0 {
            vec![]
        } else {
            vec![out]
        };
        res.publish_buffer_partition(self.buf_id, part, chunks)
    }

    fn finish(&self, _ctx: &ExecContext, _res: &Resources) -> Result<()> {
        Ok(())
    }

    fn max_task_rows(&self) -> u64 {
        self.max_task_rows.load(Ordering::Relaxed)
    }
}
