//! CreateBF (§4.2): the Bloom-building half shared by the sinks.
//!
//! A [`BloomSink`] is the *request* ("build filter `filter_id` over these
//! key columns, sized for this many keys"); a [`BloomBuild`] is one
//! worker's in-progress filter. Buffer sinks (the canonical CreateBF) and
//! hash-build sinks (the BloomJoin baseline's build side) both embed a list
//! of `BloomBuild`s, merge them in `Combine`, and publish in `Finalize`.

use super::{key_hashes, Resources};
use crate::context::ExecContext;
use rpt_bloom::BloomFilter;
use rpt_common::{ColumnData, DataChunk, Error, Result};
use std::time::Instant;

/// Request to build one Bloom filter inside a buffering sink.
#[derive(Clone)]
pub struct BloomSink {
    pub filter_id: usize,
    pub key_cols: Vec<usize>,
    /// Sizing hint (pre-reduction cardinality of the source).
    pub expected_keys: usize,
    pub fpr: f64,
}

/// One worker's partial Bloom filter for a [`BloomSink`] request.
pub struct BloomBuild {
    spec: BloomSink,
    filter: BloomFilter,
}

impl BloomBuild {
    pub fn new(spec: &BloomSink) -> BloomBuild {
        BloomBuild {
            filter: BloomFilter::with_capacity(spec.expected_keys, spec.fpr),
            spec: spec.clone(),
        }
    }

    /// Instantiate one build per request.
    pub fn from_specs(specs: &[BloomSink]) -> Vec<BloomBuild> {
        specs.iter().map(BloomBuild::new).collect()
    }

    pub fn filter_id(&self) -> usize {
        self.spec.filter_id
    }

    /// Merge another worker's partial filter (same request).
    pub fn merge(&mut self, other: &BloomBuild) -> Result<()> {
        self.filter.merge(&other.filter).map_err(Error::Exec)
    }

    /// Publish the finished filter.
    pub fn publish(self, res: &Resources) -> Result<()> {
        res.publish_filter(self.spec.filter_id, self.filter)
    }
}

/// Insert the key hashes of a chunk into the worker's partial filters
/// (the `Sink` step of CreateBF / the BloomJoin build side).
pub fn insert_into_blooms(chunk: &DataChunk, blooms: &mut [BloomBuild], ctx: &ExecContext) {
    if blooms.is_empty() {
        return;
    }
    let m = &ctx.metrics;
    let t0 = Instant::now();
    for build in blooms.iter_mut() {
        let hashes = key_hashes(chunk, &build.spec.key_cols);
        for h in hashes {
            if h != u64::MAX {
                build.filter.insert_hash(h);
            }
        }
        observe_i64_key_ranges(chunk, build);
    }
    m.add(&m.bloom_nanos, t0.elapsed().as_nanos() as u64);
    m.add(
        &m.bloom_build_rows,
        chunk.num_rows() as u64 * blooms.len() as u64,
    );
}

/// Track the raw value range of every flat `Int64` key column on the
/// partial filter (one tracked range per key position), so scans can prune
/// storage blocks whose zone maps are disjoint from the transferred
/// filter's key range on *any* key column — multi-column joins prune too.
/// Dictionary-backed vectors are skipped: their `Int64` payload holds
/// codes, not values.
fn observe_i64_key_ranges(chunk: &DataChunk, build: &mut BloomBuild) {
    for (pos, &col) in build.spec.key_cols.clone().iter().enumerate() {
        let v = &chunk.columns[col];
        if v.is_dict() {
            continue;
        }
        let ColumnData::Int64(vals) = &v.data else {
            continue;
        };
        let mut bounds: Option<(i64, i64)> = None;
        for i in 0..chunk.num_rows() {
            let p = chunk.physical_index(i);
            if v.is_valid(p) {
                let x = vals[p];
                bounds = Some(bounds.map_or((x, x), |(a, b)| (a.min(x), b.max(x))));
            }
        }
        if let Some((lo, hi)) = bounds {
            build.filter.observe_key_range_at(pos, lo, hi);
        }
    }
}

/// Merge two parallel lists of partial filters pairwise.
pub fn combine_blooms(mine: &mut [BloomBuild], other: &[BloomBuild]) -> Result<()> {
    for (a, b) in mine.iter_mut().zip(other.iter()) {
        a.merge(b)?;
    }
    Ok(())
}

/// Merge every worker's partial filters and publish the results — the
/// Finalize half of a *partitioned* CreateBF. Filters are OR-merged in
/// disjoint word ranges on up to `threads` scoped threads
/// ([`BloomFilter::merge_parallel`]); since OR is commutative and
/// associative the published bit pattern is identical regardless of worker
/// or range order.
pub fn merge_publish_blooms(
    mut per_worker: Vec<Vec<BloomBuild>>,
    threads: usize,
    res: &Resources,
) -> Result<()> {
    if per_worker.is_empty() {
        return Ok(());
    }
    let mut merged = per_worker.remove(0);
    for (i, build) in merged.iter_mut().enumerate() {
        let others: Vec<&BloomFilter> = per_worker.iter().map(|w| &w[i].filter).collect();
        build
            .filter
            .merge_parallel(&others, threads)
            .map_err(Error::Exec)?;
    }
    for build in merged {
        build.publish(res)?;
    }
    Ok(())
}
