//! Scan sources: in-memory table scans (with zone-map block pruning) and
//! buffer re-scans.

use super::{ChunkList, ResourceId, Resources, Source};
use crate::context::ExecContext;
use crate::expr::CmpOp;
use rpt_common::Result;
use rpt_storage::{BlockTable, Table, ZoneMap};
use std::sync::Arc;

/// Planner-recorded pruning opportunities for one table scan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanPrune {
    /// `Int64 col CMP literal` conjuncts of the scan's pushed-down filter
    /// (base-table column indices). Any block whose zone map proves the
    /// conjunct can never hold is skipped — the full filter still runs on
    /// surviving blocks, so pruning only removes rows the filter would
    /// drop anyway.
    pub predicates: Vec<(usize, CmpOp, i64)>,
    /// `Utf8 col CMP string-literal` conjuncts of the pushed-down filter.
    /// Only consulted for columns the block encoding gave a sorted shared
    /// dictionary: dict codes are assigned in lexicographic order, so the
    /// zone's string bounds order exactly like the stored codes, and an
    /// `=` literal absent from the dictionary can never match any row of
    /// the column.
    pub utf8_predicates: Vec<(usize, CmpOp, String)>,
    /// `(filter_id, key_pos, col)` triples: transferred Bloom filters
    /// probed on base column `col` (the `key_pos`-th probe key) downstream
    /// of this scan. When the published filter tracked a raw key range at
    /// that position, blocks of all-valid rows disjoint from it cannot
    /// contain a true semi-join match and are skipped — multi-column join
    /// keys contribute one independent range per position.
    pub bloom: Vec<(usize, usize, usize)>,
}

impl ScanPrune {
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty() && self.utf8_predicates.is_empty() && self.bloom.is_empty()
    }
}

/// Scan an in-memory columnar table, chunked into default-size morsels.
///
/// With `ctx.storage_encoding` on, chunks are decoded from the table's
/// block-encoded form — one block per chunk — skipping (never decoding)
/// blocks the [`ScanPrune`] spec rules out via zone maps, and serving
/// dictionary-coded `Utf8` columns as dictionary-backed vectors. With it
/// off, the raw flat layout is sliced as before (parity path).
pub struct TableScan {
    table: Arc<Table>,
    prune: ScanPrune,
}

impl TableScan {
    pub fn new(table: Arc<Table>) -> TableScan {
        TableScan {
            table,
            prune: ScanPrune::default(),
        }
    }

    pub fn with_prune(table: Arc<Table>, prune: ScanPrune) -> TableScan {
        TableScan { table, prune }
    }

    /// Can any row of a block with zone map `zone` satisfy `col CMP lit`?
    /// NULL rows never satisfy a SQL comparison, so all-NULL blocks prune
    /// under any literal conjunct.
    fn literal_may_match(zone: &ZoneMap, op: CmpOp, lit: i64) -> bool {
        if zone.all_null() {
            return false;
        }
        let Some((mn, mx)) = zone.i64_bounds() else {
            return true; // non-Int64 zone: never prune
        };
        match op {
            CmpOp::Eq => lit >= mn && lit <= mx,
            CmpOp::NotEq => !(mn == mx && mn == lit),
            CmpOp::Lt => mn < lit,
            CmpOp::LtEq => mn <= lit,
            CmpOp::Gt => mx > lit,
            CmpOp::GtEq => mx >= lit,
        }
    }

    /// Can any row of a block with zone map `zone` satisfy
    /// `col CMP 'lit'`? The string analog of [`Self::literal_may_match`];
    /// only called for dictionary-encoded columns, whose code order is the
    /// lexicographic order these bound comparisons use.
    fn utf8_literal_may_match(zone: &ZoneMap, op: CmpOp, lit: &str) -> bool {
        if zone.all_null() {
            return false;
        }
        let Some((mn, mx)) = zone.utf8_bounds() else {
            return true; // non-Utf8 zone: never prune
        };
        match op {
            CmpOp::Eq => lit >= mn && lit <= mx,
            CmpOp::NotEq => !(mn == mx && mn == lit),
            CmpOp::Lt => mn < lit,
            CmpOp::LtEq => mn <= lit,
            CmpOp::Gt => mx > lit,
            CmpOp::GtEq => mx >= lit,
        }
    }

    fn block_pruned(&self, enc: &BlockTable, b: usize, bloom_ranges: &[(usize, i64, i64)]) -> bool {
        for &(col, op, lit) in &self.prune.predicates {
            if !Self::literal_may_match(enc.zone(col, b), op, lit) {
                return true;
            }
        }
        for (col, op, lit) in &self.prune.utf8_predicates {
            // Dictionary gate: without the sorted shared dict the column's
            // stored form carries no code order to prune against.
            let Some(dict) = &enc.columns[*col].dict else {
                continue;
            };
            // `col = 'lit'` with a literal outside the dictionary can
            // never hold for any row of the column, whatever the block.
            if *op == CmpOp::Eq && dict.code_of(lit).is_none() {
                return true;
            }
            if !Self::utf8_literal_may_match(enc.zone(*col, b), *op, lit) {
                return true;
            }
        }
        for &(col, lo, hi) in bloom_ranges {
            let zone = enc.zone(col, b);
            // Only all-valid blocks are eligible: a NULL-keyed row's fate
            // is decided downstream (the Bloom probe may keep it), so
            // blocks containing NULLs are never range-pruned.
            if zone.null_count == 0 {
                if let Some((mn, mx)) = zone.i64_bounds() {
                    if mx < lo || mn > hi {
                        return true;
                    }
                }
            }
        }
        false
    }
}

impl Source for TableScan {
    fn chunks(&self, ctx: &ExecContext, res: &Resources) -> Result<Arc<ChunkList>> {
        if !ctx.storage_encoding {
            let out: ChunkList = self
                .table
                .default_chunks()
                .into_iter()
                .map(Arc::new)
                .collect();
            let rows: u64 = out.iter().map(|c| c.num_rows() as u64).sum();
            ctx.metrics.add(&ctx.metrics.scan_rows, rows);
            return Ok(Arc::new(out));
        }
        let enc = self.table.encoded();
        // Resolve transferred key ranges once per scan; filters named here
        // are in `reads()`, so they are published before the scan opens.
        let mut bloom_ranges = Vec::with_capacity(self.prune.bloom.len());
        for &(filter_id, key_pos, col) in &self.prune.bloom {
            if let Some((lo, hi)) = res.filter(filter_id)?.key_range_at(key_pos) {
                bloom_ranges.push((col, lo, hi));
            }
        }
        let mut out: ChunkList = Vec::new();
        let mut pruned = 0u64;
        for b in 0..enc.num_blocks() {
            if self.block_pruned(&enc, b, &bloom_ranges) {
                pruned = pruned.saturating_add(1);
            } else {
                out.push(Arc::new(enc.decode_block(b)));
            }
        }
        let m = &ctx.metrics;
        m.add(&m.blocks_pruned, pruned);
        m.add(&m.blocks_scanned, out.len() as u64);
        let rows: u64 = out.iter().map(|c| c.num_rows() as u64).sum();
        m.add(&m.scan_rows, rows);
        if pruned > 0 {
            m.trace_entry(
                format!("[storage] scan {} blocks-pruned", self.table.name),
                pruned,
            );
        }
        Ok(Arc::new(out))
    }

    fn reads(&self) -> Vec<ResourceId> {
        let mut ids: Vec<ResourceId> = self
            .prune
            .bloom
            .iter()
            .map(|&(filter_id, _, _)| ResourceId::Filter(filter_id))
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// Re-scan the materialized output of an earlier pipeline (e.g. a CreateBF
/// buffer acting as the source of the backward pass or the join phase).
pub struct BufferScan {
    buf_id: usize,
}

impl BufferScan {
    pub fn new(buf_id: usize) -> BufferScan {
        BufferScan { buf_id }
    }
}

impl Source for BufferScan {
    fn chunks(&self, _ctx: &ExecContext, res: &Resources) -> Result<Arc<ChunkList>> {
        res.buffer(self.buf_id)
    }

    fn reads(&self) -> Vec<ResourceId> {
        vec![ResourceId::Buffer(self.buf_id)]
    }

    /// Buffer partitions seal independently, so the global scheduler can
    /// stream this source partition-by-partition while the producer is
    /// still merging the others.
    fn partitioned_input(&self) -> Option<usize> {
        Some(self.buf_id)
    }

    fn partition_chunks(
        &self,
        _ctx: &ExecContext,
        res: &Resources,
        part: usize,
    ) -> Result<Arc<ChunkList>> {
        res.buffer_partition(self.buf_id, part)
    }
}
