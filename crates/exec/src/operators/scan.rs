//! Scan sources: in-memory table scans and buffer re-scans.

use super::{ChunkList, ResourceId, Resources, Source};
use rpt_common::Result;
use rpt_storage::Table;
use std::sync::Arc;

/// Scan an in-memory columnar table, chunked into default-size morsels.
pub struct TableScan {
    table: Arc<Table>,
}

impl TableScan {
    pub fn new(table: Arc<Table>) -> TableScan {
        TableScan { table }
    }
}

impl Source for TableScan {
    fn chunks(&self, _res: &Resources) -> Result<Arc<ChunkList>> {
        Ok(Arc::new(
            self.table
                .default_chunks()
                .into_iter()
                .map(Arc::new)
                .collect(),
        ))
    }
}

/// Re-scan the materialized output of an earlier pipeline (e.g. a CreateBF
/// buffer acting as the source of the backward pass or the join phase).
pub struct BufferScan {
    buf_id: usize,
}

impl BufferScan {
    pub fn new(buf_id: usize) -> BufferScan {
        BufferScan { buf_id }
    }
}

impl Source for BufferScan {
    fn chunks(&self, res: &Resources) -> Result<Arc<ChunkList>> {
        res.buffer(self.buf_id)
    }

    fn reads(&self) -> Vec<ResourceId> {
        vec![ResourceId::Buffer(self.buf_id)]
    }

    /// Buffer partitions seal independently, so the global scheduler can
    /// stream this source partition-by-partition while the producer is
    /// still merging the others.
    fn partitioned_input(&self) -> Option<usize> {
        Some(self.buf_id)
    }

    fn partition_chunks(&self, res: &Resources, part: usize) -> Result<Arc<ChunkList>> {
        res.buffer_partition(self.buf_id, part)
    }
}
