//! ProbeBF (§4.2): drop rows whose key hash misses a Bloom filter built by
//! an earlier CreateBF pipeline, via the bitmask → selection conversion.

use super::{key_hashes, Operator, ResourceId, Resources};
use crate::context::ExecContext;
use rpt_bloom::bitmask_to_selection;
use rpt_common::{DataChunk, Result};
use std::time::Instant;

pub struct ProbeBloom {
    filter_id: usize,
    key_cols: Vec<usize>,
}

impl ProbeBloom {
    pub fn new(filter_id: usize, key_cols: Vec<usize>) -> ProbeBloom {
        ProbeBloom {
            filter_id,
            key_cols,
        }
    }
}

impl Operator for ProbeBloom {
    fn execute(
        &self,
        mut chunk: DataChunk,
        ctx: &ExecContext,
        res: &Resources,
    ) -> Result<Option<DataChunk>> {
        let filter = res.filter(self.filter_id)?;
        let m = &ctx.metrics;
        let n = chunk.num_rows();
        let t0 = Instant::now();
        let hashes = key_hashes(&chunk, &self.key_cols);
        let mask = filter.probe_hashes_bitmask(&hashes);
        let mut keep = Vec::new();
        bitmask_to_selection(&mask, n, &mut keep);
        m.add(&m.bloom_nanos, t0.elapsed().as_nanos() as u64);
        m.add(&m.bloom_probe_in, n as u64);
        m.add(&m.bloom_probe_out, keep.len() as u64);
        chunk.refine_selection(&keep);
        Ok(Some(chunk))
    }

    fn reads(&self) -> Vec<ResourceId> {
        vec![ResourceId::Filter(self.filter_id)]
    }
}
