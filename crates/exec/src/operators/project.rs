//! Projection: replaces the chunk with evaluated expressions (flattens).

use super::{Operator, Resources};
use crate::context::ExecContext;
use crate::expr::Expr;
use rpt_common::{DataChunk, Result, Vector};

pub struct Project {
    exprs: Vec<Expr>,
}

impl Project {
    pub fn new(exprs: Vec<Expr>) -> Project {
        Project { exprs }
    }
}

impl Operator for Project {
    fn execute(
        &self,
        chunk: DataChunk,
        _ctx: &ExecContext,
        _res: &Resources,
    ) -> Result<Option<DataChunk>> {
        let cols: Vec<Vector> = self
            .exprs
            .iter()
            .map(|e| e.eval(&chunk))
            .collect::<Result<_>>()?;
        Ok(Some(DataChunk::new(cols)))
    }
}
