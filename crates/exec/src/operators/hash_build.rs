//! Hash-join build sink, optionally building Bloom filters over the same
//! stream — how the BloomJoin baseline (§6.1) attaches a filter to each
//! hash-join build side.

use super::create_bf::{combine_blooms, insert_into_blooms, BloomBuild, BloomSink};
use super::{downcast_sink, ResourceId, Resources, Sink, SinkFactory};
use crate::context::ExecContext;
use crate::hash_table::JoinHashTable;
use rpt_common::{DataChunk, Result, Schema};
use std::any::Any;

pub struct HashBuildSink {
    ht_id: usize,
    key_cols: Vec<usize>,
    blooms: Vec<BloomBuild>,
    chunks: Vec<DataChunk>,
    schema: Schema,
    rows: u64,
}

impl Sink for HashBuildSink {
    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()> {
        let n = chunk.num_rows() as u64;
        insert_into_blooms(&chunk, &mut self.blooms, ctx);
        ctx.metrics.add(&ctx.metrics.hash_build_rows, n);
        self.chunks.push(chunk.flattened());
        self.rows += n;
        Ok(())
    }

    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()> {
        let other = downcast_sink::<HashBuildSink>(other)?;
        self.chunks.extend(other.chunks);
        combine_blooms(&mut self.blooms, &other.blooms)?;
        self.rows += other.rows;
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn finalize(self: Box<Self>, res: &Resources) -> Result<()> {
        // An empty build side must still carry its column arity so
        // probe-side output chunks have the right shape.
        let table = if self.chunks.is_empty() {
            JoinHashTable::build(&[DataChunk::empty_like(&self.schema)], self.key_cols)?
        } else {
            JoinHashTable::build(&self.chunks, self.key_cols)?
        };
        res.publish_table(self.ht_id, table)?;
        for b in self.blooms {
            b.publish(res)?;
        }
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

pub struct HashBuildFactory {
    ht_id: usize,
    key_cols: Vec<usize>,
    schema: Schema,
    blooms: Vec<BloomSink>,
}

impl HashBuildFactory {
    pub fn new(
        ht_id: usize,
        key_cols: Vec<usize>,
        schema: Schema,
        blooms: Vec<BloomSink>,
    ) -> HashBuildFactory {
        HashBuildFactory {
            ht_id,
            key_cols,
            schema,
            blooms,
        }
    }
}

impl SinkFactory for HashBuildFactory {
    fn make(&self, _ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        Ok(Box::new(HashBuildSink {
            ht_id: self.ht_id,
            key_cols: self.key_cols.clone(),
            blooms: BloomBuild::from_specs(&self.blooms),
            chunks: Vec::new(),
            schema: self.schema.clone(),
            rows: 0,
        }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        let mut w = vec![ResourceId::HashTable(self.ht_id)];
        w.extend(self.blooms.iter().map(|b| ResourceId::Filter(b.filter_id)));
        w
    }
}
