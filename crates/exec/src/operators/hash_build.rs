//! Hash-join build sink, optionally building Bloom filters over the same
//! stream — how the BloomJoin baseline (§6.1) attaches a filter to each
//! hash-join build side.
//!
//! With `partition_count > 1` every worker radix-partitions its build rows
//! by key hash, and the driver's merge builds one [`JoinHashTable`] per
//! partition in parallel, publishing them as a [`PartitionedHashTable`]
//! that probes route into by the same hash — the build is never
//! re-serialized over the full build side.

use super::create_bf::{
    combine_blooms, insert_into_blooms, merge_publish_blooms, BloomBuild, BloomSink,
};
use super::{
    check_partition_route, downcast_sink, lock_or_err, PartitionMerger, PartitionSlots, ResourceId,
    Resources, Sink, SinkFactory,
};
use crate::context::ExecContext;
use crate::hash_table::{JoinHashTable, PartitionedHashTable};
use rpt_common::{DataChunk, Error, Partitioner, Result, Schema};
use rpt_storage::{chunk_size_bytes, GovernedHandle};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct HashBuildSink {
    ht_id: usize,
    key_cols: Vec<usize>,
    blooms: Vec<BloomBuild>,
    /// Per-partition runs (a single entry when unpartitioned).
    parts: Vec<Vec<DataChunk>>,
    partitioner: Partitioner,
    schema: Schema,
    rows: u64,
    /// Unevictable governor registration: build rows must stay addressable
    /// in memory, so this only contributes pressure that pushes evictable
    /// buffers to spill earlier.
    governed: Option<GovernedHandle>,
    resident_bytes: usize,
}

impl HashBuildSink {
    fn report_residency(&mut self, added_bytes: usize) {
        if let Some(h) = &self.governed {
            self.resident_bytes = self.resident_bytes.saturating_add(added_bytes);
            h.update(self.resident_bytes);
        }
    }
}

/// Build one partition's table; an empty partition still carries the
/// column arity so probe-side output chunks have the right shape.
fn build_partition(
    chunks: &[DataChunk],
    key_cols: Vec<usize>,
    schema: &Schema,
) -> Result<JoinHashTable> {
    if chunks.is_empty() {
        JoinHashTable::build(&[DataChunk::empty_like(schema)], key_cols)
    } else {
        JoinHashTable::build(chunks, key_cols)
    }
}

impl Sink for HashBuildSink {
    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()> {
        let n = chunk.num_rows() as u64;
        insert_into_blooms(&chunk, &mut self.blooms, ctx);
        ctx.metrics.add(&ctx.metrics.hash_build_rows, n);
        self.report_residency(chunk_size_bytes(&chunk));
        if self.partitioner.is_single() {
            self.parts[0].push(chunk.flattened());
        } else {
            let hashes = super::key_hashes(&chunk, &self.key_cols);
            for (p, sub) in self
                .partitioner
                .split_chunk(&chunk, &hashes)
                .into_iter()
                .enumerate()
            {
                if let Some(sub) = sub {
                    self.parts[p].push(sub);
                }
            }
        }
        self.rows = self.rows.saturating_add(n);
        Ok(())
    }

    fn sink_part(&mut self, chunk: DataChunk, part: usize, ctx: &ExecContext) -> Result<()> {
        if self.partitioner.is_single() {
            return self.sink(chunk, ctx);
        }
        check_partition_route(&chunk, &self.key_cols, &self.partitioner, part, ctx)?;
        let n = chunk.num_rows() as u64;
        insert_into_blooms(&chunk, &mut self.blooms, ctx);
        ctx.metrics.add(&ctx.metrics.hash_build_rows, n);
        self.report_residency(chunk_size_bytes(&chunk));
        ctx.metrics.add(&ctx.metrics.repartition_elided_chunks, 1);
        self.parts[part].push(chunk.flattened());
        self.rows = self.rows.saturating_add(n);
        Ok(())
    }

    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()> {
        let other = downcast_sink::<HashBuildSink>(other)?;
        let taken = other.resident_bytes;
        for (mine, theirs) in self.parts.iter_mut().zip(other.parts) {
            mine.extend(theirs);
        }
        combine_blooms(&mut self.blooms, &other.blooms)?;
        self.rows = self.rows.saturating_add(other.rows);
        // The other sink's registration released on drop; adopt its bytes.
        self.report_residency(taken);
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn finalize(self: Box<Self>, res: &Resources) -> Result<()> {
        let table = if self.parts.len() == 1 {
            PartitionedHashTable::single(build_partition(
                &self.parts[0],
                self.key_cols.clone(),
                &self.schema,
            )?)
        } else {
            let parts = self
                .parts
                .iter()
                .map(|chunks| build_partition(chunks, self.key_cols.clone(), &self.schema))
                .collect::<Result<Vec<_>>>()?;
            PartitionedHashTable::from_parts(parts)
        };
        res.publish_table(self.ht_id, table)?;
        for b in self.blooms {
            b.publish(res)?;
        }
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

pub struct HashBuildFactory {
    ht_id: usize,
    key_cols: Vec<usize>,
    schema: Schema,
    blooms: Vec<BloomSink>,
}

impl HashBuildFactory {
    pub fn new(
        ht_id: usize,
        key_cols: Vec<usize>,
        schema: Schema,
        blooms: Vec<BloomSink>,
    ) -> HashBuildFactory {
        HashBuildFactory {
            ht_id,
            key_cols,
            schema,
            blooms,
        }
    }
}

impl SinkFactory for HashBuildFactory {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        let partitioner = Partitioner::new(ctx.partition_count);
        Ok(Box::new(HashBuildSink {
            ht_id: self.ht_id,
            key_cols: self.key_cols.clone(),
            blooms: BloomBuild::from_specs(&self.blooms),
            parts: (0..partitioner.count()).map(|_| Vec::new()).collect(),
            partitioner,
            schema: self.schema.clone(),
            rows: 0,
            governed: ctx.governor.as_ref().map(|g| g.register(false)),
            resident_bytes: 0,
        }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        let mut w = vec![ResourceId::HashTable(self.ht_id)];
        w.extend(self.blooms.iter().map(|b| ResourceId::Filter(b.filter_id)));
        w
    }

    fn partitioned_merge(&self, ctx: &ExecContext) -> bool {
        ctx.partition_count > 1
    }

    fn make_merger(
        &self,
        states: Vec<Box<dyn Sink>>,
        _ctx: &ExecContext,
    ) -> Result<Box<dyn PartitionMerger>> {
        let mut workers = Vec::with_capacity(states.len());
        for s in states {
            workers.push(*downcast_sink::<HashBuildSink>(s)?);
        }
        // The states' own layout is authoritative (the factory normalized
        // `ctx.partition_count` when it built them).
        let partitions = workers
            .first()
            .map(|w| w.parts.len())
            .ok_or_else(|| Error::Exec("partitioned merge without sink states".into()))?;
        let blooms: Vec<Vec<BloomBuild>> = workers
            .iter_mut()
            .map(|w| std::mem::take(&mut w.blooms))
            .collect();
        let slots =
            PartitionSlots::transpose(workers.into_iter().map(|w| w.parts).collect(), partitions);
        Ok(Box::new(HashBuildMerger {
            ht_id: self.ht_id,
            key_cols: self.key_cols.clone(),
            schema: self.schema.clone(),
            partitions,
            slots,
            tables: (0..partitions).map(|_| Mutex::new(None)).collect(),
            blooms: Mutex::new(Some(blooms)),
            max_task_rows: AtomicU64::new(0),
        }))
    }
}

/// Merge plan of a partitioned [`HashBuildSink`]: task `p` builds one
/// partition's [`JoinHashTable`]; `finish` assembles the
/// [`PartitionedHashTable`], publishes it, and merges the Bloom filters.
/// (The table is only probe-able once complete, so — unlike buffer
/// partitions — nothing is consumable until `finish`.)
struct HashBuildMerger {
    ht_id: usize,
    key_cols: Vec<usize>,
    schema: Schema,
    partitions: usize,
    slots: PartitionSlots<Vec<DataChunk>>,
    tables: Vec<Mutex<Option<JoinHashTable>>>,
    blooms: Mutex<Option<Vec<Vec<BloomBuild>>>>,
    max_task_rows: AtomicU64,
}

impl PartitionMerger for HashBuildMerger {
    fn partitions(&self) -> usize {
        self.partitions
    }

    fn merge_partition(&self, part: usize, _ctx: &ExecContext, _res: &Resources) -> Result<()> {
        let chunks: Vec<DataChunk> = self.slots.take(part)?.into_iter().flatten().collect();
        let rows: u64 = chunks.iter().map(|c| c.num_rows() as u64).sum();
        self.max_task_rows.fetch_max(rows, Ordering::Relaxed);
        let table = build_partition(&chunks, self.key_cols.clone(), &self.schema)?;
        *lock_or_err(&self.tables[part], "table slot")? = Some(table);
        Ok(())
    }

    fn finish(&self, ctx: &ExecContext, res: &Resources) -> Result<()> {
        let parts: Vec<JoinHashTable> = self
            .tables
            .iter()
            .map(|t| {
                lock_or_err(t, "table slot")?
                    .take()
                    .ok_or_else(|| Error::Exec("partition table missing at finish".into()))
            })
            .collect::<Result<_>>()?;
        res.publish_table(self.ht_id, PartitionedHashTable::from_parts(parts))?;
        let blooms = lock_or_err(&self.blooms, "bloom slot")?
            .take()
            .ok_or_else(|| Error::Exec("hash-build merge finished twice".into()))?;
        merge_publish_blooms(blooms, ctx.threads, res)
    }

    fn max_task_rows(&self) -> u64 {
        self.max_task_rows.load(Ordering::Relaxed)
    }
}
