//! Partitioned sort / TopK sink: the `ORDER BY [LIMIT]` pipeline breaker.
//!
//! Workers accumulate **unsorted runs**, routed chunk-granular round-robin
//! across `ctx.partition_count` partitions (order across partitions is
//! irrelevant — every row is re-ordered anyway, so routing stays copy-free).
//! With a TopK bound (`LIMIT n [OFFSET k]` ⇒ bound = `n + k`) a run is
//! pruned back to its best `bound` rows whenever it grows past `2 × bound`,
//! so no worker ever holds more than `2 × bound` rows per partition and the
//! discarded rows are counted in `sort_rows_pruned`. Unbounded sorts
//! accumulate through a [`SpillBuffer`] instead, so runs larger than the
//! memory cap spill to disk like any other materializing sink.
//!
//! The merge is the standard two-phase partitioned plan: one parallel task
//! per partition concatenates every worker's runs for that partition and
//! sorts (or TopK-prunes) them into a single sorted run
//! (`sort_merge_tasks`, `sort_max_run_rows`), then `finish` streams a
//! k-way **loser-tree** merge over the per-partition sorted runs, applies
//! `OFFSET`/`LIMIT`, and publishes the globally ordered result.
//!
//! Ordering contract: keys compare with explicit NULL placement
//! (`nulls_first`), descending keys reverse the value order only. After the
//! declared keys, rows tie-break on **every output column** left-to-right
//! (ascending, NULLs first) — a total order, so the published result is
//! identical regardless of thread count or partitioning, which is what lets
//! the differential corpus assert exact ordered-row equality. Dictionary
//! -backed `Utf8` key columns compare by their `Int64` codes when both
//! sides share the same sorted dictionary (code order == lexicographic
//! order), decoding nothing.

use super::{
    downcast_sink, record_spill_stats, PartitionMerger, PartitionSlots, ResourceId, Resources,
    Sink, SinkFactory,
};
use crate::context::{ExecContext, Metrics};
use rpt_common::chunk::chunk_ranges;
use rpt_common::{ColumnData, DataChunk, Error, Result, ScalarValue, Schema, Vector, VECTOR_SIZE};
use rpt_storage::SpillBuffer;
use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// One ORDER BY key, bound to a sink-input column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub col: usize,
    pub desc: bool,
    pub nulls_first: bool,
}

/// Compare one value of `a` against one of `b` ascending, NULLs aside
/// (callers handle validity). Dictionary fast path: when both vectors are
/// backed by the *same* sorted dictionary, codes compare without decoding.
fn cmp_value(a: &Vector, ai: usize, b: &Vector, bi: usize) -> CmpOrdering {
    if let (Some(da), Some(db)) = (&a.dict, &b.dict) {
        if Arc::ptr_eq(da, db) {
            if let (ColumnData::Int64(ca), ColumnData::Int64(cb)) = (&a.data, &b.data) {
                return ca[ai].cmp(&cb[bi]);
            }
        }
    }
    match (&a.data, &b.data) {
        _ if a.dict.is_some() || b.dict.is_some() => a.utf8_at(ai).cmp(b.utf8_at(bi)),
        (ColumnData::Int64(va), ColumnData::Int64(vb)) => va[ai].cmp(&vb[bi]),
        (ColumnData::Float64(va), ColumnData::Float64(vb)) => va[ai].total_cmp(&vb[bi]),
        (ColumnData::Utf8(va), ColumnData::Utf8(vb)) => va[ai].cmp(&vb[bi]),
        (ColumnData::Bool(va), ColumnData::Bool(vb)) => va[ai].cmp(&vb[bi]),
        _ => CmpOrdering::Equal,
    }
}

/// Compare one column position of two chunks under a key's direction and
/// NULL placement.
fn cmp_key(
    a: &Vector,
    ai: usize,
    b: &Vector,
    bi: usize,
    desc: bool,
    nulls_first: bool,
) -> CmpOrdering {
    match (a.is_valid(ai), b.is_valid(bi)) {
        (false, false) => CmpOrdering::Equal,
        (false, true) => {
            if nulls_first {
                CmpOrdering::Less
            } else {
                CmpOrdering::Greater
            }
        }
        (true, false) => {
            if nulls_first {
                CmpOrdering::Greater
            } else {
                CmpOrdering::Less
            }
        }
        (true, true) => {
            let ord = cmp_value(a, ai, b, bi);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        }
    }
}

/// Total-order row comparison: the declared keys first, then every column
/// left-to-right (ascending, NULLs first) as the tie-break. Both chunks
/// must be flattened (`ai`/`bi` are physical rows).
pub fn cmp_rows(
    keys: &[SortKey],
    a: &DataChunk,
    ai: usize,
    b: &DataChunk,
    bi: usize,
) -> CmpOrdering {
    for k in keys {
        let ord = cmp_key(
            &a.columns[k.col],
            ai,
            &b.columns[k.col],
            bi,
            k.desc,
            k.nulls_first,
        );
        if ord != CmpOrdering::Equal {
            return ord;
        }
    }
    for c in 0..a.num_columns() {
        let ord = cmp_key(&a.columns[c], ai, &b.columns[c], bi, false, true);
        if ord != CmpOrdering::Equal {
            return ord;
        }
    }
    CmpOrdering::Equal
}

/// The same total order over materialized [`ScalarValue`] rows — the
/// reference comparator differential tests sort their expected rows with.
pub fn cmp_scalar_rows(keys: &[SortKey], a: &[ScalarValue], b: &[ScalarValue]) -> CmpOrdering {
    fn cmp_cell(a: &ScalarValue, b: &ScalarValue, desc: bool, nulls_first: bool) -> CmpOrdering {
        match (a, b) {
            (ScalarValue::Null, ScalarValue::Null) => CmpOrdering::Equal,
            (ScalarValue::Null, _) => {
                if nulls_first {
                    CmpOrdering::Less
                } else {
                    CmpOrdering::Greater
                }
            }
            (_, ScalarValue::Null) => {
                if nulls_first {
                    CmpOrdering::Greater
                } else {
                    CmpOrdering::Less
                }
            }
            (ScalarValue::Float64(x), ScalarValue::Float64(y)) => {
                let ord = x.total_cmp(y);
                if desc {
                    ord.reverse()
                } else {
                    ord
                }
            }
            _ => {
                let ord = a.partial_cmp_sql(b).unwrap_or(CmpOrdering::Equal);
                if desc {
                    ord.reverse()
                } else {
                    ord
                }
            }
        }
    }
    for k in keys {
        let ord = cmp_cell(&a[k.col], &b[k.col], k.desc, k.nulls_first);
        if ord != CmpOrdering::Equal {
            return ord;
        }
    }
    for c in 0..a.len() {
        let ord = cmp_cell(&a[c], &b[c], false, true);
        if ord != CmpOrdering::Equal {
            return ord;
        }
    }
    CmpOrdering::Equal
}

/// Sort a flattened chunk's row indices under the total order.
fn sorted_indices(keys: &[SortKey], chunk: &DataChunk) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..chunk.num_rows() as u32).collect();
    idx.sort_unstable_by(|&x, &y| cmp_rows(keys, chunk, x as usize, chunk, y as usize));
    idx
}

/// Gather `indices` out of a flattened chunk (dictionary encodings
/// preserved via [`Vector::take`]).
fn gather(chunk: &DataChunk, indices: &[u32]) -> DataChunk {
    DataChunk::new(chunk.columns.iter().map(|c| c.take(indices)).collect())
}

/// Concatenate chunks into one flattened chunk (same-dictionary appends
/// keep their codes).
fn concat(schema: &Schema, chunks: Vec<DataChunk>) -> Result<DataChunk> {
    let mut iter = chunks.into_iter();
    let mut out = match iter.next() {
        Some(first) => first.flattened(),
        None => DataChunk::empty_like(schema),
    };
    for c in iter {
        out.append(&c)?;
    }
    Ok(out)
}

/// Sort a gathered run, keeping only the best `bound` rows when a TopK
/// bound applies. Returns the sorted chunk and the number of pruned rows.
fn sort_run(keys: &[SortKey], chunk: &DataChunk, bound: Option<usize>) -> (DataChunk, u64) {
    let mut idx = sorted_indices(keys, chunk);
    let mut pruned = 0u64;
    if let Some(b) = bound {
        if idx.len() > b {
            pruned = (idx.len() - b) as u64;
            idx.truncate(b);
        }
    }
    (gather(chunk, &idx), pruned)
}

/// One worker's per-partition accumulation state.
enum Run {
    /// TopK mode: resident rows, pruned back to `bound` whenever the run
    /// passes `2 × bound`.
    TopK(Option<DataChunk>),
    /// Full-sort mode: raw chunks behind the spill cap (boxed — the
    /// buffer dwarfs the TopK variant).
    Full(Box<SpillBuffer>),
}

impl Run {
    fn into_chunks(self, metrics: &Metrics) -> Result<Vec<DataChunk>> {
        match self {
            Run::TopK(data) => Ok(data.into_iter().collect()),
            Run::Full(mut buf) => {
                let chunks = buf.take_chunks()?;
                record_spill_stats(metrics, buf.stats());
                Ok(chunks)
            }
        }
    }
}

pub struct SortSink {
    buf_id: usize,
    keys: Arc<Vec<SortKey>>,
    /// `limit + offset`: the most rows any run ever needs to keep.
    bound: Option<usize>,
    limit: Option<usize>,
    offset: usize,
    schema: Schema,
    parts: Vec<Run>,
    next_round_robin: usize,
    rows: u64,
    /// Owned handle so pruning in `combine`/`finalize` (no ctx there)
    /// still lands in the query metrics.
    metrics: Arc<Metrics>,
}

impl SortSink {
    /// Append a chunk into a TopK run, pruning past `2 × bound`.
    fn push_topk(
        keys: &[SortKey],
        bound: usize,
        run: &mut Option<DataChunk>,
        chunk: &DataChunk,
        metrics: &Metrics,
    ) -> Result<()> {
        let data = match run.as_mut() {
            Some(data) => {
                data.append(chunk)?;
                data
            }
            None => run.insert(chunk.flattened()),
        };
        if data.num_rows() > bound.saturating_mul(2) {
            let (kept, pruned) = sort_run(keys, data, Some(bound));
            *data = kept;
            metrics.add(&metrics.sort_rows_pruned, pruned);
        }
        Ok(())
    }
}

impl Sink for SortSink {
    fn sink(&mut self, chunk: DataChunk, _ctx: &ExecContext) -> Result<()> {
        self.rows = self.rows.saturating_add(chunk.num_rows() as u64);
        if chunk.is_logically_empty() {
            return Ok(());
        }
        let p = self.next_round_robin;
        self.next_round_robin = (p + 1) % self.parts.len();
        let bound = self.bound;
        match &mut self.parts[p] {
            Run::TopK(run) => Self::push_topk(
                &self.keys,
                bound.ok_or_else(|| Error::Exec("TopK run without bound".into()))?,
                run,
                &chunk,
                &self.metrics,
            ),
            Run::Full(buf) => buf.push(chunk),
        }
    }

    fn sink_part(&mut self, chunk: DataChunk, part: usize, ctx: &ExecContext) -> Result<()> {
        // Sort runs carry no hash distribution (round-robin assignment is
        // already arbitrary), so any partition assignment is sound — the
        // loser-tree merge rebuilds the total order. Preserving the source
        // partition keeps run sizes aligned with the producer's layout.
        if self.parts.len() == 1 {
            return self.sink(chunk, ctx);
        }
        self.rows = self.rows.saturating_add(chunk.num_rows() as u64);
        if chunk.is_logically_empty() {
            return Ok(());
        }
        ctx.metrics.add(&ctx.metrics.repartition_elided_chunks, 1);
        let bound = self.bound;
        match &mut self.parts[part] {
            Run::TopK(run) => Self::push_topk(
                &self.keys,
                bound.ok_or_else(|| Error::Exec("TopK run without bound".into()))?,
                run,
                &chunk,
                &self.metrics,
            ),
            Run::Full(buf) => buf.push(chunk),
        }
    }

    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()> {
        let other = downcast_sink::<SortSink>(other)?;
        self.rows = self.rows.saturating_add(other.rows);
        let bound = self.bound;
        for (mine, theirs) in self.parts.iter_mut().zip(other.parts) {
            match (mine, theirs) {
                (Run::TopK(run), theirs @ Run::TopK(_)) => {
                    for c in theirs.into_chunks(&self.metrics)? {
                        Self::push_topk(
                            &self.keys,
                            bound.ok_or_else(|| Error::Exec("TopK run without bound".into()))?,
                            run,
                            &c,
                            &self.metrics,
                        )?;
                    }
                }
                (Run::Full(buf), theirs) => {
                    for c in theirs.into_chunks(&self.metrics)? {
                        buf.push(c)?;
                    }
                }
                _ => return Err(Error::Exec("combining mismatched sort run modes".into())),
            }
        }
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    /// Serial path (no partitioned merge): sort every partition's run and
    /// loser-tree merge them into the globally ordered result.
    fn finalize(self: Box<Self>, res: &Resources) -> Result<()> {
        let mut sorted = Vec::with_capacity(self.parts.len());
        let mut total_pruned = 0u64;
        for run in self.parts {
            let gathered = concat(&self.schema, run.into_chunks(&self.metrics)?)?;
            let (chunk, pruned) = sort_run(&self.keys, &gathered, self.bound);
            total_pruned = total_pruned.saturating_add(pruned);
            self.metrics
                .max_update(&self.metrics.sort_max_run_rows, chunk.num_rows() as u64);
            sorted.push(chunk);
        }
        self.metrics
            .add(&self.metrics.sort_rows_pruned, total_pruned);
        let out = merge_sorted_runs(&self.keys, &self.schema, &sorted, self.offset, self.limit)?;
        res.publish_buffer(self.buf_id, out)
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Builds one [`SortSink`] per worker; lowered from `SinkSpec::Sort`.
pub struct SortSinkFactory {
    buf_id: usize,
    keys: Arc<Vec<SortKey>>,
    limit: Option<usize>,
    offset: usize,
    schema: Schema,
}

impl SortSinkFactory {
    pub fn new(
        buf_id: usize,
        keys: Vec<SortKey>,
        limit: Option<usize>,
        offset: usize,
        schema: Schema,
    ) -> SortSinkFactory {
        SortSinkFactory {
            buf_id,
            keys: Arc::new(keys),
            limit,
            offset,
            schema,
        }
    }

    fn bound(&self) -> Option<usize> {
        self.limit.map(|l| l.saturating_add(self.offset))
    }
}

impl SinkFactory for SortSinkFactory {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        let parts = rpt_common::normalize_partition_count(ctx.partition_count);
        let bound = self.bound();
        let per_buffer_limit = ctx
            .spill_limit_bytes
            .map(|l| (l / ctx.threads.max(1) / parts).max(1))
            .unwrap_or(usize::MAX);
        let runs = (0..parts)
            .map(|_| match bound {
                Some(_) => Run::TopK(None),
                None => {
                    let mut buf = SpillBuffer::new(
                        self.schema.clone(),
                        per_buffer_limit,
                        ctx.spill_dir.clone(),
                    )
                    .with_encoding(ctx.spill_encoding)
                    .with_file_tag(ctx.query_id);
                    if let Some(gov) = &ctx.governor {
                        buf = buf.with_governor(gov.register(true));
                    }
                    Run::Full(Box::new(buf))
                }
            })
            .collect();
        Ok(Box::new(SortSink {
            buf_id: self.buf_id,
            keys: self.keys.clone(),
            bound,
            limit: self.limit,
            offset: self.offset,
            schema: self.schema.clone(),
            parts: runs,
            next_round_robin: 0,
            rows: 0,
            metrics: ctx.metrics.clone(),
        }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        vec![ResourceId::Buffer(self.buf_id)]
    }

    fn partitioned_merge(&self, ctx: &ExecContext) -> bool {
        ctx.partition_count > 1
    }

    fn make_merger(
        &self,
        states: Vec<Box<dyn Sink>>,
        _ctx: &ExecContext,
    ) -> Result<Box<dyn PartitionMerger>> {
        let mut workers = Vec::with_capacity(states.len());
        for s in states {
            workers.push(*downcast_sink::<SortSink>(s)?);
        }
        let partitions = workers
            .first()
            .map(|w| w.parts.len())
            .ok_or_else(|| Error::Exec("partitioned sort merge without sink states".into()))?;
        let slots =
            PartitionSlots::transpose(workers.into_iter().map(|w| w.parts).collect(), partitions);
        Ok(Box::new(SortMerger {
            buf_id: self.buf_id,
            keys: self.keys.clone(),
            bound: self.bound(),
            limit: self.limit,
            offset: self.offset,
            schema: self.schema.clone(),
            partitions,
            slots,
            sorted: (0..partitions).map(|_| OnceLock::new()).collect(),
            max_task_rows: AtomicU64::new(0),
        }))
    }
}

/// Merge plan of a partitioned [`SortSink`]: task `p` gathers every
/// worker's partition-`p` run and sorts (TopK-prunes) it into one sorted
/// run; `finish` loser-tree merges the runs, applies `OFFSET`/`LIMIT`, and
/// publishes the globally ordered buffer. Nothing is published per
/// partition — the sort breaks the global order across partitions, so the
/// whole result seals at once (sort sinks are terminal; no consumer reads
/// their partitions early).
struct SortMerger {
    buf_id: usize,
    keys: Arc<Vec<SortKey>>,
    bound: Option<usize>,
    limit: Option<usize>,
    offset: usize,
    schema: Schema,
    partitions: usize,
    slots: PartitionSlots<Run>,
    /// Sorted run per partition, sealed by its merge task.
    sorted: Vec<OnceLock<DataChunk>>,
    max_task_rows: AtomicU64,
}

impl PartitionMerger for SortMerger {
    fn partitions(&self) -> usize {
        self.partitions
    }

    fn merge_partition(&self, part: usize, ctx: &ExecContext, _res: &Resources) -> Result<()> {
        let mut chunks = Vec::new();
        for run in self.slots.take(part)? {
            chunks.extend(run.into_chunks(&ctx.metrics)?);
        }
        let gathered = concat(&self.schema, chunks)?;
        self.max_task_rows
            .fetch_max(gathered.num_rows() as u64, Ordering::Relaxed);
        let (sorted, pruned) = sort_run(&self.keys, &gathered, self.bound);
        let m = &ctx.metrics;
        m.add(&m.sort_rows_pruned, pruned);
        m.add(&m.sort_merge_tasks, 1);
        m.max_update(&m.sort_max_run_rows, sorted.num_rows() as u64);
        self.sorted[part]
            .set(sorted)
            .map_err(|_| Error::Exec(format!("sort partition {part} merged twice")))
    }

    fn finish(&self, ctx: &ExecContext, res: &Resources) -> Result<()> {
        let mut runs = Vec::with_capacity(self.partitions);
        for (p, slot) in self.sorted.iter().enumerate() {
            runs.push(
                slot.get()
                    .cloned()
                    .ok_or_else(|| Error::Exec(format!("sort partition {p} never merged")))?,
            );
        }
        let out = merge_sorted_runs(&self.keys, &self.schema, &runs, self.offset, self.limit)?;
        ctx.metrics
            .trace_entry("[sort] partitions", self.partitions as u64);
        res.publish_buffer(self.buf_id, out)
    }

    fn max_task_rows(&self) -> u64 {
        self.max_task_rows.load(Ordering::Relaxed)
    }

    fn prefetch_parts(&self) -> Vec<usize> {
        (0..self.partitions)
            .filter(|&p| {
                let mut any = false;
                let _ = self.slots.with_slot(p, |runs| {
                    any = runs
                        .iter()
                        .any(|r| matches!(r, Run::Full(b) if b.has_spilled()));
                    Ok(())
                });
                any
            })
            .collect()
    }

    fn prefetch_partition(&self, part: usize, _ctx: &ExecContext) -> Result<()> {
        self.slots.with_slot(part, |runs| {
            for r in runs.iter_mut() {
                if let Run::Full(b) = r {
                    b.prefetch()?;
                }
            }
            Ok(())
        })
    }
}

/// A classic array loser tree over `k` sorted runs: `tree[0]` is the
/// current winner, internal nodes hold the loser of their subtree's match.
/// Pop is `O(log k)` comparisons — the streaming k-way merge of the sort
/// sink's `finish` phase.
struct LoserTree<'a> {
    keys: &'a [SortKey],
    runs: &'a [DataChunk],
    cursors: Vec<usize>,
    tree: Vec<usize>,
    k: usize,
}

impl<'a> LoserTree<'a> {
    fn new(keys: &'a [SortKey], runs: &'a [DataChunk]) -> LoserTree<'a> {
        let k = runs.len();
        let mut lt = LoserTree {
            keys,
            runs,
            cursors: vec![0; k],
            tree: vec![0; k.max(1)],
            k,
        };
        if k <= 1 {
            return lt;
        }
        // Build bottom-up over the implicit 2k-node tournament: leaves
        // `k..2k` are the runs, node `n`'s match is between its children's
        // winners; losers stay in `tree[n]`, the winner moves up.
        let mut winner = vec![0usize; 2 * k];
        for (i, w) in winner.iter_mut().enumerate().skip(k) {
            *w = i - k;
        }
        for n in (1..k).rev() {
            let (a, b) = (winner[2 * n], winner[2 * n + 1]);
            if lt.beats(a, b) {
                winner[n] = a;
                lt.tree[n] = b;
            } else {
                winner[n] = b;
                lt.tree[n] = a;
            }
        }
        lt.tree[0] = winner[1];
        lt
    }

    /// Does run `a`'s front row order before run `b`'s? Exhausted runs
    /// always lose; equal fronts break on the lower run index (equal rows
    /// are bytewise identical under the total order, so this only pins
    /// determinism).
    fn beats(&self, a: usize, b: usize) -> bool {
        let (ca, cb) = (self.cursors[a], self.cursors[b]);
        match (ca < self.runs[a].num_rows(), cb < self.runs[b].num_rows()) {
            (true, false) => true,
            (false, _) => false,
            (true, true) => match cmp_rows(self.keys, &self.runs[a], ca, &self.runs[b], cb) {
                CmpOrdering::Less => true,
                CmpOrdering::Greater => false,
                CmpOrdering::Equal => a < b,
            },
        }
    }

    /// Next `(run, row)` in global order, or `None` when all runs drain.
    fn pop(&mut self) -> Option<(usize, usize)> {
        let w = self.tree[0];
        if self.cursors[w] >= self.runs[w].num_rows() {
            return None;
        }
        let row = self.cursors[w];
        self.cursors[w] = self.cursors[w].saturating_add(1);
        // Replay the path from w's leaf to the root.
        let mut cur = w;
        let mut node = (self.k + w) / 2;
        while node >= 1 {
            if self.beats(self.tree[node], cur) {
                std::mem::swap(&mut self.tree[node], &mut cur);
            }
            node /= 2;
        }
        self.tree[0] = cur;
        Some((w, row))
    }
}

/// Stream the k-way merge of sorted runs, skip `offset` rows, emit at most
/// `limit`, and re-chunk the output at [`VECTOR_SIZE`].
fn merge_sorted_runs(
    keys: &[SortKey],
    schema: &Schema,
    runs: &[DataChunk],
    offset: usize,
    limit: Option<usize>,
) -> Result<Vec<DataChunk>> {
    let take = match limit {
        Some(0) => return Ok(Vec::new()),
        Some(n) => n,
        None => usize::MAX,
    };
    let mut tree = LoserTree::new(keys, runs);
    for _ in 0..offset {
        if tree.pop().is_none() {
            return Ok(Vec::new());
        }
    }
    // (run, row) pairs in global order, then columnar gather per output
    // chunk — runs keep their typed (possibly dictionary) payloads until
    // the final `get`/`push` materialization.
    let mut picked: Vec<(usize, usize)> = Vec::new();
    while picked.len() < take {
        match tree.pop() {
            Some(pair) => picked.push(pair),
            None => break,
        }
    }
    let mut out = Vec::new();
    for (start, len) in chunk_ranges(picked.len(), VECTOR_SIZE) {
        let mut columns = Vec::with_capacity(schema.fields.len());
        for (c, field) in schema.fields.iter().enumerate() {
            let mut v = Vector::new_empty(field.data_type);
            for &(run, row) in &picked[start..start + len] {
                v.push(&runs[run].columns[c].get(row))?;
            }
            columns.push(v);
        }
        out.push(DataChunk::new(columns));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpt_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", rpt_common::DataType::Int64),
            Field::new("s", rpt_common::DataType::Utf8),
        ])
    }

    fn chunk(vals: &[(i64, &str)]) -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vals.iter().map(|(a, _)| *a).collect()),
            Vector::from_utf8(vals.iter().map(|(_, s)| s.to_string()).collect()),
        ])
    }

    fn run_sort(
        factory: &SortSinkFactory,
        ctx: &ExecContext,
        chunks: Vec<DataChunk>,
    ) -> Vec<Vec<ScalarValue>> {
        let res = Resources::new(1, 0, 0);
        let mut sink = factory.make(ctx).expect("make");
        for c in chunks {
            sink.sink(c, ctx).expect("sink");
        }
        if factory.partitioned_merge(ctx) {
            factory
                .merge_partitioned("sort", vec![sink], ctx, &res)
                .expect("merge");
        } else {
            sink.finalize(&res).expect("finalize");
        }
        let out = res.buffer(0).expect("buffer");
        out.iter().flat_map(|c| c.rows()).collect()
    }

    #[test]
    fn sorts_and_limits_across_partitions() {
        let keys = vec![SortKey {
            col: 0,
            desc: true,
            nulls_first: true,
        }];
        let data = vec![
            chunk(&[(3, "c"), (1, "a")]),
            chunk(&[(7, "g"), (5, "e")]),
            chunk(&[(2, "b"), (6, "f")]),
        ];
        for parts in [1usize, 4] {
            let ctx = ExecContext::new().with_partitions(parts);
            let factory = SortSinkFactory::new(0, keys.clone(), Some(3), 1, schema());
            let rows = run_sort(&factory, &ctx, data.clone());
            assert_eq!(
                rows,
                vec![
                    vec![ScalarValue::Int64(6), ScalarValue::Utf8("f".into())],
                    vec![ScalarValue::Int64(5), ScalarValue::Utf8("e".into())],
                    vec![ScalarValue::Int64(3), ScalarValue::Utf8("c".into())],
                ],
                "parts={parts}"
            );
        }
    }

    #[test]
    fn topk_prunes_runs_and_counts_rows() {
        let keys = vec![SortKey {
            col: 0,
            desc: false,
            nulls_first: false,
        }];
        let ctx = ExecContext::new().with_partitions(1);
        let factory = SortSinkFactory::new(0, keys, Some(2), 0, schema());
        let chunks: Vec<DataChunk> = (0..8)
            .map(|i| chunk(&[(i * 2, "x"), (i * 2 + 1, "y")]))
            .collect();
        let rows = run_sort(&factory, &ctx, chunks);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], ScalarValue::Int64(0));
        assert_eq!(rows[1][0], ScalarValue::Int64(1));
        let m = ctx.metrics.summary();
        assert!(m.sort_rows_pruned > 0, "TopK never pruned: {m:?}");
        assert!(
            m.sort_max_run_rows <= 2,
            "run kept more than the bound: {m:?}"
        );
    }

    #[test]
    fn null_ordering_is_explicit() {
        let keys = vec![SortKey {
            col: 0,
            desc: false,
            nulls_first: true,
        }];
        let mut v = Vector::from_i64(vec![5, 0, 3]);
        v.validity = Some(vec![true, false, true]);
        let c = DataChunk::new(vec![
            v,
            Vector::from_utf8(vec!["a".into(), "b".into(), "c".into()]),
        ]);
        let ctx = ExecContext::new().with_partitions(1);
        let factory = SortSinkFactory::new(0, keys, None, 0, schema());
        let rows = run_sort(&factory, &ctx, vec![c]);
        assert_eq!(rows[0][0], ScalarValue::Null);
        assert_eq!(rows[1][0], ScalarValue::Int64(3));
        assert_eq!(rows[2][0], ScalarValue::Int64(5));
    }

    #[test]
    fn loser_tree_matches_flat_sort() {
        let keys = vec![SortKey {
            col: 0,
            desc: false,
            nulls_first: false,
        }];
        // Three pre-sorted runs of uneven length (one empty).
        let runs = vec![
            chunk(&[(1, "a"), (4, "d"), (9, "i")]),
            chunk(&[]),
            chunk(&[(2, "b"), (3, "c"), (5, "e"), (8, "h")]),
        ];
        let merged = merge_sorted_runs(&keys, &schema(), &runs, 0, None).expect("merge");
        let got: Vec<i64> = merged
            .iter()
            .flat_map(|c| c.rows())
            .map(|r| match r[0] {
                ScalarValue::Int64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 8, 9]);
    }
}
