//! Exact semi-join probe (Yannakakis reducer): keep rows with ≥1 match,
//! without duplication.

use super::{Operator, ResourceId, Resources};
use crate::context::ExecContext;
use rpt_common::{DataChunk, Result};

pub struct SemiProbe {
    ht_id: usize,
    key_cols: Vec<usize>,
}

impl SemiProbe {
    pub fn new(ht_id: usize, key_cols: Vec<usize>) -> SemiProbe {
        SemiProbe { ht_id, key_cols }
    }
}

impl Operator for SemiProbe {
    fn execute(
        &self,
        mut chunk: DataChunk,
        _ctx: &ExecContext,
        res: &Resources,
    ) -> Result<Option<DataChunk>> {
        let ht = res.hash_table(self.ht_id)?;
        let keep = ht.semi_probe(&chunk, &self.key_cols);
        chunk.refine_selection(&keep);
        Ok(Some(chunk))
    }

    fn reads(&self) -> Vec<ResourceId> {
        vec![ResourceId::HashTable(self.ht_id)]
    }
}
