//! Buffer sink: materialize chunks (spilling past the memory cap) and
//! optionally build Bloom filters along the way — the CreateBF operator.
//! With no Bloom requests this is a plain collect sink.

use super::create_bf::{combine_blooms, insert_into_blooms, BloomBuild, BloomSink};
use super::{downcast_sink, ResourceId, Resources, Sink, SinkFactory};
use crate::context::ExecContext;
use rpt_common::{DataChunk, Result, Schema};
use rpt_storage::SpillBuffer;
use std::any::Any;

pub struct BufferSink {
    buf_id: usize,
    buf: SpillBuffer,
    blooms: Vec<BloomBuild>,
    rows: u64,
}

impl Sink for BufferSink {
    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()> {
        self.rows += chunk.num_rows() as u64;
        insert_into_blooms(&chunk, &mut self.blooms, ctx);
        self.buf.push(chunk)
    }

    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()> {
        let other = downcast_sink::<BufferSink>(other)?;
        for c in other.buf.into_chunks()? {
            self.buf.push(c)?;
        }
        combine_blooms(&mut self.blooms, &other.blooms)?;
        self.rows += other.rows;
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn finalize(self: Box<Self>, res: &Resources) -> Result<()> {
        res.publish_buffer(self.buf_id, self.buf.into_chunks()?)?;
        for b in self.blooms {
            b.publish(res)?;
        }
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Builds one [`BufferSink`] per worker, splitting the spill cap across
/// the configured thread count.
pub struct BufferSinkFactory {
    buf_id: usize,
    schema: Schema,
    blooms: Vec<BloomSink>,
}

impl BufferSinkFactory {
    pub fn new(buf_id: usize, schema: Schema, blooms: Vec<BloomSink>) -> BufferSinkFactory {
        BufferSinkFactory {
            buf_id,
            schema,
            blooms,
        }
    }
}

impl SinkFactory for BufferSinkFactory {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        let per_thread_limit = ctx
            .spill_limit_bytes
            .map(|l| (l / ctx.threads).max(1))
            .unwrap_or(usize::MAX);
        Ok(Box::new(BufferSink {
            buf_id: self.buf_id,
            buf: SpillBuffer::new(self.schema.clone(), per_thread_limit, ctx.spill_dir.clone()),
            blooms: BloomBuild::from_specs(&self.blooms),
            rows: 0,
        }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        let mut w = vec![ResourceId::Buffer(self.buf_id)];
        w.extend(self.blooms.iter().map(|b| ResourceId::Filter(b.filter_id)));
        w
    }
}
