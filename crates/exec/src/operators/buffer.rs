//! Buffer sink: materialize chunks (spilling past the memory cap) and
//! optionally build Bloom filters along the way — the CreateBF operator.
//! With no Bloom requests this is a plain collect sink.
//!
//! With `partition_count > 1` every worker writes *hash-partitioned* runs
//! (radix on the Bloom request's key columns; keyless collect sinks split
//! their first chunk across partitions, then route whole chunks
//! round-robin, copy-free), and the driver merges the partitions in
//! parallel — each merge task concatenates one partition's runs from every
//! worker and seals that partition's buffer slot, so no merge task ever
//! scans the full result.

use super::create_bf::{
    combine_blooms, insert_into_blooms, merge_publish_blooms, BloomBuild, BloomSink,
};
use super::{
    check_partition_route, downcast_sink, lock_or_err, record_spill_stats, PartitionMerger,
    PartitionSlots, ResourceId, Resources, Sink, SinkFactory,
};
use crate::context::{ExecContext, Metrics};
use rpt_common::{DataChunk, Error, Partitioner, Result, Schema};
use rpt_storage::{SpillBuffer, SpillStats};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub struct BufferSink {
    buf_id: usize,
    /// One spill buffer per partition (a single entry when unpartitioned).
    parts: Vec<SpillBuffer>,
    partitioner: Partitioner,
    /// Key columns the rows are radix-routed on; `None` (no key available)
    /// falls back to chunk-granular round-robin routing.
    partition_keys: Option<Vec<usize>>,
    next_round_robin: usize,
    /// Has the keyless path already split its first chunk across
    /// partitions?
    keyless_seeded: bool,
    blooms: Vec<BloomBuild>,
    rows: u64,
    /// Metrics sink for spill accounting on the ctx-less `finalize` path.
    metrics: Arc<Metrics>,
}

impl BufferSink {
    /// Per-partition spill statistics (partition order).
    pub fn spill_stats(&self) -> Vec<SpillStats> {
        self.parts.iter().map(SpillBuffer::stats).collect()
    }
}

impl Sink for BufferSink {
    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()> {
        self.rows = self.rows.saturating_add(chunk.num_rows() as u64);
        insert_into_blooms(&chunk, &mut self.blooms, ctx);
        if self.partitioner.is_single() {
            return self.parts[0].push(chunk);
        }
        match &self.partition_keys {
            Some(keys) => {
                let hashes = super::key_hashes(&chunk, keys);
                for (p, sub) in self
                    .partitioner
                    .split_chunk(&chunk, &hashes)
                    .into_iter()
                    .enumerate()
                {
                    if let Some(sub) = sub {
                        self.parts[p].push(sub)?;
                    }
                }
                Ok(())
            }
            None => {
                // Keyless collect sink: no hash to route on. Only the first
                // chunk is split into contiguous row ranges (bounded copy:
                // it guarantees ≥2 partitions are non-empty, so no merge
                // task can cover the full result even for single-chunk
                // outputs); every later chunk is routed whole, copy-free,
                // to a rotating partition.
                let count = self.parts.len();
                if self.keyless_seeded {
                    let p = self.next_round_robin;
                    self.next_round_robin = (p + 1) % count;
                    return self.parts[p].push(chunk);
                }
                self.keyless_seeded = true;
                let n = chunk.num_rows();
                let per = n.div_ceil(count).max(1);
                let mut start = 0;
                let mut p = 0;
                while start < n {
                    let end = (start + per).min(n);
                    let idx: Vec<u32> = (start..end)
                        .map(|l| chunk.physical_index(l) as u32)
                        .collect();
                    let sub = DataChunk::new(chunk.columns.iter().map(|c| c.take(&idx)).collect());
                    self.parts[p % count].push(sub)?;
                    p = p.saturating_add(1);
                    start = end;
                }
                self.next_round_robin = p % count;
                Ok(())
            }
        }
    }

    fn sink_part(&mut self, chunk: DataChunk, part: usize, ctx: &ExecContext) -> Result<()> {
        if self.partitioner.is_single() {
            return self.sink(chunk, ctx);
        }
        if let Some(keys) = &self.partition_keys {
            check_partition_route(&chunk, keys, &self.partitioner, part, ctx)?;
        }
        self.rows = self.rows.saturating_add(chunk.num_rows() as u64);
        insert_into_blooms(&chunk, &mut self.blooms, ctx);
        ctx.metrics.add(&ctx.metrics.repartition_elided_chunks, 1);
        self.parts[part].push(chunk)
    }

    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()> {
        let other = downcast_sink::<BufferSink>(other)?;
        for (mine, mut theirs) in self.parts.iter_mut().zip(other.parts) {
            let chunks = theirs.take_chunks()?;
            record_spill_stats(&self.metrics, theirs.stats());
            for c in chunks {
                mine.push(c)?;
            }
        }
        combine_blooms(&mut self.blooms, &other.blooms)?;
        self.rows = self.rows.saturating_add(other.rows);
        Ok(())
    }

    fn rows(&self) -> u64 {
        self.rows
    }

    fn finalize(self: Box<Self>, res: &Resources) -> Result<()> {
        let this = *self;
        if this.parts.len() == 1 {
            let mut parts = this.parts;
            let mut buf = parts.remove(0);
            let chunks = buf.take_chunks()?;
            record_spill_stats(&this.metrics, buf.stats());
            res.publish_buffer(this.buf_id, chunks)?;
        } else {
            for (p, mut buf) in this.parts.into_iter().enumerate() {
                let chunks = buf.take_chunks()?;
                record_spill_stats(&this.metrics, buf.stats());
                res.publish_buffer_partition(this.buf_id, p, chunks)?;
            }
        }
        for b in this.blooms {
            b.publish(res)?;
        }
        Ok(())
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Builds one [`BufferSink`] per worker, splitting the spill cap across
/// the configured thread count (and, within a worker, across partitions).
pub struct BufferSinkFactory {
    buf_id: usize,
    schema: Schema,
    blooms: Vec<BloomSink>,
}

impl BufferSinkFactory {
    pub fn new(buf_id: usize, schema: Schema, blooms: Vec<BloomSink>) -> BufferSinkFactory {
        BufferSinkFactory {
            buf_id,
            schema,
            blooms,
        }
    }
}

impl SinkFactory for BufferSinkFactory {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>> {
        let partitioner = Partitioner::new(ctx.partition_count);
        let per_buffer_limit = ctx
            .spill_limit_bytes
            .map(|l| (l / ctx.threads / partitioner.count()).max(1))
            .unwrap_or(usize::MAX);
        let parts = (0..partitioner.count())
            .map(|_| {
                let mut buf =
                    SpillBuffer::new(self.schema.clone(), per_buffer_limit, ctx.spill_dir.clone())
                        .with_encoding(ctx.spill_encoding)
                        .with_file_tag(ctx.query_id);
                if let Some(gov) = &ctx.governor {
                    buf = buf.with_governor(gov.register(true));
                }
                buf
            })
            .collect();
        Ok(Box::new(BufferSink {
            buf_id: self.buf_id,
            parts,
            partitioner,
            partition_keys: self.blooms.first().map(|b| b.key_cols.clone()),
            next_round_robin: 0,
            keyless_seeded: false,
            blooms: BloomBuild::from_specs(&self.blooms),
            rows: 0,
            metrics: ctx.metrics.clone(),
        }))
    }

    fn writes(&self) -> Vec<ResourceId> {
        let mut w = vec![ResourceId::Buffer(self.buf_id)];
        w.extend(self.blooms.iter().map(|b| ResourceId::Filter(b.filter_id)));
        w
    }

    fn partitioned_merge(&self, ctx: &ExecContext) -> bool {
        ctx.partition_count > 1
    }

    fn make_merger(
        &self,
        states: Vec<Box<dyn Sink>>,
        _ctx: &ExecContext,
    ) -> Result<Box<dyn PartitionMerger>> {
        let mut workers = Vec::with_capacity(states.len());
        for s in states {
            workers.push(*downcast_sink::<BufferSink>(s)?);
        }
        // The states' own layout is authoritative (the factory normalized
        // `ctx.partition_count` when it built them).
        let partitions = workers
            .first()
            .map(|w| w.parts.len())
            .ok_or_else(|| Error::Exec("partitioned merge without sink states".into()))?;
        let blooms: Vec<Vec<BloomBuild>> = workers
            .iter_mut()
            .map(|w| std::mem::take(&mut w.blooms))
            .collect();
        let slots =
            PartitionSlots::transpose(workers.into_iter().map(|w| w.parts).collect(), partitions);
        Ok(Box::new(BufferMerger {
            buf_id: self.buf_id,
            partitions,
            slots,
            blooms: Mutex::new(Some(blooms)),
            max_task_rows: AtomicU64::new(0),
        }))
    }
}

/// Merge plan of a partitioned [`BufferSink`]: task `p` concatenates every
/// worker's partition-`p` run and seals that buffer partition; `finish`
/// OR-merges and publishes the Bloom filters.
struct BufferMerger {
    buf_id: usize,
    partitions: usize,
    slots: PartitionSlots<SpillBuffer>,
    blooms: Mutex<Option<Vec<Vec<BloomBuild>>>>,
    max_task_rows: AtomicU64,
}

impl PartitionMerger for BufferMerger {
    fn partitions(&self) -> usize {
        self.partitions
    }

    fn merge_partition(&self, part: usize, ctx: &ExecContext, res: &Resources) -> Result<()> {
        let mut chunks = Vec::new();
        let mut rows = 0u64;
        for mut buf in self.slots.take(part)? {
            let restored = buf.take_chunks()?;
            record_spill_stats(&ctx.metrics, buf.stats());
            for c in restored {
                rows = rows.saturating_add(c.num_rows() as u64);
                chunks.push(c);
            }
        }
        self.max_task_rows.fetch_max(rows, Ordering::Relaxed);
        res.publish_buffer_partition(self.buf_id, part, chunks)
    }

    fn finish(&self, ctx: &ExecContext, res: &Resources) -> Result<()> {
        let blooms = lock_or_err(&self.blooms, "bloom slot")?
            .take()
            .ok_or_else(|| Error::Exec("buffer merge finished twice".into()))?;
        merge_publish_blooms(blooms, ctx.threads, res)
    }

    fn max_task_rows(&self) -> u64 {
        self.max_task_rows.load(Ordering::Relaxed)
    }

    fn prefetch_parts(&self) -> Vec<usize> {
        (0..self.partitions)
            .filter(|&p| {
                let mut any = false;
                let _ = self.slots.with_slot(p, |bufs| {
                    any = bufs.iter().any(SpillBuffer::has_spilled);
                    Ok(())
                });
                any
            })
            .collect()
    }

    fn prefetch_partition(&self, part: usize, _ctx: &ExecContext) -> Result<()> {
        self.slots.with_slot(part, |bufs| {
            for b in bufs.iter_mut() {
                b.prefetch()?;
            }
            Ok(())
        })
    }
}
