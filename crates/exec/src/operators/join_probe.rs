//! Hash-join probe: one output row per match, appending build-side columns.

use super::{Operator, ResourceId, Resources};
use crate::context::ExecContext;
use rpt_common::{DataChunk, Result, Vector};

pub struct JoinProbe {
    ht_id: usize,
    key_cols: Vec<usize>,
    build_output_cols: Vec<usize>,
}

impl JoinProbe {
    pub fn new(ht_id: usize, key_cols: Vec<usize>, build_output_cols: Vec<usize>) -> JoinProbe {
        JoinProbe {
            ht_id,
            key_cols,
            build_output_cols,
        }
    }
}

impl Operator for JoinProbe {
    fn execute(
        &self,
        chunk: DataChunk,
        ctx: &ExecContext,
        res: &Resources,
    ) -> Result<Option<DataChunk>> {
        let ht = res.hash_table(self.ht_id)?;
        let m = &ctx.metrics;
        m.add(&m.join_probe_in, chunk.num_rows() as u64);
        let mut probe_rows = Vec::new();
        let mut build_refs = Vec::new();
        ht.probe(&chunk, &self.key_cols, &mut probe_rows, &mut build_refs);
        let out_n = probe_rows.len();
        ctx.charge(out_n as u64)?;
        m.add(&m.join_output_rows, out_n as u64);
        // logical → physical probe indices
        let phys: Vec<u32> = probe_rows
            .iter()
            .map(|&l| chunk.physical_index(l as usize) as u32)
            .collect();
        let mut cols: Vec<Vector> = chunk.columns.iter().map(|c| c.take(&phys)).collect();
        for &bc in &self.build_output_cols {
            cols.push(ht.gather(bc, &build_refs));
        }
        Ok(Some(DataChunk::new(cols)))
    }

    fn reads(&self) -> Vec<ResourceId> {
        vec![ResourceId::HashTable(self.ht_id)]
    }
}
