//! Predicate filter: refines the chunk's selection vector.

use super::{Operator, Resources};
use crate::context::ExecContext;
use crate::expr::Expr;
use rpt_common::{DataChunk, Result};

pub struct Filter {
    pred: Expr,
}

impl Filter {
    pub fn new(pred: Expr) -> Filter {
        Filter { pred }
    }
}

impl Operator for Filter {
    fn execute(
        &self,
        mut chunk: DataChunk,
        _ctx: &ExecContext,
        _res: &Resources,
    ) -> Result<Option<DataChunk>> {
        let sel = self.pred.eval_selection(&chunk)?;
        chunk.refine_selection(&sel);
        Ok(Some(chunk))
    }
}
