//! Predicate filter: refines the chunk's selection vector.

use super::{Operator, Resources};
use crate::context::ExecContext;
use crate::expr::Expr;
use rpt_common::{DataChunk, Result};

pub struct Filter {
    pred: Expr,
}

impl Filter {
    pub fn new(pred: Expr) -> Filter {
        Filter { pred }
    }
}

impl Operator for Filter {
    fn execute(
        &self,
        mut chunk: DataChunk,
        _ctx: &ExecContext,
        _res: &Resources,
    ) -> Result<Option<DataChunk>> {
        let sel = self.pred.eval_selection(&chunk)?;
        // When the predicate keeps every logical row, skip the refinement
        // entirely instead of installing a full identity selection vector
        // (one `Vec<u32>` per chunk on selective-free predicates, plus the
        // indirection every downstream operator would then pay).
        if sel.len() < chunk.num_rows() {
            chunk.refine_selection(&sel);
        }
        Ok(Some(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use rpt_common::{ScalarValue, Vector};

    fn run(chunk: DataChunk, pred: Expr) -> DataChunk {
        let ctx = ExecContext::new();
        let res = Resources::new(0, 0, 0);
        Filter::new(pred)
            .execute(chunk, &ctx, &res)
            .unwrap()
            .unwrap()
    }

    /// A predicate that keeps every row must not install an identity
    /// selection vector (the downstream operators would pay the
    /// indirection on every column access).
    #[test]
    fn keep_all_skips_selection_entirely() {
        let chunk = DataChunk::new(vec![Vector::from_i64(vec![1, 2, 3])]);
        let keep_all = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(ScalarValue::Int64(0)));
        let out = run(chunk, keep_all);
        assert!(out.selection.is_none(), "identity selection installed");
        assert_eq!(out.num_rows(), 3);
    }

    /// An existing selection survives untouched when the refinement keeps
    /// every logical row, and still refines when it does not.
    #[test]
    fn existing_selection_preserved_or_refined() {
        let mut chunk = DataChunk::new(vec![Vector::from_i64(vec![1, 2, 3, 4])]);
        chunk.set_selection(vec![1, 3]); // values 2, 4
        let keep_all = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(ScalarValue::Int64(1)));
        let out = run(chunk.clone(), keep_all);
        assert_eq!(out.selection.as_deref(), Some(&[1u32, 3][..]));
        let keep_some = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(ScalarValue::Int64(3)));
        let out = run(chunk, keep_some);
        assert_eq!(out.selection.as_deref(), Some(&[3u32][..]));
        assert_eq!(out.num_rows(), 1);
    }
}
