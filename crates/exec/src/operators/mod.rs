//! The physical operator layer: `Source` / `Operator` / `Sink` traits and
//! one implementation per physical operator.
//!
//! This is the trait-object IR the executor actually runs. The enum specs
//! in [`crate::pipeline`] (`SourceSpec`/`OpSpec`/`SinkSpec`) survive as a
//! thin, declarative compat layer that *lowers* onto these traits; new
//! operators can be added by implementing a trait without touching the
//! enums or the executor loop.
//!
//! Execution model (unchanged from §4.1 of the paper's DuckDB substrate):
//! a pipeline pulls morsels from its [`Source`], pushes them through a
//! chain of streaming [`Operator`]s, and terminates at a [`Sink`] — one
//! sink instance per worker thread, merged via `combine` and published via
//! `finalize`. Cross-pipeline state (materialized buffers, Bloom filters,
//! join hash tables) lives in [`Resources`]: write-once slots that double
//! as the *dependency* vocabulary ([`ResourceId`]) the DAG scheduler uses
//! to decide which pipelines may run concurrently.

pub mod aggregate;
pub mod buffer;
pub mod create_bf;
pub mod filter;
pub mod hash_build;
pub mod join_probe;
pub mod probe_bloom;
pub mod project;
pub mod scan;
pub mod semi_probe;
pub mod sort;

pub use aggregate::{AggregateFactory, AggregateSink};
pub use buffer::BufferSink;
pub use create_bf::{BloomBuild, BloomSink};
pub use filter::Filter;
pub use hash_build::HashBuildSink;
pub use join_probe::JoinProbe;
pub use probe_bloom::ProbeBloom;
pub use project::Project;
pub use scan::{BufferScan, ScanPrune, TableScan};
pub use semi_probe::SemiProbe;
pub use sort::{cmp_scalar_rows, SortKey, SortSink, SortSinkFactory};

use crate::context::ExecContext;
use crate::hash_table::PartitionedHashTable;
use rpt_bloom::BloomFilter;
use rpt_common::{DataChunk, Error, Partitioner, Result, Vector};
use std::any::Any;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};

/// Identifier of a cross-pipeline resource: what a pipeline reads or
/// writes. The planner's `PhysicalPlan` records these per pipeline and the
/// scheduler derives the execution DAG from them.
///
/// Buffers exist at two granularities. `Buffer(id)` names the whole
/// buffer; `BufferPart(id, p)` names one hash partition of it — the grain
/// the *global* scheduler tracks, so a consumer's tasks for partition `p`
/// become runnable the moment the producer's merge task seals `p`, while
/// the producer is still merging its other partitions.
/// [`expand_partition_grains`] rewrites whole-buffer ids into their
/// partition grains; the planner records the expanded form in the
/// `PhysicalPlan` IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// A materialized chunk buffer (`CreateBF` output, collect sinks, …).
    Buffer(usize),
    /// One sealed hash partition of a buffer (partition-granular grain).
    BufferPart(usize, usize),
    /// A Bloom filter built by a CreateBF / BloomJoin build sink.
    Filter(usize),
    /// A join hash table.
    HashTable(usize),
}

/// Rewrite whole-buffer resource ids into per-partition grains:
/// `Buffer(b)` becomes `BufferPart(b, 0..partitions)`; everything else
/// (and already-granular ids) passes through. Idempotent, sorted, deduped.
pub fn expand_partition_grains(ids: &[ResourceId], partitions: usize) -> Vec<ResourceId> {
    let partitions = partitions.max(1);
    let mut out = Vec::with_capacity(ids.len());
    for &id in ids {
        match id {
            ResourceId::Buffer(b) => {
                out.extend((0..partitions).map(|p| ResourceId::BufferPart(b, p)))
            }
            other => out.push(other),
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Chunks are stored and handed to consumers behind per-chunk `Arc`s so
/// assembling a partitioned buffer's whole view (and morsel claiming in
/// general) clones pointers, never column payloads.
pub type ChunkList = Vec<Arc<DataChunk>>;

/// One buffer resource, stored as per-partition write-once slots so the
/// parallel merge tasks of a partitioned sink can seal their partition as
/// soon as it is merged, without waiting on the other partitions.
struct BufferSlot {
    parts: Vec<OnceLock<Arc<ChunkList>>>,
    /// Lazily concatenated whole-buffer view (partition order), built the
    /// first time a consumer asks for the full buffer.
    assembled: OnceLock<Arc<ChunkList>>,
}

impl BufferSlot {
    fn new(partitions: usize) -> BufferSlot {
        BufferSlot {
            parts: (0..partitions).map(|_| OnceLock::new()).collect(),
            assembled: OnceLock::new(),
        }
    }
}

/// Shadow log of resource accesses actually performed during execution,
/// kept at partition grain (whole-buffer reads expand to every partition
/// grain). Enabled only in verify mode; after the run the observed sets
/// are reconciled against the plan's *declared* `NodeDeps` — any observed
/// access missing from the declaration means the scheduler could have
/// raced it.
#[derive(Debug, Default)]
pub struct AccessLog {
    reads: Mutex<BTreeSet<ResourceId>>,
    writes: Mutex<BTreeSet<ResourceId>>,
}

impl AccessLog {
    fn record(set: &Mutex<BTreeSet<ResourceId>>, id: ResourceId) {
        if let Ok(mut s) = set.lock() {
            s.insert(id);
        }
    }

    /// Snapshot of the observed (reads, writes), sorted.
    pub fn observed(&self) -> (Vec<ResourceId>, Vec<ResourceId>) {
        let reads = self
            .reads
            .lock()
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let writes = self
            .writes
            .lock()
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        (reads, writes)
    }
}

/// Write-once shared state produced and consumed by pipelines.
///
/// Every slot is an [`OnceLock`]: producers publish exactly once in their
/// sink's `finalize` (partitioned sinks publish each buffer partition from
/// its own merge task), consumers resolve at probe time. The scheduler
/// guarantees producers complete before consumers start, so a failed
/// lookup is a planning bug and surfaces as `Error::Exec`.
pub struct Resources {
    partitions: usize,
    buffers: Vec<BufferSlot>,
    filters: Vec<OnceLock<Arc<BloomFilter>>>,
    tables: Vec<OnceLock<Arc<PartitionedHashTable>>>,
    access_log: Option<AccessLog>,
}

impl Resources {
    /// Unpartitioned resource slots (partition count 1).
    pub fn new(num_buffers: usize, num_filters: usize, num_tables: usize) -> Resources {
        Resources::with_partitions(num_buffers, num_filters, num_tables, 1)
    }

    /// Resource slots with `partitions` per-partition buffer slots each
    /// (normalized to a power of two).
    pub fn with_partitions(
        num_buffers: usize,
        num_filters: usize,
        num_tables: usize,
        partitions: usize,
    ) -> Resources {
        let partitions = rpt_common::normalize_partition_count(partitions);
        Resources {
            partitions,
            buffers: (0..num_buffers)
                .map(|_| BufferSlot::new(partitions))
                .collect(),
            filters: (0..num_filters).map(|_| OnceLock::new()).collect(),
            tables: (0..num_tables).map(|_| OnceLock::new()).collect(),
            access_log: None,
        }
    }

    /// Start recording every resource access into a shadow [`AccessLog`]
    /// (verify mode). Must be called before the resources are shared.
    pub fn with_access_log(mut self) -> Resources {
        self.access_log = Some(AccessLog::default());
        self
    }

    /// The shadow access log, when verify mode enabled it.
    pub fn access_log(&self) -> Option<&AccessLog> {
        self.access_log.as_ref()
    }

    fn log_read(&self, id: ResourceId) {
        if let Some(log) = &self.access_log {
            AccessLog::record(&log.reads, id);
        }
    }

    fn log_write(&self, id: ResourceId) {
        if let Some(log) = &self.access_log {
            AccessLog::record(&log.writes, id);
        }
    }

    /// Log a whole-buffer access as every partition grain of `id`.
    fn log_buffer(&self, set_writes: bool, id: usize) {
        if self.access_log.is_some() {
            for p in 0..self.partitions {
                let grain = ResourceId::BufferPart(id, p);
                if set_writes {
                    self.log_write(grain);
                } else {
                    self.log_read(grain);
                }
            }
        }
    }

    /// The per-buffer partition count.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The whole buffer: its partitions concatenated in partition order
    /// (chunk `Arc`s cloned, payloads shared with the partition slots).
    pub fn buffer(&self, id: usize) -> Result<Arc<ChunkList>> {
        self.log_buffer(false, id);
        let slot = self
            .buffers
            .get(id)
            .ok_or_else(|| Error::Exec(format!("buffer slot {id} out of range")))?;
        if slot.parts.len() == 1 {
            return slot.parts[0]
                .get()
                .cloned()
                .ok_or_else(|| Error::Exec(format!("buffer {id} not materialized")));
        }
        if let Some(all) = slot.assembled.get() {
            return Ok(all.clone());
        }
        let mut all = Vec::new();
        for (p, part) in slot.parts.iter().enumerate() {
            let chunks = part.get().ok_or_else(|| {
                Error::Exec(format!("buffer {id} partition {p} not materialized"))
            })?;
            all.extend(chunks.iter().cloned());
        }
        // A racing consumer may have assembled concurrently; both built the
        // same value, so whichever `set` wins serves everyone.
        Ok(slot.assembled.get_or_init(|| Arc::new(all)).clone())
    }

    /// One sealed partition of a buffer.
    pub fn buffer_partition(&self, id: usize, part: usize) -> Result<Arc<ChunkList>> {
        self.log_read(ResourceId::BufferPart(id, part));
        self.buffers
            .get(id)
            .and_then(|b| b.parts.get(part))
            .and_then(|p| p.get().cloned())
            .ok_or_else(|| Error::Exec(format!("buffer {id} partition {part} not materialized")))
    }

    pub fn buffer_rows(&self, id: usize) -> u64 {
        self.buffers.get(id).map_or(0, |slot| {
            slot.parts
                .iter()
                .filter_map(|p| p.get())
                .flat_map(|chunks| chunks.iter())
                .map(|c| c.num_rows() as u64)
                .sum()
        })
    }

    pub fn filter(&self, id: usize) -> Result<Arc<BloomFilter>> {
        self.log_read(ResourceId::Filter(id));
        self.filters
            .get(id)
            .and_then(|f| f.get().cloned())
            .ok_or_else(|| Error::Exec(format!("bloom filter {id} not built")))
    }

    pub fn hash_table(&self, id: usize) -> Result<Arc<PartitionedHashTable>> {
        self.log_read(ResourceId::HashTable(id));
        self.tables
            .get(id)
            .and_then(|t| t.get().cloned())
            .ok_or_else(|| Error::Exec(format!("hash table {id} not built")))
    }

    /// Publish a whole buffer at once (unpartitioned sinks; with more than
    /// one partition slot the chunks land in partition 0 and the remaining
    /// partitions are sealed empty).
    pub fn publish_buffer(&self, id: usize, chunks: Vec<DataChunk>) -> Result<()> {
        self.log_buffer(true, id);
        let slot = self
            .buffers
            .get(id)
            .ok_or_else(|| Error::Exec(format!("buffer slot {id} out of range")))?;
        slot.parts[0]
            .set(Arc::new(chunks.into_iter().map(Arc::new).collect()))
            .map_err(|_| Error::Exec(format!("buffer {id} published twice")))?;
        for part in &slot.parts[1..] {
            part.set(Arc::new(Vec::new()))
                .map_err(|_| Error::Exec(format!("buffer {id} published twice")))?;
        }
        Ok(())
    }

    /// Seal one partition of a buffer (called by parallel merge tasks).
    pub fn publish_buffer_partition(
        &self,
        id: usize,
        part: usize,
        chunks: Vec<DataChunk>,
    ) -> Result<()> {
        self.log_write(ResourceId::BufferPart(id, part));
        self.buffers
            .get(id)
            .ok_or_else(|| Error::Exec(format!("buffer slot {id} out of range")))?
            .parts
            .get(part)
            .ok_or_else(|| Error::Exec(format!("buffer {id} partition {part} out of range")))?
            .set(Arc::new(chunks.into_iter().map(Arc::new).collect()))
            .map_err(|_| Error::Exec(format!("buffer {id} partition {part} published twice")))
    }

    pub fn publish_filter(&self, id: usize, filter: BloomFilter) -> Result<()> {
        self.log_write(ResourceId::Filter(id));
        self.filters
            .get(id)
            .ok_or_else(|| Error::Exec(format!("filter slot {id} out of range")))?
            .set(Arc::new(filter))
            .map_err(|_| Error::Exec(format!("bloom filter {id} published twice")))
    }

    pub fn publish_table(&self, id: usize, table: PartitionedHashTable) -> Result<()> {
        self.log_write(ResourceId::HashTable(id));
        self.tables
            .get(id)
            .ok_or_else(|| Error::Exec(format!("hash table slot {id} out of range")))?
            .set(Arc::new(table))
            .map_err(|_| Error::Exec(format!("hash table {id} published twice")))
    }
}

/// Where a pipeline's morsels come from (`GetData`).
pub trait Source: Send + Sync {
    /// The materialized chunks workers will claim morsel-style. `ctx`
    /// carries read-path configuration (e.g. `storage_encoding`) and the
    /// metrics sink for scan-side counters.
    fn chunks(&self, ctx: &ExecContext, res: &Resources) -> Result<Arc<ChunkList>>;

    /// Resources this source depends on.
    fn reads(&self) -> Vec<ResourceId> {
        Vec::new()
    }

    /// The buffer this source can read partition-by-partition, if any.
    /// Sources reporting `Some(buf)` let the global scheduler start the
    /// pipeline's morsels for partition `p` as soon as the producer seals
    /// `p` (a partition-scoped morsel stream via [`Source::partition_chunks`]),
    /// instead of waiting for the whole buffer.
    fn partitioned_input(&self) -> Option<usize> {
        None
    }

    /// Morsels of one input partition; only called for sources reporting
    /// [`Source::partitioned_input`], with `part` already sealed.
    fn partition_chunks(
        &self,
        ctx: &ExecContext,
        res: &Resources,
        part: usize,
    ) -> Result<Arc<ChunkList>> {
        let _ = part;
        self.chunks(ctx, res)
    }
}

/// A streaming (non-breaking) operator (`Execute`).
pub trait Operator: Send + Sync {
    /// Push one chunk through; `None` means it was filtered to nothing.
    fn execute(
        &self,
        chunk: DataChunk,
        ctx: &ExecContext,
        res: &Resources,
    ) -> Result<Option<DataChunk>>;

    /// Resources this operator probes.
    fn reads(&self) -> Vec<ResourceId> {
        Vec::new()
    }
}

/// Per-thread sink state (`Sink` / `Combine` / `Finalize`).
pub trait Sink: Send + Any {
    /// Consume one chunk on a worker thread.
    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()>;

    /// Consume one chunk already known to belong wholly to hash partition
    /// `part` (the `Preserve` route: the producer's distribution matches
    /// this sink's, so the driver hands over whole partition-`p` chunks and
    /// the sink may skip its `key_hashes` + scatter step). The default
    /// falls back to the radix [`Sink::sink`] path, which is always
    /// correct; partitioned sinks override it to route directly.
    fn sink_part(&mut self, chunk: DataChunk, part: usize, ctx: &ExecContext) -> Result<()> {
        let _ = part;
        self.sink(chunk, ctx)
    }

    /// Merge another worker's state (same concrete type) into this one.
    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()>;

    /// Rows that have entered this sink (for the intermediate-tuple metric).
    fn rows(&self) -> u64;

    /// Publish the merged result into the shared [`Resources`].
    fn finalize(self: Box<Self>, res: &Resources) -> Result<()>;

    /// Downcast support for [`Sink::combine`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Builds one [`Sink`] per worker thread and declares what the pipeline
/// publishes. All three materializing sinks (buffer/CreateBF, hash build,
/// aggregate) opt into the partitioned merge path when
/// `ctx.partition_count > 1`.
pub trait SinkFactory: Send + Sync {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>>;

    /// Resources the sink publishes in `finalize`.
    fn writes(&self) -> Vec<ResourceId>;

    /// Does this sink write hash-partitioned runs that the driver should
    /// merge per-partition in parallel via a [`PartitionMerger`]? When
    /// `false` the driver uses the serial `Combine` + `Finalize` path.
    fn partitioned_merge(&self, _ctx: &ExecContext) -> bool {
        false
    }

    /// Turn the workers' partitioned sink states into a merge plan whose
    /// per-partition tasks the *caller* schedules — on the global worker
    /// pool, or on the same scoped workers that ran the morsels. No fresh
    /// thread scope is spawned for the merge.
    fn make_merger(
        &self,
        _states: Vec<Box<dyn Sink>>,
        _ctx: &ExecContext,
    ) -> Result<Box<dyn PartitionMerger>> {
        Err(Error::Exec(
            "sink does not implement a partitioned merge".into(),
        ))
    }

    /// Standalone partitioned merge: build the merger, run every partition
    /// task on the calling thread, finish, and record merge stats. The
    /// pipeline drivers schedule the merger's tasks on their own workers
    /// instead; this entry point serves direct sink harnesses (tests,
    /// benchmarks).
    fn merge_partitioned(
        &self,
        label: &str,
        states: Vec<Box<dyn Sink>>,
        ctx: &ExecContext,
        res: &Resources,
    ) -> Result<()> {
        let merger = self.make_merger(states, ctx)?;
        for p in 0..merger.partitions() {
            merger.merge_partition(p, ctx, res)?;
        }
        merger.finish(ctx, res)?;
        ctx.metrics
            .record_merge(label, merger.partitions() as u64, merger.max_task_rows());
        Ok(())
    }
}

/// A partitioned sink's merge plan: one independent task per partition plus
/// a final publication step, created once every worker's [`Sink`] state has
/// been collected.
///
/// Contract: `merge_partition(p)` is called exactly once per partition, in
/// any order, from any thread — each call seals partition `p`'s resources
/// (e.g. via [`Resources::publish_buffer_partition`]) without touching any
/// other partition, which is what lets consumers start on `p` immediately.
/// `finish` runs after *all* partition tasks and publishes the
/// whole-resource results (Bloom filters, the assembled hash table).
pub trait PartitionMerger: Send + Sync {
    /// Number of partition merge tasks.
    fn partitions(&self) -> usize;

    /// Merge and seal one partition.
    fn merge_partition(&self, part: usize, ctx: &ExecContext, res: &Resources) -> Result<()>;

    /// Publish everything that needs all partitions merged first.
    fn finish(&self, ctx: &ExecContext, res: &Resources) -> Result<()>;

    /// Rows handled by the largest partition task so far.
    fn max_task_rows(&self) -> u64;

    /// Partitions whose sink states hold spilled runs worth prefetching on
    /// a `SpillIo` pool task before [`Self::merge_partition`] runs. The
    /// default (no spill awareness) schedules no prefetch tasks.
    fn prefetch_parts(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Read+decode partition `part`'s spilled runs ahead of its merge (the
    /// `SpillIo` task body). Must be safe to race with `merge_partition`:
    /// whichever takes the partition slot first wins, the loser no-ops.
    fn prefetch_partition(&self, part: usize, ctx: &ExecContext) -> Result<()> {
        let _ = (part, ctx);
        Ok(())
    }
}

/// Per-partition payloads handed to the parallel merge tasks: slot `p`
/// holds every worker's partition-`p` state, taken exactly once by the
/// task that merges partition `p`.
pub(crate) struct PartitionSlots<T>(Vec<Mutex<Option<Vec<T>>>>);

impl<T> PartitionSlots<T> {
    /// Transpose worker-major state (`per_worker[w][p]`) into
    /// partition-major slots.
    pub(crate) fn transpose(per_worker: Vec<Vec<T>>, partitions: usize) -> PartitionSlots<T> {
        let mut per_part: Vec<Vec<T>> = (0..partitions)
            .map(|_| Vec::with_capacity(per_worker.len()))
            .collect();
        for worker in per_worker {
            debug_assert_eq!(worker.len(), partitions);
            for (p, state) in worker.into_iter().enumerate() {
                per_part[p].push(state);
            }
        }
        PartitionSlots(per_part.into_iter().map(|v| Mutex::new(Some(v))).collect())
    }

    /// Take partition `p`'s payloads (errors if taken twice — the merge
    /// contract calls each partition exactly once).
    pub(crate) fn take(&self, p: usize) -> Result<Vec<T>> {
        lock_or_err(&self.0[p], "partition slot")?
            .take()
            .ok_or_else(|| Error::Exec(format!("partition {p} payload taken twice")))
    }

    /// Run `f` over partition `p`'s payloads *in place* while holding the
    /// slot lock (the SpillIo prefetch path). A no-op when the slot was
    /// already taken by its merge task — the benign prefetch/merge race.
    pub(crate) fn with_slot(
        &self,
        p: usize,
        f: impl FnOnce(&mut Vec<T>) -> Result<()>,
    ) -> Result<()> {
        let mut guard = lock_or_err(&self.0[p], "partition slot")?;
        match guard.as_mut() {
            Some(v) => f(v),
            None => Ok(()),
        }
    }
}

/// Fold one buffer's [`rpt_storage::SpillStats`] into the query's
/// `spill_*` metrics family. Called wherever a `SpillBuffer` is consumed
/// (per-partition merge tasks, serial finalizes) so the counters cover
/// every spill path.
pub(crate) fn record_spill_stats(metrics: &crate::context::Metrics, st: rpt_storage::SpillStats) {
    if st.encoded_bytes_spilled > 0 {
        metrics.add(
            &metrics.spill_bytes_written,
            st.encoded_bytes_spilled as u64,
        );
        // Gauge: decoded bytes per 100 encoded bytes (200 = halved).
        metrics.max_update(
            &metrics.spill_compression_ratio_pct,
            (st.bytes_spilled as u64).saturating_mul(100) / (st.encoded_bytes_spilled as u64),
        );
    }
    metrics.add(&metrics.spill_bytes_read, st.bytes_read as u64);
    metrics.add(&metrics.spill_prefetch_hits, st.prefetch_hits as u64);
    metrics.add(&metrics.spill_prefetch_misses, st.prefetch_misses as u64);
    metrics.add(&metrics.spill_victim_evictions, st.victim_evictions as u64);
}

/// Lock a mutex, surfacing poisoning as an execution error instead of a
/// panic — operator code must stay panic-free (`cargo xtask lint` rule A).
pub(crate) fn lock_or_err<'a, T>(
    m: &'a Mutex<T>,
    what: &str,
) -> Result<std::sync::MutexGuard<'a, T>> {
    m.lock()
        .map_err(|_| Error::Exec(format!("{what} lock poisoned")))
}

/// Verifier-mode check that every row of a Preserve-routed chunk really
/// hashes into partition `part` — the runtime half of the repartition
/// elision proof. No-op when verification is off; in `Warn` mode a
/// violation is reported (stderr + pipeline trace) and execution
/// continues; in `Strict` mode it fails the query.
pub(crate) fn check_partition_hashes(
    hashes: &[u64],
    partitioner: &Partitioner,
    part: usize,
    ctx: &ExecContext,
) -> Result<()> {
    ctx.metrics.add(&ctx.metrics.verify_checks_run, 1);
    if hashes.iter().all(|&h| partitioner.of_hash(h) == part) {
        return Ok(());
    }
    let msg = format!("Preserve-routed chunk has rows outside partition {part}");
    if ctx.verify.strict() {
        return Err(Error::Exec(msg));
    }
    eprintln!("[rpt-verify] {msg}");
    ctx.metrics.trace_entry(format!("[verify] {msg}"), 1);
    Ok(())
}

/// [`check_partition_hashes`] from key columns, skipping the hash
/// computation entirely when verification is off.
pub(crate) fn check_partition_route(
    chunk: &DataChunk,
    key_cols: &[usize],
    partitioner: &Partitioner,
    part: usize,
    ctx: &ExecContext,
) -> Result<()> {
    if !ctx.verify.enabled() {
        return Ok(());
    }
    check_partition_hashes(&key_hashes(chunk, key_cols), partitioner, part, ctx)
}

/// Downcast `other` to `S` for a `combine`, with a uniform error.
pub(crate) fn downcast_sink<S: Sink>(other: Box<dyn Sink>) -> Result<Box<S>> {
    other
        .into_any()
        .downcast::<S>()
        .map_err(|_| Error::Exec("combining mismatched sink states".into()))
}

/// Vectorized key hashes over the logical rows of a chunk, computed
/// straight from the typed payloads (no gathered copy of the key columns).
pub(crate) fn key_hashes(chunk: &DataChunk, key_cols: &[usize]) -> Vec<u64> {
    let refs: Vec<&Vector> = key_cols.iter().map(|&k| &chunk.columns[k]).collect();
    rpt_common::hash::hash_columns_sel(&refs, chunk.selection.as_deref(), chunk.num_rows())
}
