//! The physical operator layer: `Source` / `Operator` / `Sink` traits and
//! one implementation per physical operator.
//!
//! This is the trait-object IR the executor actually runs. The enum specs
//! in [`crate::pipeline`] (`SourceSpec`/`OpSpec`/`SinkSpec`) survive as a
//! thin, declarative compat layer that *lowers* onto these traits; new
//! operators can be added by implementing a trait without touching the
//! enums or the executor loop.
//!
//! Execution model (unchanged from §4.1 of the paper's DuckDB substrate):
//! a pipeline pulls morsels from its [`Source`], pushes them through a
//! chain of streaming [`Operator`]s, and terminates at a [`Sink`] — one
//! sink instance per worker thread, merged via `combine` and published via
//! `finalize`. Cross-pipeline state (materialized buffers, Bloom filters,
//! join hash tables) lives in [`Resources`]: write-once slots that double
//! as the *dependency* vocabulary ([`ResourceId`]) the DAG scheduler uses
//! to decide which pipelines may run concurrently.

pub mod aggregate;
pub mod buffer;
pub mod create_bf;
pub mod filter;
pub mod hash_build;
pub mod join_probe;
pub mod probe_bloom;
pub mod project;
pub mod scan;
pub mod semi_probe;

pub use aggregate::AggregateSink;
pub use buffer::BufferSink;
pub use create_bf::{BloomBuild, BloomSink};
pub use filter::Filter;
pub use hash_build::HashBuildSink;
pub use join_probe::JoinProbe;
pub use probe_bloom::ProbeBloom;
pub use project::Project;
pub use scan::{BufferScan, TableScan};
pub use semi_probe::SemiProbe;

use crate::context::ExecContext;
use crate::hash_table::JoinHashTable;
use rpt_bloom::BloomFilter;
use rpt_common::{DataChunk, Error, Result, Vector};
use std::any::Any;
use std::sync::{Arc, OnceLock};

/// Identifier of a cross-pipeline resource: what a pipeline reads or
/// writes. The planner's `PhysicalPlan` records these per pipeline and the
/// scheduler derives the execution DAG from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// A materialized chunk buffer (`CreateBF` output, collect sinks, …).
    Buffer(usize),
    /// A Bloom filter built by a CreateBF / BloomJoin build sink.
    Filter(usize),
    /// A join hash table.
    HashTable(usize),
}

/// Write-once shared state produced and consumed by pipelines.
///
/// Every slot is an [`OnceLock`]: producers publish exactly once in their
/// sink's `finalize`, consumers resolve at probe time. The scheduler
/// guarantees producers complete before consumers start, so a failed
/// lookup is a planning bug and surfaces as `Error::Exec`.
pub struct Resources {
    buffers: Vec<OnceLock<Arc<Vec<DataChunk>>>>,
    filters: Vec<OnceLock<Arc<BloomFilter>>>,
    tables: Vec<OnceLock<Arc<JoinHashTable>>>,
}

impl Resources {
    pub fn new(num_buffers: usize, num_filters: usize, num_tables: usize) -> Resources {
        Resources {
            buffers: (0..num_buffers).map(|_| OnceLock::new()).collect(),
            filters: (0..num_filters).map(|_| OnceLock::new()).collect(),
            tables: (0..num_tables).map(|_| OnceLock::new()).collect(),
        }
    }

    pub fn buffer(&self, id: usize) -> Result<Arc<Vec<DataChunk>>> {
        self.buffers
            .get(id)
            .and_then(|b| b.get().cloned())
            .ok_or_else(|| Error::Exec(format!("buffer {id} not materialized")))
    }

    pub fn buffer_rows(&self, id: usize) -> u64 {
        self.buffers
            .get(id)
            .and_then(|b| b.get())
            .map_or(0, |chunks| chunks.iter().map(|c| c.num_rows() as u64).sum())
    }

    pub fn filter(&self, id: usize) -> Result<Arc<BloomFilter>> {
        self.filters
            .get(id)
            .and_then(|f| f.get().cloned())
            .ok_or_else(|| Error::Exec(format!("bloom filter {id} not built")))
    }

    pub fn hash_table(&self, id: usize) -> Result<Arc<JoinHashTable>> {
        self.tables
            .get(id)
            .and_then(|t| t.get().cloned())
            .ok_or_else(|| Error::Exec(format!("hash table {id} not built")))
    }

    pub fn publish_buffer(&self, id: usize, chunks: Vec<DataChunk>) -> Result<()> {
        self.buffers
            .get(id)
            .ok_or_else(|| Error::Exec(format!("buffer slot {id} out of range")))?
            .set(Arc::new(chunks))
            .map_err(|_| Error::Exec(format!("buffer {id} published twice")))
    }

    pub fn publish_filter(&self, id: usize, filter: BloomFilter) -> Result<()> {
        self.filters
            .get(id)
            .ok_or_else(|| Error::Exec(format!("filter slot {id} out of range")))?
            .set(Arc::new(filter))
            .map_err(|_| Error::Exec(format!("bloom filter {id} published twice")))
    }

    pub fn publish_table(&self, id: usize, table: JoinHashTable) -> Result<()> {
        self.tables
            .get(id)
            .ok_or_else(|| Error::Exec(format!("hash table slot {id} out of range")))?
            .set(Arc::new(table))
            .map_err(|_| Error::Exec(format!("hash table {id} published twice")))
    }
}

/// Where a pipeline's morsels come from (`GetData`).
pub trait Source: Send + Sync {
    /// The materialized chunks workers will claim morsel-style.
    fn chunks(&self, res: &Resources) -> Result<Arc<Vec<DataChunk>>>;

    /// Resources this source depends on.
    fn reads(&self) -> Vec<ResourceId> {
        Vec::new()
    }
}

/// A streaming (non-breaking) operator (`Execute`).
pub trait Operator: Send + Sync {
    /// Push one chunk through; `None` means it was filtered to nothing.
    fn execute(
        &self,
        chunk: DataChunk,
        ctx: &ExecContext,
        res: &Resources,
    ) -> Result<Option<DataChunk>>;

    /// Resources this operator probes.
    fn reads(&self) -> Vec<ResourceId> {
        Vec::new()
    }
}

/// Per-thread sink state (`Sink` / `Combine` / `Finalize`).
pub trait Sink: Send + Any {
    /// Consume one chunk on a worker thread.
    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()>;

    /// Merge another worker's state (same concrete type) into this one.
    fn combine(&mut self, other: Box<dyn Sink>) -> Result<()>;

    /// Rows that have entered this sink (for the intermediate-tuple metric).
    fn rows(&self) -> u64;

    /// Publish the merged result into the shared [`Resources`].
    fn finalize(self: Box<Self>, res: &Resources) -> Result<()>;

    /// Downcast support for [`Sink::combine`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Builds one [`Sink`] per worker thread and declares what the pipeline
/// publishes.
pub trait SinkFactory: Send + Sync {
    fn make(&self, ctx: &ExecContext) -> Result<Box<dyn Sink>>;

    /// Resources the sink publishes in `finalize`.
    fn writes(&self) -> Vec<ResourceId>;
}

/// Downcast `other` to `S` for a `combine`, with a uniform error.
pub(crate) fn downcast_sink<S: Sink>(other: Box<dyn Sink>) -> Result<Box<S>> {
    other
        .into_any()
        .downcast::<S>()
        .map_err(|_| Error::Exec("combining mismatched sink states".into()))
}

/// Gather key columns over the logical rows of a chunk.
pub(crate) fn gather_keys(chunk: &DataChunk, key_cols: &[usize]) -> Vec<Vector> {
    key_cols
        .iter()
        .map(|&k| match &chunk.selection {
            Some(sel) => chunk.columns[k].take(sel),
            None => chunk.columns[k].clone(),
        })
        .collect()
}

/// Vectorized key hashes over the logical rows of a chunk.
pub(crate) fn key_hashes(chunk: &DataChunk, key_cols: &[usize]) -> Vec<u64> {
    let gathered = gather_keys(chunk, key_cols);
    let refs: Vec<&Vector> = gathered.iter().collect();
    rpt_common::hash::hash_columns(&refs, chunk.num_rows())
}
