//! The global morsel-driven scheduler: one worker pool, one task queue,
//! partition-granular readiness.
//!
//! The scoped scheduler ([`crate::scheduler`]) layers two thread pools —
//! `pipeline_parallelism` DAG workers, each spawning its own morsel scope —
//! so thread counts multiply and a downstream pipeline cannot start until
//! its entire input buffer is published. This module replaces both levels:
//! every pipeline decomposes into *tasks* (source-morsel claims, one merge
//! task per sink partition, a finalize) and a single pool of
//! [`ExecContext::workers`] threads drains them all from one queue.
//!
//! Readiness is tracked by an **event-count dependency graph** over
//! partition-granular grains ([`ResourceId::BufferPart`]): a pipeline's
//! streaming-operator reads (Bloom filters, hash tables) gate the pipeline
//! as a whole, while its source-buffer reads gate *per partition* — the
//! consumer's morsel tasks for partition `p` are enqueued the moment the
//! producer's merge task seals `p`, so producer merge and consumer probe
//! overlap instead of barriering (`sched_overlap_tasks` counts these).
//! This is sink-agnostic: buffer, hash-build, and aggregate (GROUP BY)
//! merges all run as `Merge { pipe, part }` tasks, and an aggregate's
//! sealed group partitions feed consumers exactly like collect buffers.
//!
//! Determinism: with `ctx.threads == 1` (the paper's default) each
//! pipeline runs as an *ordered chain* — one morsel task at a time,
//! partitions in index order — which consumes chunks in exactly the order
//! the scoped single-threaded driver does, so results (including float
//! aggregation order) are bit-identical across schedulers. With
//! `ctx.threads > 1` morsels fan out and only multiset/ulp-level
//! determinism is guaranteed, as in the scoped scheduler.

use crate::context::{ExecContext, SchedulerKind};
use crate::operators::{PartitionMerger, ResourceId, Resources, Sink};
use crate::pipeline::{
    combine_finalize, push_through, record_pipeline_rows, PhysicalPipeline, PipelinePlan, RouteMode,
};
use crate::scheduler::{build_dag, check_acyclic, NodeDeps, SchedulerStats};
use rpt_common::{Error, Result};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// What the global scheduler observed while running a query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalStats {
    /// Number of pipelines executed.
    pub pipelines: usize,
    /// Pipelines with at least one runnable task at the start.
    pub initially_ready: usize,
    /// Peak number of workers executing tasks simultaneously.
    pub max_parallel: usize,
    /// Tasks executed (opens + morsels + merge setup + merges + finishes).
    pub tasks: u64,
    /// Morsel tasks among them.
    pub morsel_tasks: u64,
    /// Per-partition merge tasks among them.
    pub merge_tasks: u64,
    /// Consumer partition tasks that started while their producer pipeline
    /// had not yet sealed all partitions — the partition-overlap win.
    pub overlap_tasks: u64,
    /// Deepest the task queue ever got.
    pub max_queue_depth: usize,
    /// Σ nanoseconds workers spent inside tasks.
    pub busy_nanos: u64,
    /// Wall nanoseconds of the whole run (one shared clock).
    pub wall_nanos: u64,
    /// Thread-lifetime wall nanoseconds summed over the workers — the
    /// denominator of `busy / wall` utilization, honest even when some
    /// workers only steal or idle.
    pub worker_wall_nanos: u64,
    /// Worker-pool size used.
    pub workers: usize,
    /// Tasks a worker popped from its own deque (stealing mode).
    pub local_hits: u64,
    /// Tasks taken from another worker's deque (stealing mode).
    pub steals: u64,
    /// Tasks enqueued into the high-priority band because the grains they
    /// seal have registered waiters (stealing mode).
    pub priority_promotions: u64,
}

/// One schedulable unit on the global queue.
#[derive(Debug, Clone, Copy)]
enum Task {
    /// Resolve one source partition group's chunk list, then fan out its
    /// morsel tasks.
    Open { pipe: usize, group: usize },
    /// Claim chunks of one group morsel-style into a thread-local sink.
    Morsel { pipe: usize, group: usize },
    /// Collect worker states; build the partition merger or run the serial
    /// Combine + Finalize.
    MergeSetup { pipe: usize },
    /// Merge and seal one sink partition (fires that partition's grains).
    Merge { pipe: usize, part: usize },
    /// Prefetch one partition's spilled runs from disk into memory so the
    /// later `Merge` task restores from cache. Always low-band: it is pure
    /// I/O overlap, never on the critical path, and touches no resource
    /// grains (the slot mutex serializes it against the merge).
    SpillIo { pipe: usize, part: usize },
    /// Publish whole-resource results after all partition merges.
    Finish { pipe: usize },
}

/// Who a grain event wakes.
#[derive(Debug, Clone, Copy)]
enum Waiter {
    /// Decrement the pipeline's base wait (streaming-operator reads).
    Base(usize),
    /// Decrement one source partition group's wait.
    Group { pipe: usize, group: usize },
}

/// Static, per-pipeline scheduling facts derived from the lowered pipeline
/// and its (partition-granular) dependency record.
struct PipeInfo {
    /// Source partition groups (== resource partitions for buffer sources).
    groups: usize,
    /// Pipelines writing the source buffer (for the overlap counter).
    source_producers: Vec<usize>,
    /// Buffers this pipeline's sink writes (partition grains fired per
    /// merge task).
    buffers_written: Vec<usize>,
    /// Non-buffer grains (filters, hash tables) fired at completion.
    other_write_grains: Vec<ResourceId>,
    /// Does the sink merge per-partition?
    partitioned: bool,
}

/// Mutable per-pipeline progress, guarded by the scheduler mutex.
struct PipeState {
    /// Unfired producer events gating the pipeline as a whole.
    base_wait: usize,
    open: bool,
    /// Unfired producer events per source partition group.
    group_wait: Vec<usize>,
    started: Vec<bool>,
    /// In-flight open/morsel tasks per group.
    group_tasks: Vec<usize>,
    groups_done: usize,
    /// Total in-flight open/morsel tasks.
    in_flight: usize,
    /// Ordered-chain cursor (`ctx.threads == 1`): next partition to run.
    ordered_next: usize,
    merge_left: usize,
    merge_setup: bool,
    completed: bool,
}

/// Lock-free-ish runtime data tasks touch outside the scheduler mutex.
struct PipeRuntime {
    groups: Vec<OnceLock<GroupRun>>,
    /// Reusable thread-local sink states; doubles as the collection point
    /// for `MergeSetup`.
    idle_states: Mutex<Vec<Box<dyn Sink>>>,
    merger: OnceLock<Arc<Box<dyn PartitionMerger>>>,
}

struct GroupRun {
    chunks: Arc<crate::operators::ChunkList>,
    next: AtomicUsize,
}

/// A two-band task deque: the `high` band holds merge/finish tasks whose
/// sealed grains have registered waiters (they unblock other pipelines),
/// and drains before `low` everywhere it is consulted.
#[derive(Default)]
struct BandedDeque {
    high: VecDeque<Task>,
    low: VecDeque<Task>,
}

impl BandedDeque {
    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }

    fn push(&mut self, task: Task, high: bool) {
        if high {
            self.high.push_back(task);
        } else {
            self.low.push_back(task);
        }
    }
}

/// The pending-task store: one shared FIFO (`Global`), or per-worker
/// deques plus an injector (`Stealing`). All operations happen under the
/// scheduler mutex either way — on this engine the *policy* (what runs
/// next, and from whose queue) is the experiment, not lock-freedom.
enum TaskQueues {
    Fifo(VecDeque<Task>),
    Steal {
        /// One deque per worker: owners push and pop at the back (LIFO,
        /// cache-warm), thieves take from the front (FIFO, oldest work).
        locals: Vec<BandedDeque>,
        /// Overflow for tasks enqueued outside any worker (initial seeds).
        injector: BandedDeque,
    },
}

impl TaskQueues {
    fn len(&self) -> usize {
        match self {
            TaskQueues::Fifo(q) => q.len(),
            TaskQueues::Steal { locals, injector } => {
                injector.len() + locals.iter().map(BandedDeque::len).sum::<usize>()
            }
        }
    }
}

/// Everything guarded by the single scheduler mutex.
struct Sched {
    queue: TaskQueues,
    /// The worker currently applying task effects; its enqueues go to its
    /// own deque in stealing mode (`None` during seeding → injector).
    current_worker: Option<usize>,
    pipes: Vec<PipeState>,
    completed: usize,
    busy: usize,
    max_parallel: usize,
    max_queue_depth: usize,
    tasks: u64,
    morsel_tasks: u64,
    merge_tasks: u64,
    overlap_tasks: u64,
    local_hits: u64,
    steals: u64,
    priority_promotions: u64,
    /// This run's Σ task nanoseconds (the metrics counter is cumulative
    /// across runs on a shared context).
    busy_nanos: u64,
    /// Σ thread-lifetime wall nanoseconds, one contribution per worker.
    worker_wall_nanos: u64,
    error: Option<Error>,
    /// Monotonic sequence for lifecycle trace entries.
    seq: u64,
}

/// Result of executing one task outside the lock.
enum Done {
    Opened {
        chunks: usize,
    },
    Sunk,
    SetupPartitioned {
        parts: usize,
        /// Partitions with spilled runs worth a `SpillIo` prefetch task.
        prefetch: Vec<usize>,
    },
    SetupSerial,
    MergedPart,
    /// A `SpillIo` task finished after `nanos` of I/O + decode.
    Prefetched {
        nanos: u64,
    },
    Finished,
}

struct Engine<'a> {
    phys: &'a [PhysicalPipeline],
    info: Vec<PipeInfo>,
    runtimes: Vec<PipeRuntime>,
    grains: HashMap<ResourceId, usize>,
    waiters: Vec<Vec<Waiter>>,
    partitions: usize,
    /// Ordered-chain mode: `ctx.threads == 1`.
    ordered: bool,
    /// Morsel fan-out per group in concurrent mode.
    fan: usize,
    ctx: &'a ExecContext,
    res: &'a Resources,
    state: Mutex<Sched>,
    cvar: Condvar,
}

impl Engine<'_> {
    fn trace(&self, s: &mut Sched, what: &str, task: &Task) {
        if !self.ctx.sched_trace {
            return;
        }
        s.seq += 1;
        let label = match task {
            Task::Open { pipe, group } => format!("[scheduler] {what} open p{pipe}/part{group}"),
            Task::Morsel { pipe, group } => {
                format!("[scheduler] {what} morsel p{pipe}/part{group}")
            }
            Task::MergeSetup { pipe } => format!("[scheduler] {what} merge-setup p{pipe}"),
            Task::Merge { pipe, part } => format!("[scheduler] {what} merge p{pipe}/part{part}"),
            Task::SpillIo { pipe, part } => {
                format!("[scheduler] {what} spill-io p{pipe}/part{part}")
            }
            Task::Finish { pipe } => format!("[scheduler] {what} finish p{pipe}"),
        };
        self.ctx.metrics.trace_entry(label, s.seq);
    }

    /// Is this a task whose completion seals grains that registered
    /// waiters block on? Those are the merge/finish tasks downstream
    /// partition-granular consumers are stalled behind, and the stealing
    /// scheduler runs them ahead of ordinary morsel work.
    fn is_priority(&self, task: &Task) -> bool {
        let waited = |g: ResourceId| {
            self.grains
                .get(&g)
                .is_some_and(|&gi| !self.waiters[gi].is_empty())
        };
        match *task {
            Task::Merge { pipe, part } => self.info[pipe]
                .buffers_written
                .iter()
                .any(|&b| part < self.partitions && waited(ResourceId::BufferPart(b, part))),
            Task::Finish { pipe } => self.info[pipe]
                .other_write_grains
                .iter()
                .copied()
                .any(waited),
            _ => false,
        }
    }

    fn enqueue(&self, s: &mut Sched, task: Task) {
        self.trace(s, "enqueue", &task);
        match &mut s.queue {
            TaskQueues::Fifo(q) => q.push_back(task),
            TaskQueues::Steal { locals, injector } => {
                let high = self.is_priority(&task);
                if high {
                    s.priority_promotions += 1;
                }
                match s.current_worker {
                    Some(w) => locals[w].push(task, high),
                    None => injector.push(task, high),
                }
            }
        }
        s.max_queue_depth = s.max_queue_depth.max(s.queue.len());
    }

    /// Next task for worker `w`: under FIFO, the queue head; under
    /// stealing, own high band LIFO → injector high → stolen high →
    /// own low LIFO → injector low → stolen low, so the high band drains
    /// globally before any low task runs.
    fn pop_task(&self, s: &mut Sched, w: usize) -> Option<Task> {
        match &mut s.queue {
            TaskQueues::Fifo(q) => q.pop_front(),
            TaskQueues::Steal { locals, injector } => {
                let n = locals.len();
                let victims = |from: usize| (1..n).map(move |d| (from + d) % n);
                for high in [true, false] {
                    let own = &mut locals[w];
                    let band = if high { &mut own.high } else { &mut own.low };
                    if let Some(t) = band.pop_back() {
                        s.local_hits += 1;
                        return Some(t);
                    }
                    let inj = if high {
                        &mut injector.high
                    } else {
                        &mut injector.low
                    };
                    if let Some(t) = inj.pop_front() {
                        return Some(t);
                    }
                    for v in victims(w) {
                        let vic = &mut locals[v];
                        let band = if high { &mut vic.high } else { &mut vic.low };
                        if let Some(t) = band.pop_front() {
                            s.steals += 1;
                            return Some(t);
                        }
                    }
                }
                None
            }
        }
    }

    /// Start every group that is sealed, unstarted, and admissible under
    /// the pipeline's ordering discipline.
    fn try_start_groups(&self, s: &mut Sched, pipe: usize) {
        if !s.pipes[pipe].open || s.pipes[pipe].merge_setup {
            return;
        }
        let groups = self.info[pipe].groups;
        loop {
            let st = &mut s.pipes[pipe];
            let g = if self.ordered {
                // One group at a time, strictly in partition order — this
                // is what makes threads == 1 runs bit-deterministic.
                if st.in_flight > 0 || st.ordered_next >= groups {
                    return;
                }
                let g = st.ordered_next;
                if st.group_wait[g] > 0 || st.started[g] {
                    return;
                }
                g
            } else {
                match (0..groups).find(|&g| st.group_wait[g] == 0 && !st.started[g]) {
                    Some(g) => g,
                    None => return,
                }
            };
            st.started[g] = true;
            st.in_flight += 1;
            st.group_tasks[g] += 1;
            // Partition overlap: this group starts while a producer still
            // has *other* partitions unsealed (`merge_left` counts merge
            // tasks not yet applied; it is decremented before the seal
            // event fires, so 0 means every partition is already sealed).
            if self.info[pipe]
                .source_producers
                .iter()
                .any(|&pr| s.pipes[pr].merge_left > 0)
            {
                s.overlap_tasks += 1;
            }
            self.enqueue(s, Task::Open { pipe, group: g });
            if self.ordered {
                return; // in_flight is now 1; nothing else admissible
            }
        }
    }

    /// One producer event on `grain`: wake base and group waiters.
    fn fire(&self, s: &mut Sched, grain: ResourceId) {
        let Some(&gi) = self.grains.get(&grain) else {
            return;
        };
        // Waiter lists are static (owned by the engine, not the mutex),
        // so they can be iterated while pipe state is mutated.
        for &w in &self.waiters[gi] {
            match w {
                Waiter::Base(c) => {
                    let st = &mut s.pipes[c];
                    debug_assert!(st.base_wait > 0, "base wait underflow");
                    st.base_wait -= 1;
                    if st.base_wait == 0 {
                        st.open = true;
                        self.try_start_groups(s, c);
                    }
                }
                Waiter::Group { pipe, group } => {
                    let st = &mut s.pipes[pipe];
                    debug_assert!(st.group_wait[group] > 0, "group wait underflow");
                    st.group_wait[group] -= 1;
                    if st.group_wait[group] == 0 {
                        self.try_start_groups(s, pipe);
                    }
                }
            }
        }
    }

    /// Mark `pipe` complete and fire its completion grains. `fire_buffers`
    /// is set for serial finalizes, whose buffer partitions seal all at
    /// once; partitioned sinks fired them from their merge tasks already.
    fn complete(&self, s: &mut Sched, pipe: usize, fire_buffers: bool) {
        s.pipes[pipe].completed = true;
        s.completed += 1;
        if fire_buffers {
            for &b in &self.info[pipe].buffers_written {
                for p in 0..self.partitions {
                    self.fire(s, ResourceId::BufferPart(b, p));
                }
            }
        }
        for &g in &self.info[pipe].other_write_grains {
            self.fire(s, g);
        }
    }

    /// Execute one task outside the lock.
    fn exec(&self, task: Task) -> Result<Done> {
        match task {
            Task::Open { pipe, group } => {
                let p = &self.phys[pipe];
                let chunks = match p.source.partitioned_input() {
                    Some(_) => p.source.partition_chunks(self.ctx, self.res, group)?,
                    None => p.source.chunks(self.ctx, self.res)?,
                };
                let n = chunks.len();
                self.runtimes[pipe].groups[group]
                    .set(GroupRun {
                        chunks,
                        next: AtomicUsize::new(0),
                    })
                    .map_err(|_| Error::Exec("pipeline group opened twice".into()))?;
                Ok(Done::Opened { chunks: n })
            }
            Task::Morsel { pipe, group } => {
                let p = &self.phys[pipe];
                let run = self.runtimes[pipe].groups[group]
                    .get()
                    .expect("morsel task before group open");
                let mut state = {
                    let mut idle = self.runtimes[pipe]
                        .idle_states
                        .lock()
                        .expect("idle state lock poisoned");
                    match idle.pop() {
                        Some(st) => st,
                        None => p.sink.make(self.ctx)?,
                    }
                };
                // A Preserve-route pipeline's source is partitioned and
                // its partitioning already matches the sink's, so this
                // group's rows feed partition `group` directly — no
                // hash + scatter.
                let preserve = p.route == RouteMode::Preserve;
                if preserve && p.source.partitioned_input().is_none() {
                    return Err(Error::Exec(
                        "Preserve route requires a partitioned source".into(),
                    ));
                }
                loop {
                    let i = run.next.fetch_add(1, Ordering::Relaxed);
                    if i >= run.chunks.len() {
                        break;
                    }
                    self.ctx.charge(run.chunks[i].num_rows() as u64)?;
                    if let Some(out) =
                        push_through(&p.ops, run.chunks[i].as_ref().clone(), self.ctx, self.res)?
                    {
                        if preserve {
                            state.sink_part(out, group, self.ctx)?;
                        } else {
                            state.sink(out, self.ctx)?;
                        }
                    }
                }
                self.runtimes[pipe]
                    .idle_states
                    .lock()
                    .expect("idle state lock poisoned")
                    .push(state);
                Ok(Done::Sunk)
            }
            Task::MergeSetup { pipe } => {
                let p = &self.phys[pipe];
                let states = std::mem::take(
                    &mut *self.runtimes[pipe]
                        .idle_states
                        .lock()
                        .expect("idle state lock poisoned"),
                );
                record_pipeline_rows(p, &states, self.ctx);
                if self.info[pipe].partitioned {
                    let merger = Arc::new(p.sink.make_merger(states, self.ctx)?);
                    let parts = merger.partitions();
                    let prefetch = if self.ctx.spill_prefetch {
                        merger.prefetch_parts()
                    } else {
                        Vec::new()
                    };
                    self.runtimes[pipe]
                        .merger
                        .set(merger)
                        .map_err(|_| Error::Exec("pipeline merger set twice".into()))?;
                    Ok(Done::SetupPartitioned { parts, prefetch })
                } else {
                    combine_finalize(states, self.res)?;
                    Ok(Done::SetupSerial)
                }
            }
            Task::Merge { pipe, part } => {
                self.runtimes[pipe]
                    .merger
                    .get()
                    .expect("merge task before setup")
                    .merge_partition(part, self.ctx, self.res)?;
                Ok(Done::MergedPart)
            }
            Task::SpillIo { pipe, part } => {
                let t0 = Instant::now();
                // The merger always exists here (SpillIo tasks are enqueued
                // after it is set); the prefetch itself is a no-op if the
                // merge already took the slot.
                if let Some(merger) = self.runtimes[pipe].merger.get() {
                    merger.prefetch_partition(part, self.ctx)?;
                }
                Ok(Done::Prefetched {
                    nanos: t0.elapsed().as_nanos() as u64,
                })
            }
            Task::Finish { pipe } => {
                let merger = self.runtimes[pipe]
                    .merger
                    .get()
                    .expect("finish task before setup");
                merger.finish(self.ctx, self.res)?;
                self.ctx.metrics.record_merge(
                    &self.phys[pipe].label,
                    merger.partitions() as u64,
                    merger.max_task_rows(),
                );
                Ok(Done::Finished)
            }
        }
    }

    /// Apply a finished task's effects under the lock.
    fn apply(&self, s: &mut Sched, task: Task, done: Done) {
        self.trace(s, "finish", &task);
        match (task, done) {
            (Task::Open { pipe, group }, Done::Opened { chunks }) => {
                let fan = if self.ordered {
                    1
                } else {
                    self.fan.min(chunks).max(1)
                };
                // The open task accounted for one in-flight unit; morsel
                // tasks replace it.
                s.pipes[pipe].in_flight += fan - 1;
                s.pipes[pipe].group_tasks[group] += fan - 1;
                s.morsel_tasks += fan as u64;
                for _ in 0..fan {
                    self.enqueue(s, Task::Morsel { pipe, group });
                }
            }
            (Task::Morsel { pipe, group }, Done::Sunk) => {
                let st = &mut s.pipes[pipe];
                st.in_flight -= 1;
                st.group_tasks[group] -= 1;
                if st.group_tasks[group] == 0 {
                    st.groups_done += 1;
                    if self.ordered {
                        st.ordered_next = st.ordered_next.max(group + 1);
                    }
                }
                if st.groups_done == self.info[pipe].groups {
                    st.merge_setup = true;
                    self.enqueue(s, Task::MergeSetup { pipe });
                } else {
                    self.try_start_groups(s, pipe);
                }
            }
            (Task::MergeSetup { pipe }, Done::SetupPartitioned { parts, prefetch }) => {
                s.pipes[pipe].merge_left = parts;
                s.merge_tasks += parts as u64;
                // Prefetch tasks are enqueued first so FIFO workers start
                // the spill reads before the merges that consume them; they
                // never gate completion (a prefetch racing its merge
                // degrades to a no-op on the taken slot).
                for part in prefetch {
                    self.enqueue(s, Task::SpillIo { pipe, part });
                }
                for part in 0..parts {
                    self.enqueue(s, Task::Merge { pipe, part });
                }
            }
            (Task::MergeSetup { pipe }, Done::SetupSerial) => {
                self.complete(s, pipe, true);
            }
            (Task::Merge { pipe, part }, Done::MergedPart) => {
                // Count this partition as sealed *before* firing its seal
                // events: consumers started by the fire read `merge_left`
                // as the number of still-unsealed partitions (the overlap
                // counter's definition).
                s.pipes[pipe].merge_left -= 1;
                for &b in &self.info[pipe].buffers_written {
                    if part < self.partitions {
                        self.fire(s, ResourceId::BufferPart(b, part));
                    }
                }
                if s.pipes[pipe].merge_left == 0 {
                    self.enqueue(s, Task::Finish { pipe });
                }
            }
            (Task::SpillIo { .. }, Done::Prefetched { nanos }) => {
                // The worker decremented its own busy count before apply,
                // so `busy >= 1` means at least one *other* worker executed
                // a task while this prefetch ran — genuinely overlapped
                // spill I/O.
                if s.busy >= 1 {
                    let m = &self.ctx.metrics;
                    m.add(&m.spill_io_overlap_nanos, nanos);
                }
            }
            (Task::Finish { pipe }, Done::Finished) => {
                self.complete(s, pipe, false);
            }
            _ => unreachable!("task/result mismatch"),
        }
    }

    fn worker(&self, id: usize, n: usize) {
        // Each worker contributes its own thread-lifetime span to the
        // summed wall clock, so `busy / wall` utilization stays meaningful
        // when some workers spend the run stealing-or-idle.
        let t0 = Instant::now();
        self.worker_loop(id, n);
        let wall = t0.elapsed().as_nanos() as u64;
        let mut s = self.state.lock().expect("scheduler state poisoned");
        s.worker_wall_nanos = s.worker_wall_nanos.saturating_add(wall);
    }

    fn worker_loop(&self, id: usize, n: usize) {
        loop {
            let task = {
                let mut s = self.state.lock().expect("scheduler state poisoned");
                loop {
                    if s.error.is_some() || s.completed == n {
                        drop(s);
                        self.cvar.notify_all();
                        return;
                    }
                    if let Some(task) = self.pop_task(&mut s, id) {
                        s.busy += 1;
                        s.max_parallel = s.max_parallel.max(s.busy);
                        s.tasks += 1;
                        self.trace(&mut s, "start", &task);
                        break task;
                    }
                    s = self.cvar.wait(s).expect("scheduler state poisoned");
                }
            };

            let t0 = Instant::now();
            // Contain panics from operator/sink/merger code: an unwinding
            // worker that never reports back would strand its peers in
            // `cvar.wait` forever; as an error it wakes and drains them.
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.exec(task)))
                    .unwrap_or_else(|_| Err(Error::Exec("scheduler task panicked".into())));
            let busy = t0.elapsed().as_nanos() as u64;

            let mut s = self.state.lock().expect("scheduler state poisoned");
            s.busy -= 1;
            s.busy_nanos = s.busy_nanos.saturating_add(busy);
            self.ctx
                .metrics
                .add(&self.ctx.metrics.sched_busy_nanos, busy);
            match outcome {
                Ok(done) => {
                    s.current_worker = Some(id);
                    self.apply(&mut s, task, done);
                    s.current_worker = None;
                }
                Err(e) => {
                    if s.error.is_none() {
                        s.error = Some(e);
                    }
                }
            }
            drop(s);
            self.cvar.notify_all();
        }
    }
}

/// Run lowered pipelines on the global worker pool. `deps` may be recorded
/// at either granularity — whole-buffer ids are expanded to partition
/// grains internally. Returns the observed stats or the first task error
/// (`Error::Plan` for cyclic dependencies, detected up front).
pub fn run_physical_global(
    phys: &[PhysicalPipeline],
    deps: &[NodeDeps],
    ctx: &ExecContext,
    res: &Resources,
    workers: usize,
) -> Result<GlobalStats> {
    let n = phys.len();
    debug_assert_eq!(n, deps.len());
    if n == 0 {
        return Ok(GlobalStats::default());
    }
    let partitions = res.partitions();
    let norm: Vec<NodeDeps> = deps
        .iter()
        .map(|d| d.expand_partitions(partitions))
        .collect();
    check_acyclic(&build_dag(&norm))?;

    // Writer sets per grain.
    let mut writers: HashMap<ResourceId, Vec<usize>> = HashMap::new();
    for (i, d) in norm.iter().enumerate() {
        for &w in &d.writes {
            writers.entry(w).or_default().push(i);
        }
    }

    // Grain table + waiter lists + per-pipe static info and initial waits.
    let mut grains: HashMap<ResourceId, usize> = HashMap::new();
    let mut waiters: Vec<Vec<Waiter>> = Vec::new();
    let mut grain_idx = |g: ResourceId, waiters: &mut Vec<Vec<Waiter>>| -> usize {
        *grains.entry(g).or_insert_with(|| {
            waiters.push(Vec::new());
            waiters.len() - 1
        })
    };
    let mut info = Vec::with_capacity(n);
    let mut pipes = Vec::with_capacity(n);
    let mut runtimes = Vec::with_capacity(n);
    for (c, p) in phys.iter().enumerate() {
        let source_buf = p.source.partitioned_input();
        let groups = if source_buf.is_some() { partitions } else { 1 };
        let mut base_wait = 0usize;
        let mut group_wait = vec![0usize; groups];
        let mut source_producers: Vec<usize> = Vec::new();
        for &r in &norm[c].reads {
            let producing: Vec<usize> = writers
                .get(&r)
                .map(|ps| ps.iter().copied().filter(|&pr| pr != c).collect())
                .unwrap_or_default();
            match (r, source_buf) {
                (ResourceId::BufferPart(b, g), Some(src)) if b == src => {
                    // One wait unit per producer event; each producer fires
                    // the grain exactly once, and every fire walks the
                    // waiter list, so a single waiter entry suffices.
                    group_wait[g] += producing.len();
                    if !producing.is_empty() {
                        let gi = grain_idx(r, &mut waiters);
                        waiters[gi].push(Waiter::Group { pipe: c, group: g });
                    }
                    for pr in producing {
                        if !source_producers.contains(&pr) {
                            source_producers.push(pr);
                        }
                    }
                }
                _ => {
                    base_wait += producing.len();
                    if !producing.is_empty() {
                        let gi = grain_idx(r, &mut waiters);
                        waiters[gi].push(Waiter::Base(c));
                    }
                }
            }
        }
        let mut buffers_written: Vec<usize> = Vec::new();
        let mut other_write_grains: Vec<ResourceId> = Vec::new();
        for &w in &norm[c].writes {
            match w {
                ResourceId::Buffer(b) | ResourceId::BufferPart(b, _) => {
                    if !buffers_written.contains(&b) {
                        buffers_written.push(b);
                    }
                }
                other => {
                    if !other_write_grains.contains(&other) {
                        other_write_grains.push(other);
                    }
                }
            }
        }
        info.push(PipeInfo {
            groups,
            source_producers,
            buffers_written,
            other_write_grains,
            partitioned: p.sink.partitioned_merge(ctx),
        });
        pipes.push(PipeState {
            base_wait,
            open: base_wait == 0,
            group_wait,
            started: vec![false; groups],
            group_tasks: vec![0; groups],
            groups_done: 0,
            in_flight: 0,
            ordered_next: 0,
            merge_left: 0,
            merge_setup: false,
            completed: false,
        });
        runtimes.push(PipeRuntime {
            groups: (0..groups).map(|_| OnceLock::new()).collect(),
            idle_states: Mutex::new(Vec::new()),
            merger: OnceLock::new(),
        });
    }

    let workers = workers.max(1);
    let stealing = ctx.scheduler == SchedulerKind::Stealing;
    let queue = if stealing {
        TaskQueues::Steal {
            locals: (0..workers).map(|_| BandedDeque::default()).collect(),
            injector: BandedDeque::default(),
        }
    } else {
        TaskQueues::Fifo(VecDeque::new())
    };
    let engine = Engine {
        phys,
        info,
        runtimes,
        grains,
        waiters,
        partitions,
        ordered: ctx.threads <= 1,
        fan: ctx.threads.max(1),
        ctx,
        res,
        state: Mutex::new(Sched {
            queue,
            current_worker: None,
            pipes,
            completed: 0,
            busy: 0,
            max_parallel: 0,
            max_queue_depth: 0,
            tasks: 0,
            morsel_tasks: 0,
            merge_tasks: 0,
            overlap_tasks: 0,
            local_hits: 0,
            steals: 0,
            priority_promotions: 0,
            busy_nanos: 0,
            worker_wall_nanos: 0,
            error: None,
            seq: 0,
        }),
        cvar: Condvar::new(),
    };

    // Seed the queue with every immediately runnable group.
    let initially_ready = {
        let mut s = engine.state.lock().expect("scheduler state poisoned");
        for pipe in 0..n {
            engine.try_start_groups(&mut s, pipe);
        }
        (0..n)
            .filter(|&pipe| s.pipes[pipe].started.iter().any(|&b| b))
            .count()
    };

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for id in 0..workers {
            let engine = &engine;
            scope.spawn(move || engine.worker(id, n));
        }
    });
    let wall = t0.elapsed().as_nanos() as u64;

    let mut s = engine.state.into_inner().expect("scheduler state poisoned");
    if let Some(e) = s.error.take() {
        return Err(e);
    }
    debug_assert_eq!(s.completed, n);
    Ok(GlobalStats {
        pipelines: n,
        initially_ready,
        max_parallel: s.max_parallel,
        tasks: s.tasks,
        morsel_tasks: s.morsel_tasks,
        merge_tasks: s.merge_tasks,
        overlap_tasks: s.overlap_tasks,
        max_queue_depth: s.max_queue_depth,
        busy_nanos: s.busy_nanos,
        wall_nanos: wall,
        worker_wall_nanos: s.worker_wall_nanos,
        workers,
        local_hits: s.local_hits,
        steals: s.steals,
        priority_promotions: s.priority_promotions,
    })
}

/// Lower a pipeline list and run it on the global pool, recording stats
/// into the metrics trace (`[scheduler] …` entries, same vocabulary as the
/// scoped scheduler plus the global-only counters).
pub fn run_pipelines_global(
    pipelines: &[PipelinePlan],
    deps: &[NodeDeps],
    ctx: &ExecContext,
    res: &Resources,
    workers: usize,
) -> Result<SchedulerStats> {
    debug_assert_eq!(pipelines.len(), deps.len());
    let phys: Vec<PhysicalPipeline> = pipelines.iter().map(PipelinePlan::lower).collect();
    let g = run_physical_global(&phys, deps, ctx, res, workers)?;
    record_global_stats(ctx, &g);
    Ok(SchedulerStats {
        pipelines: g.pipelines,
        initially_ready: g.initially_ready,
        max_parallel: g.max_parallel,
    })
}

/// Record a finished global run: the classic `[scheduler]` trace entries
/// plus the global-only counters (tasks, queue depth, overlap,
/// utilization) and their `Metrics` counterparts.
pub fn record_global_stats(ctx: &ExecContext, g: &GlobalStats) {
    let m = &ctx.metrics;
    m.add(&m.sched_tasks, g.tasks);
    m.add(&m.sched_overlap_tasks, g.overlap_tasks);
    m.max_update(&m.sched_max_queue_depth, g.max_queue_depth as u64);
    // Per-worker-summed wall: each worker's own thread-lifetime span, so
    // utilization (`busy / wall`) counts idle stealers against the pool.
    m.add(&m.sched_wall_nanos, g.worker_wall_nanos);
    m.max_update(&m.sched_workers, g.workers as u64);
    m.add(&m.sched_local_hits, g.local_hits);
    m.add(&m.sched_steals, g.steals);
    m.add(&m.sched_priority_promotions, g.priority_promotions);
    m.record_scheduler(&SchedulerStats {
        pipelines: g.pipelines,
        initially_ready: g.initially_ready,
        max_parallel: g.max_parallel,
    });
    m.trace_entry("[scheduler] workers", g.workers as u64);
    m.trace_entry("[scheduler] tasks", g.tasks);
    m.trace_entry("[scheduler] morsel-tasks", g.morsel_tasks);
    m.trace_entry("[scheduler] merge-task-count", g.merge_tasks);
    m.trace_entry("[scheduler] overlap-tasks", g.overlap_tasks);
    m.trace_entry("[scheduler] max-queue-depth", g.max_queue_depth as u64);
    m.trace_entry("[scheduler] local-hits", g.local_hits);
    m.trace_entry("[scheduler] steals", g.steals);
    m.trace_entry("[scheduler] priority-promotions", g.priority_promotions);
    m.trace_entry(
        "[scheduler] utilization-pct",
        crate::context::utilization_pct(g.busy_nanos, g.worker_wall_nanos, 1),
    );
}
