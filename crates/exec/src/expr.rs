//! Vectorized expressions: filters, projections, aggregates.

use rpt_common::{ColumnData, DataChunk, DataType, Error, Result, ScalarValue, Vector};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    /// The comparison with swapped operands: `a OP b` ⇔ `b OP.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// A scalar expression evaluated over the *logical* rows of a chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to the chunk column at this index.
    Column(usize),
    Literal(ScalarValue),
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Arith {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    /// `expr IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<ScalarValue>,
    },
    /// Substring match — our stand-in for `LIKE '%pat%'`.
    Contains {
        expr: Box<Expr>,
        pattern: String,
    },
    /// Prefix match — stand-in for `LIKE 'pat%'`.
    StartsWith {
        expr: Box<Expr>,
        pattern: String,
    },
    IsNull(Box<Expr>),
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    pub fn lit(v: ScalarValue) -> Expr {
        Expr::Literal(v)
    }

    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, l, r)
    }

    pub fn and(exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            1 => exprs.into_iter().next().expect("len checked"),
            _ => Expr::And(exprs),
        }
    }

    /// Result type of this expression over `input` column types.
    pub fn data_type(&self, input: &[DataType]) -> Result<DataType> {
        Ok(match self {
            Expr::Column(i) => *input
                .get(*i)
                .ok_or_else(|| Error::Plan(format!("column index {i} out of bounds")))?,
            Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int64),
            Expr::Cmp { .. }
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::InList { .. }
            | Expr::Contains { .. }
            | Expr::StartsWith { .. }
            | Expr::IsNull(_) => DataType::Bool,
            Expr::Arith { op: _, left, right } => {
                let lt = left.data_type(input)?;
                let rt = right.data_type(input)?;
                if lt == DataType::Float64 || rt == DataType::Float64 {
                    DataType::Float64
                } else {
                    DataType::Int64
                }
            }
        })
    }

    /// Evaluate over the logical rows of `chunk`, producing a flat vector of
    /// length `chunk.num_rows()`.
    pub fn eval(&self, chunk: &DataChunk) -> Result<Vector> {
        let n = chunk.num_rows();
        match self {
            Expr::Column(i) => {
                let col = chunk
                    .columns
                    .get(*i)
                    .ok_or_else(|| Error::Exec(format!("column {i} out of bounds")))?;
                Ok(match &chunk.selection {
                    Some(sel) => col.take(sel),
                    None => col.clone(),
                })
            }
            Expr::Literal(v) => {
                let mut out = Vector::new_empty(v.data_type().unwrap_or(DataType::Int64));
                for _ in 0..n {
                    out.push(v)?;
                }
                Ok(out)
            }
            Expr::Cmp { op, left, right } => {
                let l = left.eval(chunk)?;
                let r = right.eval(chunk)?;
                eval_cmp(*op, &l, &r)
            }
            Expr::Arith { op, left, right } => {
                let l = left.eval(chunk)?;
                let r = right.eval(chunk)?;
                eval_arith(*op, &l, &r)
            }
            Expr::And(parts) => {
                let mut acc = vec![true; n];
                for p in parts {
                    let v = p.eval(chunk)?;
                    let b = v.bool_slice();
                    for i in 0..n {
                        acc[i] = acc[i] && b[i] && v.is_valid(i);
                    }
                }
                Ok(Vector::from_bool(acc))
            }
            Expr::Or(parts) => {
                let mut acc = vec![false; n];
                for p in parts {
                    let v = p.eval(chunk)?;
                    let b = v.bool_slice();
                    for i in 0..n {
                        acc[i] = acc[i] || (b[i] && v.is_valid(i));
                    }
                }
                Ok(Vector::from_bool(acc))
            }
            Expr::Not(inner) => {
                let v = inner.eval(chunk)?;
                let b = v.bool_slice();
                Ok(Vector::from_bool(
                    (0..n).map(|i| v.is_valid(i) && !b[i]).collect(),
                ))
            }
            Expr::InList { expr, list } => {
                let v = expr.eval(chunk)?;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let val = v.get(i);
                    out.push(!val.is_null() && list.iter().any(|x| x == &val));
                }
                Ok(Vector::from_bool(out))
            }
            Expr::Contains { expr, pattern } => {
                let mut v = expr.eval(chunk)?;
                v.decode_dict_in_place();
                let s = v.utf8_slice();
                Ok(Vector::from_bool(
                    (0..n)
                        .map(|i| v.is_valid(i) && s[i].contains(pattern.as_str()))
                        .collect(),
                ))
            }
            Expr::StartsWith { expr, pattern } => {
                let mut v = expr.eval(chunk)?;
                v.decode_dict_in_place();
                let s = v.utf8_slice();
                Ok(Vector::from_bool(
                    (0..n)
                        .map(|i| v.is_valid(i) && s[i].starts_with(pattern.as_str()))
                        .collect(),
                ))
            }
            Expr::IsNull(inner) => {
                let v = inner.eval(chunk)?;
                Ok(Vector::from_bool((0..n).map(|i| !v.is_valid(i)).collect()))
            }
        }
    }

    /// Evaluate as a predicate: logical row indices (into the chunk's
    /// logical order) that pass.
    pub fn eval_selection(&self, chunk: &DataChunk) -> Result<Vec<u32>> {
        // `col CMP literal` on an Int64 column emits the selection straight
        // from the typed payload — no intermediate bool Vector.
        if let Expr::Cmp { op, left, right } = self {
            let fast = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(ScalarValue::Int64(x))) => Some((*c, *op, *x)),
                (Expr::Literal(ScalarValue::Int64(x)), Expr::Column(c)) => {
                    Some((*c, op.flip(), *x))
                }
                _ => None,
            };
            if let Some((col, op, lit)) = fast {
                if let Some(sel) = cmp_i64_literal_selection(chunk, col, op, lit)? {
                    return Ok(sel);
                }
            }
        }
        let v = self.eval(chunk)?;
        let b = v.bool_slice();
        Ok((0..chunk.num_rows() as u32)
            .filter(|&i| b[i as usize] && v.is_valid(i as usize))
            .collect())
    }
}

/// The `Int64 column CMP i64-literal` conjuncts of a predicate, normalized
/// to `(column, op, literal)` with the column on the left. These are the
/// conjuncts a scan can check against per-block zone maps: any block whose
/// `[min, max]` proves the conjunct false for every row can be skipped
/// without changing the filter's output (NULL rows never pass a comparison
/// either way). Walks `And` trees; `Or`/`Not` subtrees contribute nothing.
pub fn prunable_conjuncts(expr: &Expr) -> Vec<(usize, CmpOp, i64)> {
    fn walk(e: &Expr, out: &mut Vec<(usize, CmpOp, i64)>) {
        match e {
            Expr::And(parts) => parts.iter().for_each(|p| walk(p, out)),
            Expr::Cmp { op, left, right } => match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(ScalarValue::Int64(x))) => out.push((*c, *op, *x)),
                (Expr::Literal(ScalarValue::Int64(x)), Expr::Column(c)) => {
                    out.push((*c, op.flip(), *x))
                }
                _ => {}
            },
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// The `Utf8 column CMP string-literal` conjuncts of a predicate,
/// normalized to `(column, op, literal)` with the column on the left —
/// the string analog of [`prunable_conjuncts`]. A scan can check these
/// against per-block `Utf8` zone maps when the column carries a sorted
/// shared dictionary (dict codes are assigned in lexicographic order, so
/// comparing the literal against the zone's string bounds is exactly the
/// dict-code comparison). Walks `And` trees; `Or`/`Not` subtrees
/// contribute nothing.
pub fn prunable_utf8_conjuncts(expr: &Expr) -> Vec<(usize, CmpOp, String)> {
    fn walk(e: &Expr, out: &mut Vec<(usize, CmpOp, String)>) {
        match e {
            Expr::And(parts) => parts.iter().for_each(|p| walk(p, out)),
            Expr::Cmp { op, left, right } => match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(ScalarValue::Utf8(s))) => {
                    out.push((*c, *op, s.clone()))
                }
                (Expr::Literal(ScalarValue::Utf8(s)), Expr::Column(c)) => {
                    out.push((*c, op.flip(), s.clone()))
                }
                _ => {}
            },
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Selection fast path for `Int64 column CMP i64 literal`: compare the
/// typed payload directly and push passing logical row indices. Returns
/// `Ok(None)` when the column is not `Int64` (the caller falls back to the
/// generic bool-vector evaluation). NULL rows never pass, matching SQL
/// three-valued comparison.
fn cmp_i64_literal_selection(
    chunk: &DataChunk,
    col: usize,
    op: CmpOp,
    lit: i64,
) -> Result<Option<Vec<u32>>> {
    let c = chunk
        .columns
        .get(col)
        .ok_or_else(|| Error::Exec(format!("column {col} out of bounds")))?;
    if c.is_dict() {
        // Dictionary-backed Utf8: the Int64 payload holds codes, not
        // values — fall back to the generic evaluation.
        return Ok(None);
    }
    let ColumnData::Int64(vals) = &c.data else {
        return Ok(None);
    };
    let test = |v: i64| -> bool {
        match op {
            CmpOp::Eq => v == lit,
            CmpOp::NotEq => v != lit,
            CmpOp::Lt => v < lit,
            CmpOp::LtEq => v <= lit,
            CmpOp::Gt => v > lit,
            CmpOp::GtEq => v >= lit,
        }
    };
    let n = chunk.num_rows();
    let mut out = Vec::new();
    match (&chunk.selection, &c.validity) {
        // The hot case: flat chunk, no NULLs — one branch per row.
        (None, None) => {
            for (i, &v) in vals[..n].iter().enumerate() {
                if test(v) {
                    out.push(i as u32);
                }
            }
        }
        _ => {
            for i in 0..n {
                let p = chunk.physical_index(i);
                if c.is_valid(p) && test(vals[p]) {
                    out.push(i as u32);
                }
            }
        }
    }
    Ok(Some(out))
}

fn eval_cmp(op: CmpOp, l: &Vector, r: &Vector) -> Result<Vector> {
    use std::cmp::Ordering;
    let n = l.len();
    if r.len() != n {
        return Err(Error::Exec("comparison arity mismatch".into()));
    }
    let test = |ord: Ordering| -> bool {
        match op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::NotEq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::LtEq => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::GtEq => ord != Ordering::Less,
        }
    };
    // Typed fast paths for the hot combinations.
    let out: Vec<bool> = match (&l.data, &r.data) {
        (ColumnData::Int64(a), ColumnData::Int64(b)) => (0..n)
            .map(|i| l.is_valid(i) && r.is_valid(i) && test(a[i].cmp(&b[i])))
            .collect(),
        (ColumnData::Float64(a), ColumnData::Float64(b)) => (0..n)
            .map(|i| l.is_valid(i) && r.is_valid(i) && a[i].partial_cmp(&b[i]).is_some_and(test))
            .collect(),
        (ColumnData::Utf8(a), ColumnData::Utf8(b)) => (0..n)
            .map(|i| l.is_valid(i) && r.is_valid(i) && test(a[i].cmp(&b[i])))
            .collect(),
        _ => (0..n)
            .map(|i| l.get(i).partial_cmp_sql(&r.get(i)).is_some_and(test))
            .collect(),
    };
    Ok(Vector::from_bool(out))
}

fn eval_arith(op: ArithOp, l: &Vector, r: &Vector) -> Result<Vector> {
    let n = l.len();
    if r.len() != n {
        return Err(Error::Exec("arithmetic arity mismatch".into()));
    }
    match (&l.data, &r.data) {
        (ColumnData::Int64(a), ColumnData::Int64(b)) => {
            let vals: Vec<i64> = (0..n)
                .map(|i| match op {
                    ArithOp::Add => a[i].wrapping_add(b[i]),
                    ArithOp::Sub => a[i].wrapping_sub(b[i]),
                    ArithOp::Mul => a[i].wrapping_mul(b[i]),
                    ArithOp::Div => {
                        if b[i] == 0 {
                            0
                        } else {
                            a[i] / b[i]
                        }
                    }
                })
                .collect();
            let mut v = Vector::from_i64(vals);
            v.validity = merge_validity(l, r, n);
            Ok(v)
        }
        _ => {
            // Promote to f64.
            let get = |v: &Vector, i: usize| -> f64 { v.get(i).as_f64().unwrap_or(f64::NAN) };
            let vals: Vec<f64> = (0..n)
                .map(|i| {
                    let (a, b) = (get(l, i), get(r, i));
                    match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => a / b,
                    }
                })
                .collect();
            let mut v = Vector::from_f64(vals);
            v.validity = merge_validity(l, r, n);
            Ok(v)
        }
    }
}

fn merge_validity(l: &Vector, r: &Vector, n: usize) -> Option<Vec<bool>> {
    if l.validity.is_none() && r.validity.is_none() {
        return None;
    }
    Some((0..n).map(|i| l.is_valid(i) && r.is_valid(i)).collect())
}

/// Aggregate functions supported by the hash aggregate sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate: a function over an input expression (`None` for
/// `COUNT(*)`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    pub input: Option<Expr>,
    pub alias: String,
}

impl AggExpr {
    pub fn count_star(alias: impl Into<String>) -> AggExpr {
        AggExpr {
            func: AggFunc::CountStar,
            input: None,
            alias: alias.into(),
        }
    }

    pub fn output_type(&self, input: &[DataType]) -> Result<DataType> {
        Ok(match self.func {
            AggFunc::CountStar | AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match self
                .input
                .as_ref()
                .ok_or_else(|| Error::Plan("SUM needs an argument".into()))?
                .data_type(input)?
            {
                DataType::Float64 => DataType::Float64,
                _ => DataType::Int64,
            },
            AggFunc::Min | AggFunc::Max => self
                .input
                .as_ref()
                .ok_or_else(|| Error::Plan("MIN/MAX need an argument".into()))?
                .data_type(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![1, 2, 3, 4]),
            Vector::from_utf8(vec!["ab".into(), "bc".into(), "cd".into(), "bcd".into()]),
            Vector::from_f64(vec![1.5, 2.5, 3.5, 4.5]),
        ])
    }

    #[test]
    fn column_and_literal() {
        let c = chunk();
        let v = Expr::col(0).eval(&c).unwrap();
        assert_eq!(v.i64_slice(), &[1, 2, 3, 4]);
        let l = Expr::lit(ScalarValue::Int64(9)).eval(&c).unwrap();
        assert_eq!(l.i64_slice(), &[9, 9, 9, 9]);
    }

    #[test]
    fn comparison_selection() {
        let c = chunk();
        let pred = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(ScalarValue::Int64(2)));
        assert_eq!(pred.eval_selection(&c).unwrap(), vec![2, 3]);
    }

    #[test]
    fn respects_chunk_selection() {
        let mut c = chunk();
        c.set_selection(vec![1, 3]); // values 2, 4
        let pred = Expr::cmp(CmpOp::GtEq, Expr::col(0), Expr::lit(ScalarValue::Int64(3)));
        // logical row 1 (value 4) passes
        assert_eq!(pred.eval_selection(&c).unwrap(), vec![1]);
    }

    #[test]
    fn and_or_not() {
        let c = chunk();
        let gt1 = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(ScalarValue::Int64(1)));
        let lt4 = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(ScalarValue::Int64(4)));
        let both = Expr::And(vec![gt1.clone(), lt4.clone()]);
        assert_eq!(both.eval_selection(&c).unwrap(), vec![1, 2]);
        let either = Expr::Or(vec![
            Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(ScalarValue::Int64(1))),
            Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(ScalarValue::Int64(4))),
        ]);
        assert_eq!(either.eval_selection(&c).unwrap(), vec![0, 3]);
        let neither = Expr::Not(Box::new(either));
        assert_eq!(neither.eval_selection(&c).unwrap(), vec![1, 2]);
    }

    #[test]
    fn string_predicates() {
        let c = chunk();
        let contains = Expr::Contains {
            expr: Box::new(Expr::col(1)),
            pattern: "bc".into(),
        };
        assert_eq!(contains.eval_selection(&c).unwrap(), vec![1, 3]);
        let starts = Expr::StartsWith {
            expr: Box::new(Expr::col(1)),
            pattern: "b".into(),
        };
        assert_eq!(starts.eval_selection(&c).unwrap(), vec![1, 3]);
    }

    #[test]
    fn in_list() {
        let c = chunk();
        let inl = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![ScalarValue::Int64(2), ScalarValue::Int64(4)],
        };
        assert_eq!(inl.eval_selection(&c).unwrap(), vec![1, 3]);
    }

    #[test]
    fn arithmetic() {
        let c = chunk();
        let sum = Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::col(0)),
        };
        assert_eq!(sum.eval(&c).unwrap().i64_slice(), &[2, 4, 6, 8]);
        let mixed = Expr::Arith {
            op: ArithOp::Mul,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::col(2)),
        };
        let v = mixed.eval(&c).unwrap();
        assert_eq!(v.f64_slice()[1], 5.0);
        assert_eq!(
            mixed
                .data_type(&[DataType::Int64, DataType::Utf8, DataType::Float64])
                .unwrap(),
            DataType::Float64
        );
    }

    /// The `col CMP Int64-literal` selection fast path agrees with the
    /// generic bool-vector evaluation in every orientation, under chunk
    /// selections, and with NULLs.
    #[test]
    fn constant_comparison_fast_path_matches_generic() {
        let mut v = Vector::new_empty(DataType::Int64);
        for x in [
            ScalarValue::Int64(5),
            ScalarValue::Null,
            ScalarValue::Int64(-3),
            ScalarValue::Int64(9),
            ScalarValue::Int64(2),
        ] {
            v.push(&x).unwrap();
        }
        let mut c = DataChunk::new(vec![v]);
        let ops = [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ];
        for with_sel in [false, true] {
            if with_sel {
                c.set_selection(vec![4, 1, 0, 2]);
            }
            for op in ops {
                for lit in [-3i64, 2, 6] {
                    // Generic reference: wrap the comparison so the fast
                    // path cannot trigger (Not(Not(cmp)) evaluates the
                    // bool-vector way).
                    let direct = Expr::cmp(op, Expr::col(0), Expr::lit(ScalarValue::Int64(lit)));
                    let generic = Expr::Not(Box::new(Expr::Not(Box::new(direct.clone()))));
                    assert_eq!(
                        direct.eval_selection(&c).unwrap(),
                        generic.eval_selection(&c).unwrap(),
                        "op {op:?} lit {lit} sel {with_sel}"
                    );
                    // Literal-on-the-left flips the operator.
                    let flipped = Expr::cmp(op, Expr::lit(ScalarValue::Int64(lit)), Expr::col(0));
                    let flipped_generic = Expr::Not(Box::new(Expr::Not(Box::new(flipped.clone()))));
                    assert_eq!(
                        flipped.eval_selection(&c).unwrap(),
                        flipped_generic.eval_selection(&c).unwrap(),
                        "flipped op {op:?} lit {lit} sel {with_sel}"
                    );
                }
            }
        }
    }

    #[test]
    fn null_semantics() {
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(1)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let c = DataChunk::new(vec![v]);
        let pred = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(ScalarValue::Int64(1)));
        // NULL = 1 is not true → filtered out.
        assert_eq!(pred.eval_selection(&c).unwrap(), vec![0]);
        let isnull = Expr::IsNull(Box::new(Expr::col(0)));
        assert_eq!(isnull.eval_selection(&c).unwrap(), vec![1]);
    }

    #[test]
    fn division_by_zero_int() {
        let c = DataChunk::new(vec![Vector::from_i64(vec![10]), Vector::from_i64(vec![0])]);
        let div = Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::col(1)),
        };
        assert_eq!(div.eval(&c).unwrap().i64_slice(), &[0]);
    }

    #[test]
    fn agg_types() {
        let input = [DataType::Int64, DataType::Float64];
        let sum_i = AggExpr {
            func: AggFunc::Sum,
            input: Some(Expr::col(0)),
            alias: "s".into(),
        };
        assert_eq!(sum_i.output_type(&input).unwrap(), DataType::Int64);
        let avg = AggExpr {
            func: AggFunc::Avg,
            input: Some(Expr::col(0)),
            alias: "a".into(),
        };
        assert_eq!(avg.output_type(&input).unwrap(), DataType::Float64);
        assert_eq!(
            AggExpr::count_star("c").output_type(&input).unwrap(),
            DataType::Int64
        );
    }
}
