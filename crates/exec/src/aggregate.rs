//! Hash aggregation sink state (group-by + aggregate functions).
//!
//! [`AggregateState`] is one thread's (or one hash partition's) group
//! table. The table is keyed by the *vectorized* group-key hash — the same
//! per-row hash the partitioned [`crate::operators::AggregateSink`]
//! radix-routes on, computed once per chunk — with encoded-key collision
//! chains, so the hot loop never re-hashes per row and the encoded key
//! bytes are cloned only when a group is first seen (a per-row
//! `key_buf.clone()` used to dominate the allocation profile).

use crate::expr::{AggExpr, AggFunc};
use crate::hash_table::IdentityMap;
use rpt_common::{DataChunk, Error, Result, ScalarValue, Schema, Vector};

/// Running state of one aggregate in one group.
#[derive(Debug, Clone)]
pub enum AggState {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Min(Option<ScalarValue>),
    Max(Option<ScalarValue>),
    Avg { sum: f64, count: i64 },
}

/// `a + b` with `i64` overflow surfaced as [`Error::Exec`] instead of a
/// debug panic / silent release wrap (`what` names the aggregate).
#[inline]
fn checked_i64_add(a: i64, b: i64, what: &str) -> Result<i64> {
    a.checked_add(b)
        .ok_or_else(|| Error::Exec(format!("{what} overflowed i64 (adding {b} to {a})")))
}

impl AggState {
    fn new(func: AggFunc, float_sum: bool) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => {
                if float_sum {
                    AggState::SumF(0.0)
                } else {
                    AggState::SumI(0)
                }
            }
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, value: Option<&ScalarValue>) -> Result<()> {
        match self {
            AggState::Count(c) => {
                // COUNT(*) gets None input and counts every row; COUNT(x)
                // gets Some and skips NULLs.
                match value {
                    None => *c = checked_i64_add(*c, 1, "COUNT")?,
                    Some(v) if !v.is_null() => *c = checked_i64_add(*c, 1, "COUNT")?,
                    _ => {}
                }
            }
            AggState::SumI(s) => {
                if let Some(v) = value {
                    if let Some(x) = v.as_i64() {
                        *s = checked_i64_add(*s, x, "SUM")?;
                    }
                }
            }
            AggState::SumF(s) => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *s += x;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.partial_cmp_sql(c) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && cur.as_ref().is_none_or(|c| {
                            v.partial_cmp_sql(c) == Some(std::cmp::Ordering::Greater)
                        })
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *count = checked_i64_add(*count, 1, "AVG count")?;
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a = checked_i64_add(*a, *b, "COUNT")?,
            (AggState::SumI(a), AggState::SumI(b)) => *a = checked_i64_add(*a, *b, "SUM")?,
            (AggState::SumF(a), AggState::SumF(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref()
                        .is_none_or(|av| bv.partial_cmp_sql(av) == Some(std::cmp::Ordering::Less))
                    {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| {
                        bv.partial_cmp_sql(av) == Some(std::cmp::Ordering::Greater)
                    }) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Avg { sum: a, count: ac }, AggState::Avg { sum: b, count: bc }) => {
                *a += b;
                *ac = checked_i64_add(*ac, *bc, "AVG count")?;
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
        Ok(())
    }

    fn finalize(&self) -> ScalarValue {
        match self {
            AggState::Count(c) => ScalarValue::Int64(*c),
            AggState::SumI(s) => ScalarValue::Int64(*s),
            AggState::SumF(s) => ScalarValue::Float64(*s),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(ScalarValue::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    ScalarValue::Null
                } else {
                    ScalarValue::Float64(sum / *count as f64)
                }
            }
        }
    }
}

/// Encode a group key into comparable bytes (type-tagged).
fn encode_key(values: &[ScalarValue], out: &mut Vec<u8>) {
    out.clear();
    for v in values {
        match v {
            ScalarValue::Null => out.push(0),
            ScalarValue::Int64(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            ScalarValue::Float64(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            ScalarValue::Utf8(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ScalarValue::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
        }
    }
}

/// One group: its encoded key, decoded key values, running aggregate
/// states, and the next entry in this hash bucket's collision chain.
struct Group {
    hash: u64,
    key: Vec<u8>,
    vals: Vec<ScalarValue>,
    states: Vec<AggState>,
    next: Option<usize>,
}

/// Thread-local (or per-partition) hash-aggregate state.
///
/// The group table is chained: `heads` maps a group-key hash to the first
/// entry of its collision chain in `groups`. Lookups compare the encoded
/// key bytes only within one chain, and the key is cloned into the table
/// only when a *new* group is inserted (clone-on-miss — `key_allocs`
/// tracks exactly how many key buffers were ever allocated, which tests
/// pin to the distinct-group count).
pub struct AggregateState {
    group_cols: Vec<usize>,
    aggs: Vec<AggExpr>,
    float_sums: Vec<bool>,
    heads: IdentityMap<usize>,
    groups: Vec<Group>,
    key_allocs: u64,
}

impl AggregateState {
    pub fn new(
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: &[rpt_common::DataType],
    ) -> Result<AggregateState> {
        let float_sums = aggs
            .iter()
            .map(|a| {
                Ok(match (&a.func, &a.input) {
                    (AggFunc::Sum, Some(e)) => {
                        e.data_type(input_types)? == rpt_common::DataType::Float64
                    }
                    _ => false,
                })
            })
            .collect::<Result<Vec<bool>>>()?;
        Ok(AggregateState {
            group_cols,
            aggs,
            float_sums,
            heads: IdentityMap::default(),
            groups: Vec::new(),
            key_allocs: 0,
        })
    }

    /// Number of distinct groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// How many encoded group keys were cloned into the table — exactly
    /// one per distinct group (the allocation-sensitivity probe: the old
    /// implementation cloned the key buffer once per *input row*).
    pub fn key_allocs(&self) -> u64 {
        self.key_allocs
    }

    /// Evaluate the aggregate input expressions once for a whole chunk.
    pub fn eval_inputs(&self, chunk: &DataChunk) -> Result<Vec<Option<Vector>>> {
        self.aggs
            .iter()
            .map(|a| a.input.as_ref().map(|e| e.eval(chunk)).transpose())
            .collect()
    }

    /// Vectorized group-key hashes over the chunk's logical rows — the
    /// same hash the partitioned sink radix-routes on.
    pub fn group_hashes(&self, chunk: &DataChunk) -> Vec<u64> {
        if self.group_cols.is_empty() {
            vec![0; chunk.num_rows()]
        } else {
            crate::operators::key_hashes(chunk, &self.group_cols)
        }
    }

    /// Consume a chunk (Sink): evaluate inputs + hashes once, then fold
    /// every logical row in.
    pub fn update(&mut self, chunk: &DataChunk) -> Result<()> {
        let n = chunk.num_rows();
        if n == 0 {
            return Ok(());
        }
        let inputs = self.eval_inputs(chunk)?;
        let hashes = self.group_hashes(chunk);
        self.update_rows(chunk, &inputs, 0..n, &hashes)
    }

    /// Walk the collision chain of `hash` for an entry with exactly these
    /// encoded key bytes — the one probe both the build path
    /// ([`Self::update_rows`]) and the merge path ([`Self::merge`]) use.
    fn find_group(&self, hash: u64, key: &[u8]) -> Option<usize> {
        let mut at = self.heads.get(&hash).copied();
        while let Some(i) = at {
            if self.groups[i].key == key {
                return Some(i);
            }
            at = self.groups[i].next;
        }
        None
    }

    /// Fold the given logical rows into the group table. `inputs` are the
    /// chunk-wide aggregate input vectors (from [`Self::eval_inputs`]) and
    /// `hashes` the chunk-wide group-key hashes, both indexed by logical
    /// row — the partitioned sink computes them once per chunk and calls
    /// this once per partition with that partition's row subset.
    pub fn update_rows(
        &mut self,
        chunk: &DataChunk,
        inputs: &[Option<Vector>],
        rows: impl IntoIterator<Item = usize>,
        hashes: &[u64],
    ) -> Result<()> {
        let mut key_buf = Vec::new();
        let mut key_vals: Vec<ScalarValue> = Vec::with_capacity(self.group_cols.len());
        for row in rows {
            key_vals.clear();
            for &g in &self.group_cols {
                key_vals.push(chunk.value(g, row));
            }
            encode_key(&key_vals, &mut key_buf);
            let hash = hashes[row];
            // Probe the chain for this hash; clone the key only on a miss.
            let idx = match self.find_group(hash, &key_buf) {
                Some(i) => i,
                None => {
                    let states = self
                        .aggs
                        .iter()
                        .zip(self.float_sums.iter())
                        .map(|(a, &f)| AggState::new(a.func, f))
                        .collect();
                    let idx = self.groups.len();
                    self.key_allocs += 1;
                    self.groups.push(Group {
                        hash,
                        key: key_buf.clone(),
                        vals: key_vals.clone(),
                        states,
                        next: self.heads.insert(hash, idx),
                    });
                    idx
                }
            };
            for (i, state) in self.groups[idx].states.iter_mut().enumerate() {
                let v = inputs[i].as_ref().map(|vec| vec.get(row));
                state.update(v.as_ref())?;
            }
        }
        Ok(())
    }

    /// Merge another thread's state for the same partition (Combine).
    /// Moved-in groups reuse the other state's key/value allocations.
    pub fn merge(&mut self, other: AggregateState) -> Result<()> {
        for group in other.groups {
            match self.find_group(group.hash, &group.key) {
                Some(i) => {
                    for (a, b) in self.groups[i].states.iter_mut().zip(group.states.iter()) {
                        a.merge(b)?;
                    }
                }
                None => {
                    let idx = self.groups.len();
                    self.groups.push(Group {
                        next: self.heads.insert(group.hash, idx),
                        ..group
                    });
                }
            }
        }
        Ok(())
    }

    /// Produce the output chunk (Finalize). Groups are sorted by encoded
    /// key for determinism (within one partition; partitions are published
    /// in partition-index order).
    pub fn finalize(self, output_schema: &Schema) -> Result<DataChunk> {
        let mut entries: Vec<Group> = self.groups;
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut columns: Vec<Vector> = output_schema
            .fields
            .iter()
            .map(|f| Vector::new_empty(f.data_type))
            .collect();
        let ng = self.group_cols.len();
        if columns.len() != ng + self.aggs.len() {
            return Err(Error::Plan(format!(
                "aggregate output schema has {} fields, expected {}",
                columns.len(),
                ng + self.aggs.len()
            )));
        }
        for group in &entries {
            for (i, v) in group.vals.iter().enumerate() {
                columns[i].push(v)?;
            }
            for (i, s) in group.states.iter().enumerate() {
                columns[ng + i].push(&s.finalize())?;
            }
        }
        // Global aggregation with zero rows still yields one row.
        if entries.is_empty() && ng == 0 {
            for (i, a) in self.aggs.iter().enumerate() {
                let s = AggState::new(a.func, self.float_sums[i]);
                columns[i].push(&s.finalize())?;
            }
        }
        Ok(DataChunk::new(columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use rpt_common::{DataType, Field};

    fn chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![1, 1, 2, 2, 2]),
            Vector::from_i64(vec![10, 20, 30, 40, 50]),
            Vector::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
        ])
    }

    fn agg(func: AggFunc, col: usize, alias: &str) -> AggExpr {
        AggExpr {
            func,
            input: Some(Expr::col(col)),
            alias: alias.into(),
        }
    }

    #[test]
    fn grouped_sum_count() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mut st = AggregateState::new(
            vec![0],
            vec![agg(AggFunc::Sum, 1, "s"), AggExpr::count_star("c")],
            &types,
        )
        .unwrap();
        st.update(&chunk()).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("s", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, 0), ScalarValue::Int64(30)); // group 1: 10+20
        assert_eq!(out.value(2, 0), ScalarValue::Int64(2));
        assert_eq!(out.value(1, 1), ScalarValue::Int64(120)); // group 2
        assert_eq!(out.value(2, 1), ScalarValue::Int64(3));
    }

    #[test]
    fn global_min_max_avg() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mut st = AggregateState::new(
            vec![],
            vec![
                agg(AggFunc::Min, 1, "mn"),
                agg(AggFunc::Max, 1, "mx"),
                agg(AggFunc::Avg, 2, "av"),
            ],
            &types,
        )
        .unwrap();
        st.update(&chunk()).unwrap();
        let schema = Schema::new(vec![
            Field::new("mn", DataType::Int64),
            Field::new("mx", DataType::Int64),
            Field::new("av", DataType::Float64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), ScalarValue::Int64(10));
        assert_eq!(out.value(1, 0), ScalarValue::Int64(50));
        assert_eq!(out.value(2, 0), ScalarValue::Float64(3.0));
    }

    #[test]
    fn merge_combines_thread_states() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mk = || AggregateState::new(vec![0], vec![AggExpr::count_star("c")], &types).unwrap();
        let mut a = mk();
        let mut b = mk();
        let mut c1 = chunk();
        c1.set_selection(vec![0, 1]); // group 1 rows
        let mut c2 = chunk();
        c2.set_selection(vec![2, 3, 4]); // group 2 rows
        a.update(&c1).unwrap();
        b.update(&c2).unwrap();
        a.merge(b).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = a.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, 0), ScalarValue::Int64(2));
        assert_eq!(out.value(1, 1), ScalarValue::Int64(3));
    }

    #[test]
    fn global_agg_on_empty_input_yields_one_row() {
        let types = [DataType::Int64];
        let st = AggregateState::new(vec![], vec![AggExpr::count_star("c")], &types).unwrap();
        let schema = Schema::new(vec![Field::new("c", DataType::Int64)]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), ScalarValue::Int64(0));
    }

    #[test]
    fn grouped_agg_on_empty_input_yields_zero_rows() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let st = AggregateState::new(vec![0], vec![AggExpr::count_star("c")], &types).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn count_skips_nulls_countstar_does_not() {
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(1)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let c = DataChunk::new(vec![v]);
        let types = [DataType::Int64];
        let mut st = AggregateState::new(
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    input: Some(Expr::col(0)),
                    alias: "cnt".into(),
                },
                AggExpr::count_star("star"),
            ],
            &types,
        )
        .unwrap();
        st.update(&c).unwrap();
        let schema = Schema::new(vec![
            Field::new("cnt", DataType::Int64),
            Field::new("star", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.value(0, 0), ScalarValue::Int64(1));
        assert_eq!(out.value(1, 0), ScalarValue::Int64(2));
    }

    /// Allocation sensitivity: the encoded group key is cloned into the
    /// table exactly once per *distinct group*, never per input row (the
    /// old `groups.entry(key_buf.clone())` cloned on every row).
    #[test]
    fn key_cloned_only_on_first_sight_of_a_group() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mut st = AggregateState::new(vec![0], vec![AggExpr::count_star("c")], &types).unwrap();
        for _ in 0..100 {
            st.update(&chunk()).unwrap(); // 5 rows, 2 distinct groups
        }
        assert_eq!(st.num_groups(), 2);
        assert_eq!(st.key_allocs(), 2, "500 rows must allocate only 2 keys");
    }

    /// `i64` SUM overflow surfaces as `Error::Exec` instead of panicking in
    /// debug or silently wrapping in release.
    #[test]
    fn sum_overflow_is_an_exec_error() {
        let types = [DataType::Int64];
        let mut st = AggregateState::new(vec![], vec![agg(AggFunc::Sum, 0, "s")], &types).unwrap();
        st.update(&DataChunk::new(vec![Vector::from_i64(vec![i64::MAX])]))
            .unwrap();
        let err = st
            .update(&DataChunk::new(vec![Vector::from_i64(vec![1])]))
            .unwrap_err();
        assert!(matches!(err, Error::Exec(_)), "got {err}");
        assert!(err.to_string().contains("SUM"), "got {err}");
    }

    /// Overflow across a thread-state merge is caught too.
    #[test]
    fn sum_overflow_in_merge_is_an_exec_error() {
        let types = [DataType::Int64];
        let mk = || AggregateState::new(vec![], vec![agg(AggFunc::Sum, 0, "s")], &types).unwrap();
        let mut a = mk();
        let mut b = mk();
        a.update(&DataChunk::new(vec![Vector::from_i64(vec![i64::MAX])]))
            .unwrap();
        b.update(&DataChunk::new(vec![Vector::from_i64(vec![i64::MAX])]))
            .unwrap();
        let err = a.merge(b).unwrap_err();
        assert!(matches!(err, Error::Exec(_)), "got {err}");
    }

    /// Values *below* the overflow threshold still sum exactly.
    #[test]
    fn sum_near_i64_max_is_exact() {
        let types = [DataType::Int64];
        let mut st = AggregateState::new(vec![], vec![agg(AggFunc::Sum, 0, "s")], &types).unwrap();
        st.update(&DataChunk::new(vec![Vector::from_i64(vec![
            i64::MAX - 10,
            7,
            3,
        ])]))
        .unwrap();
        let schema = Schema::new(vec![Field::new("s", DataType::Int64)]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.value(0, 0), ScalarValue::Int64(i64::MAX));
    }
}
