//! Hash aggregation sink state (group-by + aggregate functions).
//!
//! [`AggregateState`] is one thread's (or one hash partition's) group
//! table, behind the [`GroupTable`] trait with two implementations:
//!
//! * [`FixedKeyGroupTable`] — the **fast path**, selected at sink
//!   construction when every group column is fixed-width (`Int64`/`Bool`).
//!   Each row's key is packed into one `u64`/`u128` straight from the
//!   typed [`Vector`] payloads (one NULL bit per column, no `ScalarValue`,
//!   no byte encoding) and groups live in an open-addressed table probed on
//!   the packed key — no collision-chain byte compares.
//! * [`GenericGroupTable`] — the fallback for `Utf8`/`Float64` keys (and
//!   group-less global aggregates): type-tagged byte-encoded keys in a
//!   hash-chained table, compared only within a chain and cloned only when
//!   a group is first seen.
//!
//! Both paths hash group keys *vectorized once per chunk* (the same per-row
//! hash the partitioned [`crate::operators::AggregateSink`] radix-routes
//! on, so fast and generic runs route groups identically and `threads == 1`
//! output is byte-identical between them), and both accumulate through the
//! columnar [`AggState::update_vector`], which consumes whole selected
//! column slices per group run instead of materializing one `ScalarValue`
//! per row per aggregate.

use crate::expr::{AggExpr, AggFunc};
use crate::hash_table::IdentityMap;
use rpt_common::{
    ColumnData, DataChunk, DataType, Error, Result, ScalarValue, Schema, Utf8Dict, Vector,
    DICT_KEY_BITS,
};
use std::any::Any;
use std::cmp::Ordering;
use std::sync::Arc;

/// Running state of one aggregate in one group.
#[derive(Debug, Clone)]
pub enum AggState {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Min(Option<ScalarValue>),
    Max(Option<ScalarValue>),
    Avg { sum: f64, count: i64 },
}

/// Allocation-sensitivity counters fed by [`AggState::update_vector`]:
/// tests pin these the way PR 4 pinned `key_allocs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct AggUpdateStats {
    /// MIN/MAX replacements — i.e. `ScalarValue` clones into the running
    /// state. At most one per `update_vector` call (the old per-row path
    /// cloned on every improving row, so sorted input cloned per row).
    pub minmax_clones: u64,
}

/// `a + b` with `i64` overflow surfaced as [`Error::Exec`] instead of a
/// debug panic / silent release wrap (`what` names the aggregate).
#[inline]
fn checked_i64_add(a: i64, b: i64, what: &str) -> Result<i64> {
    a.checked_add(b)
        .ok_or_else(|| Error::Exec(format!("{what} overflowed i64 (adding {b} to {a})")))
}

/// Float accumulate. IEEE addition saturates to ±inf rather than wrapping,
/// so no checked variant exists or is needed; routing through this helper
/// keeps the no-bare-`+=` lint signal clean in accumulator paths.
#[inline]
fn add_f64(acc_f64: &mut f64, x: f64) {
    *acc_f64 += x;
}

/// `partial_cmp_sql` between a typed column element and a scalar, without
/// materializing the element as a `ScalarValue`.
fn cmp_elem_sql(v: &Vector, row: usize, c: &ScalarValue) -> Option<Ordering> {
    use ScalarValue::*;
    match (&v.data, c) {
        (_, Null) => None,
        (ColumnData::Int64(a), Int64(b)) => Some(a[row].cmp(b)),
        (ColumnData::Int64(a), Float64(b)) => (a[row] as f64).partial_cmp(b),
        (ColumnData::Float64(a), Float64(b)) => a[row].partial_cmp(b),
        (ColumnData::Float64(a), Int64(b)) => a[row].partial_cmp(&(*b as f64)),
        (ColumnData::Utf8(a), Utf8(b)) => Some(a[row].cmp(b)),
        (ColumnData::Bool(a), Bool(b)) => Some(a[row].cmp(b)),
        _ => None,
    }
}

/// Batched MIN/MAX: scan the selected rows for the batch extremum by
/// reference (typed compares, no `ScalarValue` per row), then compare that
/// one candidate against the running value and clone only on replacement.
///
/// Matches the scalar path's strict-improvement and NULL semantics; the one
/// divergence is `f64` NaN *mid-batch* (a NaN candidate absorbs the rest of
/// its batch instead of each row comparing against the running value
/// individually) — both group-table paths batch identically, so they stay
/// consistent with each other.
fn update_minmax(
    cur: &mut Option<ScalarValue>,
    input: Option<&Vector>,
    sel: &[u32],
    want: Ordering,
    stats: &mut AggUpdateStats,
) {
    let Some(v) = input else { return };
    let mut best: Option<usize> = None;
    macro_rules! scan {
        ($vals:expr, $cmp:expr) => {{
            for &r in sel {
                let r = r as usize;
                if !v.is_valid(r) {
                    continue;
                }
                match best {
                    None => best = Some(r),
                    Some(b) => {
                        if $cmp(&$vals[r], &$vals[b]) == Some(want) {
                            best = Some(r);
                        }
                    }
                }
            }
        }};
    }
    match &v.data {
        ColumnData::Int64(vals) => scan!(vals, |a: &i64, b: &i64| Some(a.cmp(b))),
        ColumnData::Float64(vals) => scan!(vals, |a: &f64, b: &f64| a.partial_cmp(b)),
        ColumnData::Utf8(vals) => scan!(vals, |a: &String, b: &String| Some(a.cmp(b))),
        ColumnData::Bool(vals) => scan!(vals, |a: &bool, b: &bool| Some(a.cmp(b))),
    }
    let Some(b) = best else { return };
    let better = match cur.as_ref() {
        None => true,
        Some(c) => cmp_elem_sql(v, b, c) == Some(want),
    };
    if better {
        *cur = Some(v.get(b));
        stats.minmax_clones = stats.minmax_clones.saturating_add(1);
    }
}

impl AggState {
    fn new(func: AggFunc, float_sum: bool) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => {
                if float_sum {
                    AggState::SumF(0.0)
                } else {
                    AggState::SumI(0)
                }
            }
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Scalar update (merge helpers and tests; the hot paths batch through
    /// [`AggState::update_vector`]).
    pub fn update(&mut self, value: Option<&ScalarValue>) -> Result<()> {
        match self {
            AggState::Count(c) => {
                // COUNT(*) gets None input and counts every row; COUNT(x)
                // gets Some and skips NULLs.
                match value {
                    None => *c = checked_i64_add(*c, 1, "COUNT")?,
                    Some(v) if !v.is_null() => *c = checked_i64_add(*c, 1, "COUNT")?,
                    _ => {}
                }
            }
            AggState::SumI(s) => {
                if let Some(x) = value.and_then(|v| v.as_i64()) {
                    *s = checked_i64_add(*s, x, "SUM")?;
                }
            }
            AggState::SumF(s) => {
                if let Some(x) = value.and_then(|v| v.as_f64()) {
                    add_f64(s, x);
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.partial_cmp_sql(c) == Some(Ordering::Less))
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.partial_cmp_sql(c) == Some(Ordering::Greater))
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = value.and_then(|v| v.as_f64()) {
                    add_f64(sum, x);
                    *count = checked_i64_add(*count, 1, "AVG count")?;
                }
            }
        }
        Ok(())
    }

    /// Columnar update: fold the selected rows of `input` into this state
    /// in one call, reading the typed payload slices directly — no
    /// per-row `ScalarValue`. `sel` holds logical row indices into `input`
    /// (a flat chunk-wide vector from `eval_inputs`); `input` is `None`
    /// only for `COUNT(*)`.
    pub fn update_vector(
        &mut self,
        input: Option<&Vector>,
        sel: &[u32],
        stats: &mut AggUpdateStats,
    ) -> Result<()> {
        match self {
            AggState::Count(c) => {
                let n = match input {
                    None => sel.len() as i64,
                    Some(v) => sel.iter().filter(|&&r| v.is_valid(r as usize)).count() as i64,
                };
                *c = checked_i64_add(*c, n, "COUNT")?;
            }
            AggState::SumI(s) => {
                let Some(v) = input else { return Ok(()) };
                match &v.data {
                    ColumnData::Int64(vals) => {
                        for &r in sel {
                            let r = r as usize;
                            if v.is_valid(r) {
                                *s = checked_i64_add(*s, vals[r], "SUM")?;
                            }
                        }
                    }
                    ColumnData::Bool(vals) => {
                        for &r in sel {
                            let r = r as usize;
                            if v.is_valid(r) {
                                *s = checked_i64_add(*s, vals[r] as i64, "SUM")?;
                            }
                        }
                    }
                    // Float64/Utf8 have no i64 coercion; the scalar path
                    // skips them too.
                    _ => {}
                }
            }
            AggState::SumF(s) => {
                let Some(v) = input else { return Ok(()) };
                match &v.data {
                    ColumnData::Float64(vals) => {
                        for &r in sel {
                            let r = r as usize;
                            if v.is_valid(r) {
                                add_f64(s, vals[r]);
                            }
                        }
                    }
                    ColumnData::Int64(vals) => {
                        for &r in sel {
                            let r = r as usize;
                            if v.is_valid(r) {
                                add_f64(s, vals[r] as f64);
                            }
                        }
                    }
                    _ => {}
                }
            }
            AggState::Min(cur) => update_minmax(cur, input, sel, Ordering::Less, stats),
            AggState::Max(cur) => update_minmax(cur, input, sel, Ordering::Greater, stats),
            AggState::Avg { sum, count } => {
                let Some(v) = input else { return Ok(()) };
                let mut n = 0i64;
                match &v.data {
                    ColumnData::Float64(vals) => {
                        for &r in sel {
                            let r = r as usize;
                            if v.is_valid(r) {
                                add_f64(sum, vals[r]);
                                n = n.saturating_add(1);
                            }
                        }
                    }
                    ColumnData::Int64(vals) => {
                        for &r in sel {
                            let r = r as usize;
                            if v.is_valid(r) {
                                add_f64(sum, vals[r] as f64);
                                n = n.saturating_add(1);
                            }
                        }
                    }
                    _ => {}
                }
                *count = checked_i64_add(*count, n, "AVG count")?;
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a = checked_i64_add(*a, *b, "COUNT")?,
            (AggState::SumI(a), AggState::SumI(b)) => *a = checked_i64_add(*a, *b, "SUM")?,
            (AggState::SumF(a), AggState::SumF(b)) => add_f64(a, *b),
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref()
                        .is_none_or(|av| bv.partial_cmp_sql(av) == Some(Ordering::Less))
                    {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref()
                        .is_none_or(|av| bv.partial_cmp_sql(av) == Some(Ordering::Greater))
                    {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Avg { sum: a, count: ac }, AggState::Avg { sum: b, count: bc }) => {
                add_f64(a, *b);
                *ac = checked_i64_add(*ac, *bc, "AVG count")?;
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
        Ok(())
    }

    fn finalize(&self) -> ScalarValue {
        match self {
            AggState::Count(c) => ScalarValue::Int64(*c),
            AggState::SumI(s) => ScalarValue::Int64(*s),
            AggState::SumF(s) => ScalarValue::Float64(*s),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(ScalarValue::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    ScalarValue::Null
                } else {
                    ScalarValue::Float64(sum / *count as f64)
                }
            }
        }
    }
}

fn new_states(aggs: &[AggExpr], float_sums: &[bool]) -> Vec<AggState> {
    aggs.iter()
        .zip(float_sums.iter())
        .map(|(a, &f)| AggState::new(a.func, f))
        .collect()
}

/// Encode a group key into comparable bytes (type-tagged).
fn encode_key(values: &[ScalarValue], out: &mut Vec<u8>) {
    out.clear();
    for v in values {
        match v {
            ScalarValue::Null => out.push(0),
            ScalarValue::Int64(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            ScalarValue::Float64(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            ScalarValue::Utf8(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ScalarValue::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
        }
    }
}

// --------------------------------------------------------- packed key layout

/// Bit layout of a packed fixed-width group key: per column (in group-col
/// order) one NULL bit followed by the column's value bits, packed
/// left-to-right into a single integer. Eligibility rule: every group
/// column has a fixed-width encoding ([`DataType::fixed_key_bits`], or
/// [`DICT_KEY_BITS`]-wide dictionary codes for a `Utf8` column with a
/// planner-attached dictionary) and the widths plus NULL bits fit in 128
/// bits — so `GROUP BY one Int64` (65 bits), `Int64 + Bool` (67), and a
/// dictionary-coded string column (33) take the fast path while two
/// `Int64`s (130) or a dictionary-less `Utf8`/`Float64` key fall back to
/// the generic table.
#[derive(Debug, Clone)]
pub struct KeyLayout {
    widths: Vec<u32>,
    types: Vec<DataType>,
    /// Per group column: the table dictionary its codes are packed
    /// against (`Utf8` columns only).
    dicts: Vec<Option<Arc<Utf8Dict>>>,
    total_bits: u32,
}

impl KeyLayout {
    /// The layout for these group columns, or `None` when the key is not
    /// fixed-width packable (→ generic table). `key_dicts` is indexed by
    /// *input column* and carries the table dictionary of each
    /// dictionary-coded `Utf8` column (planner-attached).
    pub fn try_new(
        group_cols: &[usize],
        input_types: &[DataType],
        key_dicts: &[Option<Arc<Utf8Dict>>],
    ) -> Option<KeyLayout> {
        if group_cols.is_empty() {
            return None;
        }
        let mut widths = Vec::with_capacity(group_cols.len());
        let mut types = Vec::with_capacity(group_cols.len());
        let mut dicts = Vec::with_capacity(group_cols.len());
        let mut total = 0u32;
        for &g in group_cols {
            let dt = *input_types.get(g)?;
            let (w, dict) = match key_dicts.get(g).and_then(Clone::clone) {
                Some(d) if dt == DataType::Utf8 => (DICT_KEY_BITS, Some(d)),
                _ => (dt.fixed_key_bits()?, None),
            };
            widths.push(w);
            types.push(dt);
            dicts.push(dict);
            total = total.saturating_add(w + 1);
        }
        (total <= 128).then_some(KeyLayout {
            widths,
            types,
            dicts,
            total_bits: total,
        })
    }

    /// Total packed width (value bits + one NULL bit per column).
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    fn num_cols(&self) -> usize {
        self.widths.len()
    }

    /// Pack every logical row's key columns into one integer per row,
    /// straight from the typed payloads. Dictionary group columns pack
    /// their codes: when the chunk vector carries the layout's dictionary
    /// (the scan served it), the `Int64` code payload packs directly; a
    /// flat string vector (or one on a different dictionary) falls back to
    /// a per-row code lookup.
    fn pack(&self, chunk: &DataChunk, group_cols: &[usize]) -> Vec<u128> {
        let mut acc = vec![0u128; chunk.num_rows()];
        let sel = chunk.selection.as_deref();
        for (i, &g) in group_cols.iter().enumerate() {
            let v = &chunk.columns[g];
            match &self.dicts[i] {
                None => v.pack_fixed_key(sel, self.widths[i], &mut acc),
                Some(d) if v.dict.as_ref().is_some_and(|vd| Arc::ptr_eq(vd, d)) => {
                    v.pack_fixed_key(sel, self.widths[i], &mut acc)
                }
                Some(d) => pack_dict_lookup(v, d, sel, self.widths[i], &mut acc),
            }
        }
        acc
    }

    /// Unpack a key back into scalars (finalize only — never on the per-row
    /// path). Dictionary codes decode back to their strings.
    fn decode(&self, mut key: u128, out: &mut Vec<ScalarValue>) {
        out.clear();
        for i in (0..self.widths.len()).rev() {
            let (w, dt) = (self.widths[i], self.types[i]);
            let null = (key >> w) & 1 == 1;
            let val = key & ((1u128 << w) - 1);
            key >>= w + 1;
            out.push(if null {
                ScalarValue::Null
            } else {
                match dt {
                    DataType::Int64 => ScalarValue::Int64(val as u64 as i64),
                    DataType::Bool => ScalarValue::Bool(val != 0),
                    DataType::Utf8 => {
                        let d = self.dicts[i]
                            .as_ref()
                            .expect("dictionary-less Utf8 in packed key layout");
                        ScalarValue::Utf8(d.value(val as usize).to_string())
                    }
                    _ => unreachable!("non-fixed-width type in packed key layout"),
                }
            });
        }
        out.reverse();
    }
}

/// [`Vector::pack_fixed_key`]'s protocol for a string column whose codes
/// must come from a per-row dictionary lookup (the vector is flat, or
/// dictionary-backed on a *different* dictionary). A value missing from
/// the layout dictionary is a planner invariant violation: the dictionary
/// covers the base column's full value set and group keys are a subset of
/// it.
fn pack_dict_lookup(v: &Vector, d: &Utf8Dict, sel: Option<&[u32]>, width: u32, acc: &mut [u128]) {
    let shift = width + 1;
    for (i, a) in acc.iter_mut().enumerate() {
        let row = sel.map_or(i, |s| s[i] as usize);
        *a = (*a << shift)
            | if v.is_valid(row) {
                d.code_of(v.utf8_at(row))
                    .expect("group value missing from the column dictionary")
                    as u128
            } else {
                1u128 << width
            };
    }
}

/// Per-chunk key material, computed once by
/// [`AggregateState::prepare_keys`] and shared across a sink's partitions:
/// the vectorized group-key hashes (identical values on both table paths,
/// so radix routing — and therefore `threads == 1` output — is
/// byte-identical between them) plus, on the fast path, the packed keys.
pub struct ChunkKeys {
    pub hashes: Vec<u64>,
    packed: Option<Vec<u128>>,
}

/// A packed group key: `u64` when the layout fits 64 bits, `u128` up to
/// 128. Keys are always *packed* as `u128` and narrowed per table.
pub(crate) trait PackedKey: Copy + Eq + Send + 'static {
    fn from_u128(v: u128) -> Self;
    fn to_u128(self) -> u128;
}

impl PackedKey for u64 {
    #[inline(always)]
    fn from_u128(v: u128) -> u64 {
        v as u64
    }
    #[inline(always)]
    fn to_u128(self) -> u128 {
        self as u128
    }
}

impl PackedKey for u128 {
    #[inline(always)]
    fn from_u128(v: u128) -> u128 {
        v
    }
    #[inline(always)]
    fn to_u128(self) -> u128 {
        self
    }
}

// ------------------------------------------------------------- group tables

/// One group table implementation. `update` folds a set of logical rows in
/// (the partitioned sink calls it once per partition with that partition's
/// row subset); `merge` combines another worker's table of the *same
/// concrete type* (downcast like `Sink::combine`); `finalize` emits the
/// result chunk with groups sorted by their *encoded key bytes*, so every
/// implementation produces the same deterministic order.
pub(crate) trait GroupTable: Send {
    fn update(
        &mut self,
        chunk: &DataChunk,
        inputs: &[Option<Vector>],
        rows: &[u32],
        keys: &ChunkKeys,
    ) -> Result<()>;

    fn merge(&mut self, other: Box<dyn GroupTable>) -> Result<()>;

    fn num_groups(&self) -> usize;

    fn key_allocs(&self) -> u64;

    fn stats(&self) -> AggUpdateStats;

    fn finalize(self: Box<Self>, output_schema: &Schema) -> Result<DataChunk>;

    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

fn downcast_table<T: GroupTable + 'static>(other: Box<dyn GroupTable>) -> Result<Box<T>> {
    other
        .into_any()
        .downcast::<T>()
        .map_err(|_| Error::Exec("merging mismatched group tables".into()))
}

/// Detect runs of equal group indices in `row_groups` (parallel to `rows`)
/// and hand each `(group, row-slice)` run to `fold` — which feeds the
/// columnar [`AggState::update_vector`], one call per `(run, aggregate)`
/// instead of one `ScalarValue` per `(row, aggregate)`.
fn for_each_run(
    row_groups: &[u32],
    rows: &[u32],
    mut fold: impl FnMut(usize, &[u32]) -> Result<()>,
) -> Result<()> {
    let mut start = 0;
    while start < rows.len() {
        let g = row_groups[start];
        let mut end = start + 1;
        while end < rows.len() && row_groups[end] == g {
            end = end.saturating_add(1);
        }
        fold(g as usize, &rows[start..end])?;
        start = end;
    }
    Ok(())
}

/// One generic-path group: its encoded key, decoded key values, running
/// aggregate states, and the next entry in this hash bucket's chain.
struct Group {
    hash: u64,
    key: Vec<u8>,
    vals: Vec<ScalarValue>,
    states: Vec<AggState>,
    next: Option<usize>,
}

/// The fallback table: type-tagged byte-encoded keys in a chained hash
/// table (`heads` maps a group-key hash to its chain in `groups`; lookups
/// compare encoded bytes only within one chain, and the key is cloned into
/// the table only when a *new* group is inserted — `key_allocs` pins that).
struct GenericGroupTable {
    group_cols: Vec<usize>,
    aggs: Vec<AggExpr>,
    float_sums: Vec<bool>,
    heads: IdentityMap<usize>,
    groups: Vec<Group>,
    key_allocs: u64,
    stats: AggUpdateStats,
    /// Scratch: per-row group index of the last `update` call.
    row_groups: Vec<u32>,
}

impl GenericGroupTable {
    fn new(group_cols: Vec<usize>, aggs: Vec<AggExpr>, float_sums: Vec<bool>) -> GenericGroupTable {
        GenericGroupTable {
            group_cols,
            aggs,
            float_sums,
            heads: IdentityMap::default(),
            groups: Vec::new(),
            key_allocs: 0,
            stats: AggUpdateStats::default(),
            row_groups: Vec::new(),
        }
    }

    /// Walk the collision chain of `hash` for an entry with exactly these
    /// encoded key bytes.
    fn find_group(&self, hash: u64, key: &[u8]) -> Option<usize> {
        let mut at = self.heads.get(&hash).copied();
        while let Some(i) = at {
            if self.groups[i].key == key {
                return Some(i);
            }
            at = self.groups[i].next;
        }
        None
    }
}

impl GroupTable for GenericGroupTable {
    fn update(
        &mut self,
        chunk: &DataChunk,
        inputs: &[Option<Vector>],
        rows: &[u32],
        keys: &ChunkKeys,
    ) -> Result<()> {
        let mut key_buf = Vec::new();
        let mut key_vals: Vec<ScalarValue> = Vec::with_capacity(self.group_cols.len());
        self.row_groups.clear();
        for &row in rows {
            let row = row as usize;
            key_vals.clear();
            for &g in &self.group_cols {
                key_vals.push(chunk.value(g, row));
            }
            encode_key(&key_vals, &mut key_buf);
            let hash = keys.hashes[row];
            // Probe the chain for this hash; clone the key only on a miss.
            let idx = match self.find_group(hash, &key_buf) {
                Some(i) => i,
                None => {
                    let idx = self.groups.len();
                    self.key_allocs = self.key_allocs.saturating_add(1);
                    self.groups.push(Group {
                        hash,
                        key: key_buf.clone(),
                        vals: key_vals.clone(),
                        states: new_states(&self.aggs, &self.float_sums),
                        next: self.heads.insert(hash, idx),
                    });
                    idx
                }
            };
            self.row_groups.push(idx as u32);
        }
        let (groups, row_groups, stats) = (&mut self.groups, &self.row_groups, &mut self.stats);
        for_each_run(row_groups, rows, |g, sel| {
            for (i, st) in groups[g].states.iter_mut().enumerate() {
                st.update_vector(inputs[i].as_ref(), sel, stats)?;
            }
            Ok(())
        })
    }

    /// Merge another worker's generic table for the same partition.
    /// Moved-in groups reuse the other table's key/value allocations.
    fn merge(&mut self, other: Box<dyn GroupTable>) -> Result<()> {
        let other = downcast_table::<GenericGroupTable>(other)?;
        for group in other.groups {
            match self.find_group(group.hash, &group.key) {
                Some(i) => {
                    for (a, b) in self.groups[i].states.iter_mut().zip(group.states.iter()) {
                        a.merge(b)?;
                    }
                }
                None => {
                    let idx = self.groups.len();
                    self.groups.push(Group {
                        next: self.heads.insert(group.hash, idx),
                        ..group
                    });
                }
            }
        }
        Ok(())
    }

    fn num_groups(&self) -> usize {
        self.groups.len()
    }

    fn key_allocs(&self) -> u64 {
        self.key_allocs
    }

    fn stats(&self) -> AggUpdateStats {
        self.stats
    }

    /// Produce the output chunk. Groups are sorted by encoded key for
    /// determinism (within one partition; partitions are published in
    /// partition-index order).
    fn finalize(self: Box<Self>, output_schema: &Schema) -> Result<DataChunk> {
        let this = *self;
        let mut entries: Vec<Group> = this.groups;
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let ng = this.group_cols.len();
        let mut columns = output_columns(output_schema, ng, this.aggs.len())?;
        for group in &entries {
            for (i, v) in group.vals.iter().enumerate() {
                columns[i].push(v)?;
            }
            for (i, s) in group.states.iter().enumerate() {
                columns[ng + i].push(&s.finalize())?;
            }
        }
        // Global aggregation with zero rows still yields one row.
        if entries.is_empty() && ng == 0 {
            for (i, s) in new_states(&this.aggs, &this.float_sums).iter().enumerate() {
                columns[i].push(&s.finalize())?;
            }
        }
        Ok(DataChunk::new(columns))
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Validate the output schema and build its empty column vectors.
fn output_columns(output_schema: &Schema, ng: usize, num_aggs: usize) -> Result<Vec<Vector>> {
    let columns: Vec<Vector> = output_schema
        .fields
        .iter()
        .map(|f| Vector::new_empty(f.data_type))
        .collect();
    if columns.len() != ng + num_aggs {
        return Err(Error::Plan(format!(
            "aggregate output schema has {} fields, expected {}",
            columns.len(),
            ng + num_aggs
        )));
    }
    Ok(columns)
}

/// The fast path: groups keyed by their packed fixed-width key in an
/// open-addressed (linear probing) table. `slots` maps a probe position to
/// a dense group index (`u32::MAX` = empty); probes compare one integer,
/// never bytes. The per-group routing hash is retained so resizes and
/// partition-wise merges never re-hash — and merges compare packed keys
/// directly, no decoding.
struct FixedKeyGroupTable<K: PackedKey> {
    layout: KeyLayout,
    aggs: Vec<AggExpr>,
    float_sums: Vec<bool>,
    slots: Vec<u32>,
    keys: Vec<K>,
    hashes: Vec<u64>,
    states: Vec<Vec<AggState>>,
    key_allocs: u64,
    stats: AggUpdateStats,
    row_groups: Vec<u32>,
}

/// Initial open-addressing capacity (power of two).
const FIXED_TABLE_MIN_SLOTS: usize = 16;

impl<K: PackedKey> FixedKeyGroupTable<K> {
    fn new(layout: KeyLayout, aggs: Vec<AggExpr>, float_sums: Vec<bool>) -> FixedKeyGroupTable<K> {
        FixedKeyGroupTable {
            layout,
            aggs,
            float_sums,
            slots: vec![u32::MAX; FIXED_TABLE_MIN_SLOTS],
            keys: Vec::new(),
            hashes: Vec::new(),
            states: Vec::new(),
            key_allocs: 0,
            stats: AggUpdateStats::default(),
            row_groups: Vec::new(),
        }
    }

    /// Keep the load factor under 7/8 (grow *before* probing so the probe
    /// loop always terminates on an empty slot).
    fn maybe_grow(&mut self) {
        if (self.keys.len() + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let mask = new_cap - 1;
        let mut slots = vec![u32::MAX; new_cap];
        for (idx, &h) in self.hashes.iter().enumerate() {
            let mut i = (h as usize) & mask;
            while slots[i] != u32::MAX {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32;
        }
        self.slots = slots;
    }

    fn find(&self, hash: u64, key: K) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                u32::MAX => return None,
                s if self.keys[s as usize] == key => return Some(s as usize),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Insert a group known to be absent, taking ownership of its states.
    fn insert_new(&mut self, hash: u64, key: K, states: Vec<AggState>) -> usize {
        self.maybe_grow();
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i] != u32::MAX {
            i = (i + 1) & mask;
        }
        let idx = self.keys.len();
        self.slots[i] = idx as u32;
        self.keys.push(key);
        self.hashes.push(hash);
        self.states.push(states);
        idx
    }

    fn find_or_insert(&mut self, hash: u64, key: K) -> usize {
        self.maybe_grow();
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                u32::MAX => {
                    let idx = self.keys.len();
                    self.slots[i] = idx as u32;
                    self.keys.push(key);
                    self.hashes.push(hash);
                    self.states.push(new_states(&self.aggs, &self.float_sums));
                    self.key_allocs = self.key_allocs.saturating_add(1);
                    return idx;
                }
                s if self.keys[s as usize] == key => return s as usize,
                _ => i = (i + 1) & mask,
            }
        }
    }
}

impl<K: PackedKey> GroupTable for FixedKeyGroupTable<K> {
    fn update(
        &mut self,
        _chunk: &DataChunk,
        inputs: &[Option<Vector>],
        rows: &[u32],
        keys: &ChunkKeys,
    ) -> Result<()> {
        let packed = keys
            .packed
            .as_deref()
            .ok_or_else(|| Error::Exec("fast-path group table without packed keys".into()))?;
        self.row_groups.clear();
        for &row in rows {
            let row = row as usize;
            let idx = self.find_or_insert(keys.hashes[row], K::from_u128(packed[row]));
            self.row_groups.push(idx as u32);
        }
        let (states, row_groups, stats) = (&mut self.states, &self.row_groups, &mut self.stats);
        for_each_run(row_groups, rows, |g, sel| {
            for (i, st) in states[g].iter_mut().enumerate() {
                st.update_vector(inputs[i].as_ref(), sel, stats)?;
            }
            Ok(())
        })
    }

    /// Merge another worker's fixed-key table for the same partition:
    /// probe on `(stored hash, packed key)` directly — no decoding, no
    /// re-hashing.
    fn merge(&mut self, other: Box<dyn GroupTable>) -> Result<()> {
        let other = downcast_table::<FixedKeyGroupTable<K>>(other)?;
        for ((key, hash), states) in other.keys.into_iter().zip(other.hashes).zip(other.states) {
            match self.find(hash, key) {
                Some(i) => {
                    for (a, b) in self.states[i].iter_mut().zip(states.iter()) {
                        a.merge(b)?;
                    }
                }
                None => {
                    self.insert_new(hash, key, states);
                }
            }
        }
        Ok(())
    }

    fn num_groups(&self) -> usize {
        self.keys.len()
    }

    fn key_allocs(&self) -> u64 {
        self.key_allocs
    }

    fn stats(&self) -> AggUpdateStats {
        self.stats
    }

    /// Decode each group's packed key (once per group, never per row),
    /// then emit in encoded-key-byte order — the exact order the generic
    /// table finalizes in, so the two paths are byte-identical.
    fn finalize(self: Box<Self>, output_schema: &Schema) -> Result<DataChunk> {
        let this = *self;
        let ng = this.layout.num_cols();
        let mut columns = output_columns(output_schema, ng, this.aggs.len())?;
        let mut decoded: Vec<Vec<ScalarValue>> = Vec::with_capacity(this.keys.len());
        let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(this.keys.len());
        let mut vals = Vec::new();
        let mut buf = Vec::new();
        for &k in &this.keys {
            this.layout.decode(k.to_u128(), &mut vals);
            encode_key(&vals, &mut buf);
            decoded.push(vals.clone());
            encoded.push(buf.clone());
        }
        let mut order: Vec<usize> = (0..this.keys.len()).collect();
        order.sort_by(|&a, &b| encoded[a].cmp(&encoded[b]));
        for &g in &order {
            for (i, v) in decoded[g].iter().enumerate() {
                columns[i].push(v)?;
            }
            for (i, s) in this.states[g].iter().enumerate() {
                columns[ng + i].push(&s.finalize())?;
            }
        }
        Ok(DataChunk::new(columns))
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------- AggregateState

/// Thread-local (or per-partition) hash-aggregate state: the group-table
/// selection (fast fixed-key vs generic encoded-key) plus the chunk-level
/// key preparation shared by the partitioned sink.
pub struct AggregateState {
    group_cols: Vec<usize>,
    aggs: Vec<AggExpr>,
    layout: Option<KeyLayout>,
    table: Box<dyn GroupTable>,
}

impl AggregateState {
    /// A generic (encoded-key) state — the fallback path and the
    /// compatibility constructor.
    pub fn new(
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: &[rpt_common::DataType],
    ) -> Result<AggregateState> {
        AggregateState::with_fast_path(group_cols, aggs, input_types, false)
    }

    /// A state that takes the fixed-width fast path when `fast` is set and
    /// the group key is eligible ([`KeyLayout::try_new`]); otherwise the
    /// generic table. No key dictionaries: string group keys always fall
    /// back to the generic table here.
    pub fn with_fast_path(
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: &[rpt_common::DataType],
        fast: bool,
    ) -> Result<AggregateState> {
        AggregateState::with_fast_path_dicts(group_cols, aggs, input_types, fast, &[])
    }

    /// [`AggregateState::with_fast_path`] plus per-input-column table
    /// dictionaries: a dictionary-coded `Utf8` group column packs its
    /// [`DICT_KEY_BITS`]-wide codes into the fixed key, extending fast-path
    /// eligibility to string group keys.
    pub fn with_fast_path_dicts(
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: &[rpt_common::DataType],
        fast: bool,
        key_dicts: &[Option<Arc<Utf8Dict>>],
    ) -> Result<AggregateState> {
        let float_sums = aggs
            .iter()
            .map(|a| {
                Ok(match (&a.func, &a.input) {
                    (AggFunc::Sum, Some(e)) => {
                        e.data_type(input_types)? == rpt_common::DataType::Float64
                    }
                    _ => false,
                })
            })
            .collect::<Result<Vec<bool>>>()?;
        let layout = if fast {
            KeyLayout::try_new(&group_cols, input_types, key_dicts)
        } else {
            None
        };
        let table: Box<dyn GroupTable> = match &layout {
            Some(l) if l.total_bits() <= 64 => Box::new(FixedKeyGroupTable::<u64>::new(
                l.clone(),
                aggs.clone(),
                float_sums,
            )),
            Some(l) => Box::new(FixedKeyGroupTable::<u128>::new(
                l.clone(),
                aggs.clone(),
                float_sums,
            )),
            None => Box::new(GenericGroupTable::new(
                group_cols.clone(),
                aggs.clone(),
                float_sums,
            )),
        };
        Ok(AggregateState {
            group_cols,
            aggs,
            layout,
            table,
        })
    }

    /// Is this state on the fixed-width fast path?
    pub fn is_fast(&self) -> bool {
        self.layout.is_some()
    }

    /// Number of distinct groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.table.num_groups()
    }

    /// How many group keys were materialized into the table — exactly one
    /// per distinct group (the allocation-sensitivity probe: the pre-PR-4
    /// implementation cloned the key buffer once per *input row*).
    pub fn key_allocs(&self) -> u64 {
        self.table.key_allocs()
    }

    /// MIN/MAX replacement clones performed so far (at most one per
    /// update batch; the old path cloned per improving row).
    pub fn minmax_clones(&self) -> u64 {
        self.table.stats().minmax_clones
    }

    /// Evaluate the aggregate input expressions once for a whole chunk.
    /// Dictionary-backed string inputs are decoded to flat strings here —
    /// once per chunk — so [`AggState::update_vector`]'s typed payload
    /// loops never mistake code payloads for integer values.
    pub fn eval_inputs(&self, chunk: &DataChunk) -> Result<Vec<Option<Vector>>> {
        self.aggs
            .iter()
            .map(|a| {
                a.input
                    .as_ref()
                    .map(|e| {
                        let mut v = e.eval(chunk)?;
                        v.decode_dict_in_place();
                        Ok(v)
                    })
                    .transpose()
            })
            .collect()
    }

    /// Vectorized per-chunk key material: group-key hashes over the
    /// chunk's logical rows (the same hash the partitioned sink
    /// radix-routes on, computed straight from the typed payloads without
    /// a gather) plus the packed keys on the fast path.
    pub fn prepare_keys(&self, chunk: &DataChunk) -> ChunkKeys {
        let n = chunk.num_rows();
        let hashes = if self.group_cols.is_empty() {
            vec![0; n]
        } else {
            crate::operators::key_hashes(chunk, &self.group_cols)
        };
        let packed = self
            .layout
            .as_ref()
            .map(|l| l.pack(chunk, &self.group_cols));
        ChunkKeys { hashes, packed }
    }

    /// Consume a chunk (Sink): evaluate inputs + keys once, then fold
    /// every logical row in.
    pub fn update(&mut self, chunk: &DataChunk) -> Result<()> {
        let n = chunk.num_rows();
        if n == 0 {
            return Ok(());
        }
        let inputs = self.eval_inputs(chunk)?;
        let keys = self.prepare_keys(chunk);
        let rows: Vec<u32> = (0..n as u32).collect();
        self.update_rows(chunk, &inputs, &rows, &keys)
    }

    /// Fold the given logical rows into the group table. `inputs` are the
    /// chunk-wide aggregate input vectors (from [`Self::eval_inputs`]) and
    /// `keys` the chunk-wide key material (from [`Self::prepare_keys`]),
    /// both indexed by logical row — the partitioned sink computes them
    /// once per chunk and calls this once per partition with that
    /// partition's row subset.
    pub fn update_rows(
        &mut self,
        chunk: &DataChunk,
        inputs: &[Option<Vector>],
        rows: &[u32],
        keys: &ChunkKeys,
    ) -> Result<()> {
        self.table.update(chunk, inputs, rows, keys)
    }

    /// Merge another thread's state for the same partition (Combine). Both
    /// states were built by the same factory, so the tables are the same
    /// concrete type; fast-path tables merge on packed keys directly.
    pub fn merge(&mut self, other: AggregateState) -> Result<()> {
        self.table.merge(other.table)
    }

    /// Produce the output chunk (Finalize). Groups are sorted by encoded
    /// key on both table paths (within one partition; partitions are
    /// published in partition-index order).
    pub fn finalize(self, output_schema: &Schema) -> Result<DataChunk> {
        self.table.finalize(output_schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use rpt_common::{DataType, Field};

    fn chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![1, 1, 2, 2, 2]),
            Vector::from_i64(vec![10, 20, 30, 40, 50]),
            Vector::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
        ])
    }

    fn agg(func: AggFunc, col: usize, alias: &str) -> AggExpr {
        AggExpr {
            func,
            input: Some(Expr::col(col)),
            alias: alias.into(),
        }
    }

    #[test]
    fn grouped_sum_count() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mut st = AggregateState::new(
            vec![0],
            vec![agg(AggFunc::Sum, 1, "s"), AggExpr::count_star("c")],
            &types,
        )
        .unwrap();
        st.update(&chunk()).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("s", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, 0), ScalarValue::Int64(30)); // group 1: 10+20
        assert_eq!(out.value(2, 0), ScalarValue::Int64(2));
        assert_eq!(out.value(1, 1), ScalarValue::Int64(120)); // group 2
        assert_eq!(out.value(2, 1), ScalarValue::Int64(3));
    }

    #[test]
    fn global_min_max_avg() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mut st = AggregateState::new(
            vec![],
            vec![
                agg(AggFunc::Min, 1, "mn"),
                agg(AggFunc::Max, 1, "mx"),
                agg(AggFunc::Avg, 2, "av"),
            ],
            &types,
        )
        .unwrap();
        st.update(&chunk()).unwrap();
        let schema = Schema::new(vec![
            Field::new("mn", DataType::Int64),
            Field::new("mx", DataType::Int64),
            Field::new("av", DataType::Float64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), ScalarValue::Int64(10));
        assert_eq!(out.value(1, 0), ScalarValue::Int64(50));
        assert_eq!(out.value(2, 0), ScalarValue::Float64(3.0));
    }

    #[test]
    fn merge_combines_thread_states() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mk = || AggregateState::new(vec![0], vec![AggExpr::count_star("c")], &types).unwrap();
        let mut a = mk();
        let mut b = mk();
        let mut c1 = chunk();
        c1.set_selection(vec![0, 1]); // group 1 rows
        let mut c2 = chunk();
        c2.set_selection(vec![2, 3, 4]); // group 2 rows
        a.update(&c1).unwrap();
        b.update(&c2).unwrap();
        a.merge(b).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = a.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, 0), ScalarValue::Int64(2));
        assert_eq!(out.value(1, 1), ScalarValue::Int64(3));
    }

    #[test]
    fn global_agg_on_empty_input_yields_one_row() {
        let types = [DataType::Int64];
        let st = AggregateState::new(vec![], vec![AggExpr::count_star("c")], &types).unwrap();
        let schema = Schema::new(vec![Field::new("c", DataType::Int64)]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), ScalarValue::Int64(0));
    }

    #[test]
    fn grouped_agg_on_empty_input_yields_zero_rows() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let st = AggregateState::new(vec![0], vec![AggExpr::count_star("c")], &types).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn count_skips_nulls_countstar_does_not() {
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(1)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let c = DataChunk::new(vec![v]);
        let types = [DataType::Int64];
        let mut st = AggregateState::new(
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    input: Some(Expr::col(0)),
                    alias: "cnt".into(),
                },
                AggExpr::count_star("star"),
            ],
            &types,
        )
        .unwrap();
        st.update(&c).unwrap();
        let schema = Schema::new(vec![
            Field::new("cnt", DataType::Int64),
            Field::new("star", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.value(0, 0), ScalarValue::Int64(1));
        assert_eq!(out.value(1, 0), ScalarValue::Int64(2));
    }

    /// Allocation sensitivity: the group key is materialized into the
    /// table exactly once per *distinct group*, never per input row —
    /// on both table paths.
    #[test]
    fn key_cloned_only_on_first_sight_of_a_group() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        for fast in [false, true] {
            let mut st = AggregateState::with_fast_path(
                vec![0],
                vec![AggExpr::count_star("c")],
                &types,
                fast,
            )
            .unwrap();
            assert_eq!(st.is_fast(), fast);
            for _ in 0..100 {
                st.update(&chunk()).unwrap(); // 5 rows, 2 distinct groups
            }
            assert_eq!(st.num_groups(), 2);
            assert_eq!(st.key_allocs(), 2, "500 rows must allocate only 2 keys");
        }
    }

    /// `i64` SUM overflow surfaces as `Error::Exec` instead of panicking in
    /// debug or silently wrapping in release — on both table paths.
    #[test]
    fn sum_overflow_is_an_exec_error() {
        let types = [DataType::Int64, DataType::Int64];
        for fast in [false, true] {
            // Group on a constant key so both chunks land in the same
            // group (and, with `fast`, the same fixed-key table entry).
            let mut st = AggregateState::with_fast_path(
                vec![0],
                vec![agg(AggFunc::Sum, 1, "s")],
                &types,
                fast,
            )
            .unwrap();
            assert_eq!(st.is_fast(), fast);
            st.update(&DataChunk::new(vec![
                Vector::from_i64(vec![7]),
                Vector::from_i64(vec![i64::MAX]),
            ]))
            .unwrap();
            let err = st
                .update(&DataChunk::new(vec![
                    Vector::from_i64(vec![7]),
                    Vector::from_i64(vec![1]),
                ]))
                .unwrap_err();
            assert!(matches!(err, Error::Exec(_)), "got {err}");
            assert!(err.to_string().contains("SUM"), "got {err}");
        }
    }

    /// Overflow across a thread-state merge is caught too — on both paths.
    #[test]
    fn sum_overflow_in_merge_is_an_exec_error() {
        let types = [DataType::Int64];
        for fast in [false, true] {
            let mk = || {
                AggregateState::with_fast_path(
                    vec![0],
                    vec![agg(AggFunc::Sum, 0, "s")],
                    &types,
                    fast,
                )
                .unwrap()
            };
            let mut a = mk();
            let mut b = mk();
            a.update(&DataChunk::new(vec![Vector::from_i64(vec![i64::MAX])]))
                .unwrap();
            b.update(&DataChunk::new(vec![Vector::from_i64(vec![i64::MAX])]))
                .unwrap();
            let err = a.merge(b).unwrap_err();
            assert!(matches!(err, Error::Exec(_)), "got {err}");
        }
    }

    /// Values *below* the overflow threshold still sum exactly.
    #[test]
    fn sum_near_i64_max_is_exact() {
        let types = [DataType::Int64];
        let mut st = AggregateState::new(vec![], vec![agg(AggFunc::Sum, 0, "s")], &types).unwrap();
        st.update(&DataChunk::new(vec![Vector::from_i64(vec![
            i64::MAX - 10,
            7,
            3,
        ])]))
        .unwrap();
        let schema = Schema::new(vec![Field::new("s", DataType::Int64)]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.value(0, 0), ScalarValue::Int64(i64::MAX));
    }

    // ------------------------------------------------ fast-path specifics

    /// Fast-path eligibility: fixed-width keys within 128 packed bits take
    /// the fixed table; `Utf8`/`Float64` keys and over-wide keys fall back.
    #[test]
    fn fast_path_eligibility_rule() {
        let aggs = vec![AggExpr::count_star("c")];
        let eligible = |cols: Vec<usize>, types: &[DataType]| {
            AggregateState::with_fast_path(cols, aggs.clone(), types, true)
                .unwrap()
                .is_fast()
        };
        assert!(eligible(vec![0], &[DataType::Int64])); // 65 bits
        assert!(eligible(vec![0, 1], &[DataType::Int64, DataType::Bool])); // 67
        assert!(eligible(vec![0], &[DataType::Bool])); // 2 bits → u64 table
        assert!(eligible(vec![0, 1], &[DataType::Bool, DataType::Bool]));
        assert!(!eligible(vec![0], &[DataType::Utf8]));
        assert!(!eligible(vec![0], &[DataType::Float64]));
        assert!(!eligible(vec![0, 1], &[DataType::Int64, DataType::Int64])); // 130
        assert!(!eligible(vec![], &[DataType::Int64])); // global agg
                                                        // Asking for the fast path off always yields the generic table.
        assert!(
            !AggregateState::with_fast_path(vec![0], aggs.clone(), &[DataType::Int64], false)
                .unwrap()
                .is_fast()
        );
    }

    /// Packed keys round-trip through decode, including NULLs and the
    /// `i64` extremes, and distinct tuples pack to distinct keys.
    #[test]
    fn key_layout_pack_decode_roundtrip() {
        let layout = KeyLayout::try_new(&[0, 1], &[DataType::Int64, DataType::Bool], &[]).unwrap();
        assert_eq!(layout.total_bits(), 67);
        let mut k = Vector::new_empty(DataType::Int64);
        for v in [
            ScalarValue::Int64(i64::MAX),
            ScalarValue::Int64(i64::MIN),
            ScalarValue::Int64(0),
            ScalarValue::Null,
            ScalarValue::Int64(-1),
        ] {
            k.push(&v).unwrap();
        }
        let mut b = Vector::new_empty(DataType::Bool);
        for v in [
            ScalarValue::Bool(true),
            ScalarValue::Bool(false),
            ScalarValue::Null,
            ScalarValue::Bool(false),
            ScalarValue::Bool(true),
        ] {
            b.push(&v).unwrap();
        }
        let chunk = DataChunk::new(vec![k.clone(), b.clone()]);
        let packed = layout.pack(&chunk, &[0, 1]);
        let mut seen = std::collections::HashSet::new();
        let mut vals = Vec::new();
        for (row, &key) in packed.iter().enumerate() {
            assert!(seen.insert(key), "distinct tuples must pack distinctly");
            layout.decode(key, &mut vals);
            assert_eq!(vals[0], k.get(row), "row {row} int col");
            assert_eq!(vals[1], b.get(row), "row {row} bool col");
        }
        // NULL int packs differently from 0: rows 2 and 3 share the int
        // value bits but differ in the NULL flag.
        assert_ne!(packed[2], packed[3]);
    }

    /// The two table implementations finalize byte-identical chunks for
    /// the same input, including NULL keys, Bool keys, and every aggregate
    /// function.
    #[test]
    fn fast_and_generic_tables_are_byte_identical() {
        let types = [
            DataType::Int64,
            DataType::Bool,
            DataType::Int64,
            DataType::Float64,
        ];
        let mut key = Vector::new_empty(DataType::Int64);
        let mut flag = Vector::new_empty(DataType::Bool);
        let mut vi = Vector::new_empty(DataType::Int64);
        let vf: Vec<f64> = (0..40).map(|i| (i as f64) * 0.5 - 3.0).collect();
        for i in 0..40i64 {
            key.push(&if i % 7 == 0 {
                ScalarValue::Null
            } else {
                ScalarValue::Int64(i % 5 - 2)
            })
            .unwrap();
            flag.push(&if i % 11 == 0 {
                ScalarValue::Null
            } else {
                ScalarValue::Bool(i % 2 == 0)
            })
            .unwrap();
            vi.push(&if i % 3 == 0 {
                ScalarValue::Null
            } else {
                ScalarValue::Int64(i * 10)
            })
            .unwrap();
        }
        let chunk = DataChunk::new(vec![key, flag, vi, Vector::from_f64(vf)]);
        let aggs = vec![
            AggExpr::count_star("c"),
            agg(AggFunc::Sum, 2, "s"),
            agg(AggFunc::Min, 3, "mn"),
            agg(AggFunc::Max, 2, "mx"),
            agg(AggFunc::Avg, 3, "av"),
        ];
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("f", DataType::Bool),
            Field::new("c", DataType::Int64),
            Field::new("s", DataType::Int64),
            Field::new("mn", DataType::Float64),
            Field::new("mx", DataType::Int64),
            Field::new("av", DataType::Float64),
        ]);
        let run = |fast: bool| {
            let mut st =
                AggregateState::with_fast_path(vec![0, 1], aggs.clone(), &types, fast).unwrap();
            assert_eq!(st.is_fast(), fast);
            st.update(&chunk).unwrap();
            // A second pass exercises found-group probes too.
            st.update(&chunk).unwrap();
            st.finalize(&schema).unwrap()
        };
        let generic = run(false);
        let fast = run(true);
        assert_eq!(generic.num_rows(), fast.num_rows());
        assert_eq!(
            generic.columns, fast.columns,
            "paths must be byte-identical"
        );
    }

    /// Fast-path merges combine packed-key tables directly and match the
    /// generic merge result exactly.
    #[test]
    fn fast_merge_matches_generic_merge() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("s", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let aggs = vec![agg(AggFunc::Sum, 1, "s"), AggExpr::count_star("c")];
        let run = |fast: bool| {
            let mk =
                || AggregateState::with_fast_path(vec![0], aggs.clone(), &types, fast).unwrap();
            let mut a = mk();
            let mut b = mk();
            let mut c1 = chunk();
            c1.set_selection(vec![0, 1, 2]);
            let mut c2 = chunk();
            c2.set_selection(vec![2, 3, 4]);
            a.update(&c1).unwrap();
            b.update(&c2).unwrap();
            a.merge(b).unwrap();
            a.finalize(&schema).unwrap()
        };
        assert_eq!(run(false).columns, run(true).columns);
    }

    /// The MIN/MAX allocation pin (the PR-4-style probe): a whole
    /// ascending batch — where *every* row improves — performs exactly one
    /// replacement clone per update call, not one per row.
    #[test]
    fn minmax_clones_once_per_batch() {
        let types = [DataType::Utf8];
        let vals: Vec<String> = (0..100).map(|i| format!("v{i:03}")).collect();
        let c = DataChunk::new(vec![Vector::from_utf8(vals)]);
        let mut st = AggregateState::new(vec![], vec![agg(AggFunc::Max, 0, "mx")], &types).unwrap();
        st.update(&c).unwrap();
        assert_eq!(st.minmax_clones(), 1, "100 improving rows, one clone");
        st.update(&c).unwrap();
        // Second pass: the batch extremum ties the running max (not a
        // strict improvement), so no further clone.
        assert_eq!(st.minmax_clones(), 1);
        let schema = Schema::new(vec![Field::new("mx", DataType::Utf8)]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.value(0, 0), ScalarValue::Utf8("v099".into()));
    }
}
