//! Hash aggregation sink state (group-by + aggregate functions).

use crate::expr::{AggExpr, AggFunc};
use rpt_common::{DataChunk, Error, Result, ScalarValue, Schema, Vector};
use std::collections::HashMap;

/// Running state of one aggregate in one group.
#[derive(Debug, Clone)]
pub enum AggState {
    Count(i64),
    SumI(i64),
    SumF(f64),
    Min(Option<ScalarValue>),
    Max(Option<ScalarValue>),
    Avg { sum: f64, count: i64 },
}

impl AggState {
    fn new(func: AggFunc, float_sum: bool) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => {
                if float_sum {
                    AggState::SumF(0.0)
                } else {
                    AggState::SumI(0)
                }
            }
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    fn update(&mut self, value: Option<&ScalarValue>) {
        match self {
            AggState::Count(c) => {
                // COUNT(*) gets None input and counts every row; COUNT(x)
                // gets Some and skips NULLs.
                match value {
                    None => *c += 1,
                    Some(v) if !v.is_null() => *c += 1,
                    _ => {}
                }
            }
            AggState::SumI(s) => {
                if let Some(v) = value {
                    if let Some(x) = v.as_i64() {
                        *s += x;
                    }
                }
            }
            AggState::SumF(s) => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *s += x;
                    }
                }
            }
            AggState::Min(cur) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| v.partial_cmp_sql(c) == Some(std::cmp::Ordering::Less))
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = value {
                    if !v.is_null()
                        && cur.as_ref().is_none_or(|c| {
                            v.partial_cmp_sql(c) == Some(std::cmp::Ordering::Greater)
                        })
                    {
                        *cur = Some(v.clone());
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(v) = value {
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *count += 1;
                    }
                }
            }
        }
    }

    fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumI(a), AggState::SumI(b)) => *a += b,
            (AggState::SumF(a), AggState::SumF(b)) => *a += b,
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref()
                        .is_none_or(|av| bv.partial_cmp_sql(av) == Some(std::cmp::Ordering::Less))
                    {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| {
                        bv.partial_cmp_sql(av) == Some(std::cmp::Ordering::Greater)
                    }) {
                        *a = Some(bv.clone());
                    }
                }
            }
            (AggState::Avg { sum: a, count: ac }, AggState::Avg { sum: b, count: bc }) => {
                *a += b;
                *ac += bc;
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finalize(&self) -> ScalarValue {
        match self {
            AggState::Count(c) => ScalarValue::Int64(*c),
            AggState::SumI(s) => ScalarValue::Int64(*s),
            AggState::SumF(s) => ScalarValue::Float64(*s),
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(ScalarValue::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    ScalarValue::Null
                } else {
                    ScalarValue::Float64(sum / *count as f64)
                }
            }
        }
    }
}

/// Encode a group key into comparable bytes (type-tagged).
fn encode_key(values: &[ScalarValue], out: &mut Vec<u8>) {
    out.clear();
    for v in values {
        match v {
            ScalarValue::Null => out.push(0),
            ScalarValue::Int64(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            ScalarValue::Float64(x) => {
                out.push(2);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            ScalarValue::Utf8(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            ScalarValue::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
        }
    }
}

/// One group's key values and running aggregate states.
type GroupEntry = (Vec<ScalarValue>, Vec<AggState>);

/// Thread-local hash-aggregate state.
pub struct AggregateState {
    group_cols: Vec<usize>,
    aggs: Vec<AggExpr>,
    float_sums: Vec<bool>,
    groups: HashMap<Vec<u8>, GroupEntry>,
}

impl AggregateState {
    pub fn new(
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: &[rpt_common::DataType],
    ) -> Result<AggregateState> {
        let float_sums = aggs
            .iter()
            .map(|a| {
                Ok(match (&a.func, &a.input) {
                    (AggFunc::Sum, Some(e)) => {
                        e.data_type(input_types)? == rpt_common::DataType::Float64
                    }
                    _ => false,
                })
            })
            .collect::<Result<Vec<bool>>>()?;
        Ok(AggregateState {
            group_cols,
            aggs,
            float_sums,
            groups: HashMap::new(),
        })
    }

    /// Consume a chunk (Sink).
    pub fn update(&mut self, chunk: &DataChunk) -> Result<()> {
        let n = chunk.num_rows();
        if n == 0 {
            return Ok(());
        }
        // Evaluate aggregate inputs once per chunk.
        let inputs: Vec<Option<Vector>> = self
            .aggs
            .iter()
            .map(|a| a.input.as_ref().map(|e| e.eval(chunk)).transpose())
            .collect::<Result<_>>()?;
        let mut key_buf = Vec::new();
        let mut key_vals = Vec::with_capacity(self.group_cols.len());
        for row in 0..n {
            key_vals.clear();
            for &g in &self.group_cols {
                key_vals.push(chunk.value(g, row));
            }
            encode_key(&key_vals, &mut key_buf);
            let entry = self.groups.entry(key_buf.clone()).or_insert_with(|| {
                let states = self
                    .aggs
                    .iter()
                    .zip(self.float_sums.iter())
                    .map(|(a, &f)| AggState::new(a.func, f))
                    .collect();
                (key_vals.clone(), states)
            });
            for (i, state) in entry.1.iter_mut().enumerate() {
                let v = inputs[i].as_ref().map(|vec| vec.get(row));
                state.update(v.as_ref());
            }
        }
        Ok(())
    }

    /// Merge another thread's state (Combine).
    pub fn merge(&mut self, other: AggregateState) {
        for (key, (vals, states)) in other.groups {
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().1.iter_mut().zip(states.iter()) {
                        a.merge(b);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((vals, states));
                }
            }
        }
    }

    /// Produce the output chunk (Finalize). Groups are sorted by encoded key
    /// for determinism.
    pub fn finalize(self, output_schema: &Schema) -> Result<DataChunk> {
        let mut entries: Vec<(Vec<u8>, GroupEntry)> = self.groups.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut columns: Vec<Vector> = output_schema
            .fields
            .iter()
            .map(|f| Vector::new_empty(f.data_type))
            .collect();
        let ng = self.group_cols.len();
        if columns.len() != ng + self.aggs.len() {
            return Err(Error::Plan(format!(
                "aggregate output schema has {} fields, expected {}",
                columns.len(),
                ng + self.aggs.len()
            )));
        }
        for (_, (key_vals, states)) in &entries {
            for (i, v) in key_vals.iter().enumerate() {
                columns[i].push(v)?;
            }
            for (i, s) in states.iter().enumerate() {
                columns[ng + i].push(&s.finalize())?;
            }
        }
        // Global aggregation with zero rows still yields one row.
        if entries.is_empty() && ng == 0 {
            for (i, a) in self.aggs.iter().enumerate() {
                let s = AggState::new(a.func, self.float_sums[i]);
                columns[i].push(&s.finalize())?;
            }
        }
        Ok(DataChunk::new(columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use rpt_common::{DataType, Field};

    fn chunk() -> DataChunk {
        DataChunk::new(vec![
            Vector::from_i64(vec![1, 1, 2, 2, 2]),
            Vector::from_i64(vec![10, 20, 30, 40, 50]),
            Vector::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
        ])
    }

    fn agg(func: AggFunc, col: usize, alias: &str) -> AggExpr {
        AggExpr {
            func,
            input: Some(Expr::col(col)),
            alias: alias.into(),
        }
    }

    #[test]
    fn grouped_sum_count() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mut st = AggregateState::new(
            vec![0],
            vec![agg(AggFunc::Sum, 1, "s"), AggExpr::count_star("c")],
            &types,
        )
        .unwrap();
        st.update(&chunk()).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("s", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, 0), ScalarValue::Int64(30)); // group 1: 10+20
        assert_eq!(out.value(2, 0), ScalarValue::Int64(2));
        assert_eq!(out.value(1, 1), ScalarValue::Int64(120)); // group 2
        assert_eq!(out.value(2, 1), ScalarValue::Int64(3));
    }

    #[test]
    fn global_min_max_avg() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mut st = AggregateState::new(
            vec![],
            vec![
                agg(AggFunc::Min, 1, "mn"),
                agg(AggFunc::Max, 1, "mx"),
                agg(AggFunc::Avg, 2, "av"),
            ],
            &types,
        )
        .unwrap();
        st.update(&chunk()).unwrap();
        let schema = Schema::new(vec![
            Field::new("mn", DataType::Int64),
            Field::new("mx", DataType::Int64),
            Field::new("av", DataType::Float64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), ScalarValue::Int64(10));
        assert_eq!(out.value(1, 0), ScalarValue::Int64(50));
        assert_eq!(out.value(2, 0), ScalarValue::Float64(3.0));
    }

    #[test]
    fn merge_combines_thread_states() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let mk = || AggregateState::new(vec![0], vec![AggExpr::count_star("c")], &types).unwrap();
        let mut a = mk();
        let mut b = mk();
        let mut c1 = chunk();
        c1.set_selection(vec![0, 1]); // group 1 rows
        let mut c2 = chunk();
        c2.set_selection(vec![2, 3, 4]); // group 2 rows
        a.update(&c1).unwrap();
        b.update(&c2).unwrap();
        a.merge(b);
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = a.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(1, 0), ScalarValue::Int64(2));
        assert_eq!(out.value(1, 1), ScalarValue::Int64(3));
    }

    #[test]
    fn global_agg_on_empty_input_yields_one_row() {
        let types = [DataType::Int64];
        let st = AggregateState::new(vec![], vec![AggExpr::count_star("c")], &types).unwrap();
        let schema = Schema::new(vec![Field::new("c", DataType::Int64)]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), ScalarValue::Int64(0));
    }

    #[test]
    fn grouped_agg_on_empty_input_yields_zero_rows() {
        let types = [DataType::Int64, DataType::Int64, DataType::Float64];
        let st = AggregateState::new(vec![0], vec![AggExpr::count_star("c")], &types).unwrap();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::new("c", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn count_skips_nulls_countstar_does_not() {
        let mut v = Vector::new_empty(DataType::Int64);
        v.push(&ScalarValue::Int64(1)).unwrap();
        v.push(&ScalarValue::Null).unwrap();
        let c = DataChunk::new(vec![v]);
        let types = [DataType::Int64];
        let mut st = AggregateState::new(
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::Count,
                    input: Some(Expr::col(0)),
                    alias: "cnt".into(),
                },
                AggExpr::count_star("star"),
            ],
            &types,
        )
        .unwrap();
        st.update(&c).unwrap();
        let schema = Schema::new(vec![
            Field::new("cnt", DataType::Int64),
            Field::new("star", DataType::Int64),
        ]);
        let out = st.finalize(&schema).unwrap();
        assert_eq!(out.value(0, 0), ScalarValue::Int64(1));
        assert_eq!(out.value(1, 0), ScalarValue::Int64(2));
    }
}
