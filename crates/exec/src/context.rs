//! Execution context: work budget (timeout analogue), thread count, spill
//! configuration, and metrics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use rpt_common::{Error, Result};

/// Which pipeline scheduler executes a query's DAG.
///
/// `Global` is the default: one worker pool sized to the machine runs
/// *every* task of the query — source-morsel claims, per-partition sink
/// merges, finalizes — with readiness tracked per buffer *partition*, so a
/// consumer pipeline starts on partition `p` the moment its producer seals
/// `p`. `Scoped` is the legacy two-level model (a DAG worker pool that
/// spawns a fresh morsel thread-scope per running pipeline); it is kept for
/// parity testing and can be forced with `RPT_SCHEDULER=scoped`.
/// `Stealing` keeps the global pool's readiness machinery but replaces its
/// shared FIFO with per-worker deques plus an injector: workers push
/// locally, pop LIFO, and steal FIFO from victims, with merge/finish tasks
/// that unblock registered waiters promoted to a high-priority band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// One global morsel-driven worker pool with a unified task queue.
    Global,
    /// Legacy: DAG worker pool × per-pipeline morsel thread scopes.
    Scoped,
    /// Global pool with per-worker deques, work stealing, and two-level
    /// priorities (`RPT_SCHEDULER=steal`).
    Stealing,
}

impl SchedulerKind {
    /// Process default: `RPT_SCHEDULER` (`global` / `scoped` / `steal`),
    /// else Global.
    pub fn from_env() -> SchedulerKind {
        match std::env::var("RPT_SCHEDULER") {
            Ok(v) if v.eq_ignore_ascii_case("scoped") || v.eq_ignore_ascii_case("legacy") => {
                SchedulerKind::Scoped
            }
            Ok(v) if v.eq_ignore_ascii_case("steal") || v.eq_ignore_ascii_case("stealing") => {
                SchedulerKind::Stealing
            }
            _ => SchedulerKind::Global,
        }
    }
}

/// Process default for the fixed-width aggregation fast path: enabled
/// unless `RPT_AGG_FAST` is set to `off`/`0`/`false` (the generic
/// encoded-key group table then handles every aggregate — the CI parity
/// leg).
pub fn agg_fast_from_env() -> bool {
    !std::env::var("RPT_AGG_FAST")
        .is_ok_and(|v| v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
}

/// Process default for the block-encoded storage read path (zone-map scan
/// pruning + dictionary-backed string vectors): enabled unless
/// `RPT_STORAGE_ENCODING` is set to `off`/`0`/`false` (scans then serve the
/// raw flat layout — the CI parity leg).
pub fn storage_encoding_from_env() -> bool {
    !std::env::var("RPT_STORAGE_ENCODING")
        .is_ok_and(|v| v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
}

/// Process default for repartition elision (partition-preserving sink
/// routes): enabled unless `RPT_REPARTITION_ELIDE` is set to
/// `off`/`0`/`false` (every sink then radix-routes — the CI parity leg).
pub fn repartition_elide_from_env() -> bool {
    !std::env::var("RPT_REPARTITION_ELIDE")
        .is_ok_and(|v| v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
}

/// Process default for the query-wide memory budget: `RPT_MEMORY_BUDGET`
/// in bytes (`None` when unset/unparsable — no governor, only the legacy
/// per-buffer spill caps apply). The forced-spill CI leg sets a tiny value
/// so every materializing sink spills.
pub fn memory_budget_from_env() -> Option<usize> {
    std::env::var("RPT_MEMORY_BUDGET").ok()?.parse().ok()
}

/// Process default for the block-encoded spill format: enabled unless
/// `RPT_SPILL_ENCODING` is set to `off`/`0`/`false` (spill files then use
/// the legacy decoded chunk format — the CI parity leg).
pub fn spill_encoding_from_env() -> bool {
    !std::env::var("RPT_SPILL_ENCODING")
        .is_ok_and(|v| v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
}

/// Process default for overlapped spill restore I/O (SpillIo pool tasks
/// that prefetch+decode spilled runs while upstream pipelines execute):
/// enabled unless `RPT_SPILL_PREFETCH` is set to `off`/`0`/`false`.
pub fn spill_prefetch_from_env() -> bool {
    !std::env::var("RPT_SPILL_PREFETCH")
        .is_ok_and(|v| v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false"))
}

/// How thoroughly plans and Preserve-routed chunks are verified.
///
/// `Strict` runs the static plan verifier before execution, the per-chunk
/// partition-membership checks on elided routes, and the observed-access
/// reconciliation after execution, failing the query on any violation.
/// `Warn` runs the same checks but only reports (stderr + pipeline trace).
/// `Off` skips everything. Debug builds default to `Strict` (the checks
/// subsume the old `debug_assert!`s); release builds default to `Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyMode {
    Off,
    Warn,
    Strict,
}

impl VerifyMode {
    /// Process default: `RPT_PLAN_VERIFY` (`off` / `warn` / `strict`),
    /// else `Strict` in debug builds and `Off` in release. An explicit
    /// `off` is honored even in debug builds.
    pub fn from_env() -> VerifyMode {
        match std::env::var("RPT_PLAN_VERIFY") {
            Ok(v)
                if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false") =>
            {
                VerifyMode::Off
            }
            Ok(v) if v.eq_ignore_ascii_case("warn") => VerifyMode::Warn,
            Ok(v)
                if v.eq_ignore_ascii_case("strict") || v == "1" || v.eq_ignore_ascii_case("on") =>
            {
                VerifyMode::Strict
            }
            _ => {
                if cfg!(debug_assertions) {
                    VerifyMode::Strict
                } else {
                    VerifyMode::Off
                }
            }
        }
    }

    /// Should the verifier / checks run at all?
    pub fn enabled(self) -> bool {
        !matches!(self, VerifyMode::Off)
    }

    /// Should a violation fail the query (vs. only being reported)?
    pub fn strict(self) -> bool {
        matches!(self, VerifyMode::Strict)
    }
}

/// Process default for plan verification, see [`VerifyMode::from_env`].
pub fn plan_verify_from_env() -> VerifyMode {
    VerifyMode::from_env()
}

/// Worker utilization as a percentage: busy nanoseconds over wall
/// nanoseconds × pool size, clamped to `[0, 100]`. Division-by-zero safe:
/// a sub-microsecond query whose wall span rounds to zero reports 100 when
/// any busy time was recorded (the pool was never observed idle) and 0
/// otherwise.
pub fn utilization_pct(busy_nanos: u64, wall_nanos: u64, workers: u64) -> u64 {
    let denom = wall_nanos.saturating_mul(workers);
    if denom == 0 {
        return if busy_nanos > 0 { 100 } else { 0 };
    }
    busy_nanos
        .saturating_mul(100)
        .checked_div(denom)
        .unwrap_or(100)
        .min(100)
}

/// Number of hardware threads, the default global worker-pool size.
pub fn default_worker_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Counters collected during execution. All counters are cumulative across
/// the pipelines of one query execution.
///
/// `intermediate_tuples` is the quantity the paper's theory bounds: the sum
/// of rows flowing into every pipeline sink except the final output — i.e.
/// the materialized state between pipeline stages (hash-join builds,
/// transfer-phase buffers, join-phase intermediates). The case study of
/// Figure 11 and the adversarial instance of Figure 12 are reported in this
/// metric.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Rows produced by table scans (after pushed-down filters).
    pub scan_rows: AtomicU64,
    /// Rows entering Bloom probes.
    pub bloom_probe_in: AtomicU64,
    /// Rows surviving Bloom probes.
    pub bloom_probe_out: AtomicU64,
    /// Keys inserted into Bloom filters (CreateBF work).
    pub bloom_build_rows: AtomicU64,
    /// Rows inserted into join hash tables.
    pub hash_build_rows: AtomicU64,
    /// Rows entering hash-join probes (each pays a hash-table lookup).
    pub join_probe_in: AtomicU64,
    /// Rows emitted by hash-join probes.
    pub join_output_rows: AtomicU64,
    /// Σ rows into non-final sinks (see struct docs).
    pub intermediate_tuples: AtomicU64,
    /// Rows in the final result.
    pub output_rows: AtomicU64,
    /// Nanoseconds spent in Bloom filter build + probe (the §5.5 breakdown).
    pub bloom_nanos: AtomicU64,
    /// Per-partition sink-merge tasks executed (partitioned Combine path).
    pub merge_tasks: AtomicU64,
    /// Rows handled by the largest single merge task — with
    /// `partition_count > 1` this must stay below the row count of every
    /// non-trivial sink (no merge task covers a full result).
    pub merge_max_task_rows: AtomicU64,
    /// Tasks executed by the global scheduler (morsels + merges + setup).
    pub sched_tasks: AtomicU64,
    /// Downstream partition tasks that started while their producer
    /// pipeline had not yet sealed all partitions — the partition-overlap
    /// win the global scheduler exists for.
    pub sched_overlap_tasks: AtomicU64,
    /// Deepest the global task queue ever got.
    pub sched_max_queue_depth: AtomicU64,
    /// Nanoseconds workers spent executing tasks (Σ over workers).
    pub sched_busy_nanos: AtomicU64,
    /// Thread-lifetime wall nanoseconds, summed per worker (each worker
    /// contributes its own spawn-to-exit span); utilization is
    /// `busy / wall` — meaningful even when some workers only steal or
    /// idle.
    pub sched_wall_nanos: AtomicU64,
    /// Worker-pool size of the last global run.
    pub sched_workers: AtomicU64,
    /// Tasks a worker popped from its own deque (stealing scheduler).
    pub sched_local_hits: AtomicU64,
    /// Tasks taken from another worker's deque (stealing scheduler).
    pub sched_steals: AtomicU64,
    /// Merge/finish tasks promoted to the high-priority band because a
    /// registered waiter blocks on the grains they seal.
    pub sched_priority_promotions: AtomicU64,
    /// Chunks that skipped the hash+scatter radix route because the
    /// producer's partitioning already matched the sink's (Preserve route).
    pub repartition_elided_chunks: AtomicU64,
    /// Chunks consumed by aggregate sinks on the fixed-width packed-key
    /// fast path (type-specialized group tables).
    pub agg_fast_path_chunks: AtomicU64,
    /// Chunks consumed by aggregate sinks on the generic encoded-key path.
    pub agg_generic_chunks: AtomicU64,
    /// Storage blocks skipped by zone-map pruning before decode.
    pub blocks_pruned: AtomicU64,
    /// Storage blocks decoded and scanned.
    pub blocks_scanned: AtomicU64,
    /// Rows discarded by sort sinks' TopK bound (never fully sorted).
    pub sort_rows_pruned: AtomicU64,
    /// Per-partition sort-run merge tasks executed.
    pub sort_merge_tasks: AtomicU64,
    /// Rows in the largest per-partition sorted run a sort sink kept —
    /// with a TopK bound this must stay at `limit + offset` or below.
    pub sort_max_run_rows: AtomicU64,
    /// Verifier-mode checks executed this query: static plan-verifier
    /// rules, per-chunk Preserve-route partition checks, and access-log
    /// reconciliations (only counted when `VerifyMode` is on).
    pub verify_checks_run: AtomicU64,
    /// Bytes written to spill files (encoded, on-disk form).
    pub spill_bytes_written: AtomicU64,
    /// Bytes read back from spill files on restore.
    pub spill_bytes_read: AtomicU64,
    /// Running-maximum gauge: decoded (logical) spill bytes × 100 over
    /// encoded spill bytes — 200 means the block codecs halved the spill.
    pub spill_compression_ratio_pct: AtomicU64,
    /// Spilled-run restores served from a completed SpillIo prefetch.
    pub spill_prefetch_hits: AtomicU64,
    /// Spilled-run restores that read the file synchronously.
    pub spill_prefetch_misses: AtomicU64,
    /// Whole-buffer evictions requested by the memory governor.
    pub spill_victim_evictions: AtomicU64,
    /// Nanoseconds of SpillIo prefetch work that ran while at least one
    /// other worker was busy — the overlapped-I/O win, the way
    /// `sched_overlap_tasks` proves partition overlap.
    pub spill_io_overlap_nanos: AtomicU64,
    /// Per-pipeline (label, rows-into-sink) trace, for case studies.
    pub pipeline_trace: Mutex<Vec<(String, u64)>>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise `counter` to at least `n` (running-maximum counters).
    pub fn max_update(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }

    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    pub fn record_pipeline(&self, label: &str, rows: u64) {
        self.pipeline_trace
            .lock()
            .expect("pipeline trace lock poisoned")
            .push((label.to_string(), rows));
    }

    /// Record one partitioned sink merge: how many per-partition tasks ran
    /// and the largest task's row count. Also feeds the cumulative
    /// `merge_tasks` / `merge_max_task_rows` counters.
    pub fn record_merge(&self, label: &str, tasks: u64, max_task_rows: u64) {
        self.add(&self.merge_tasks, tasks);
        self.max_update(&self.merge_max_task_rows, max_task_rows);
        let mut trace = self
            .pipeline_trace
            .lock()
            .expect("pipeline trace lock poisoned");
        trace.push((format!("[merge] {label} tasks"), tasks));
        trace.push((format!("[merge] {label} max-task-rows"), max_task_rows));
    }

    /// Append one arbitrary `(label, value)` entry to the pipeline trace —
    /// used by the global scheduler for its summary and (when
    /// `ExecContext::sched_trace` is on) per-task lifecycle entries.
    pub fn trace_entry(&self, label: impl Into<String>, value: u64) {
        self.pipeline_trace
            .lock()
            .expect("pipeline trace lock poisoned")
            .push((label.into(), value));
    }

    pub fn trace(&self) -> Vec<(String, u64)> {
        self.pipeline_trace
            .lock()
            .expect("pipeline trace lock poisoned")
            .clone()
    }

    /// Append the DAG scheduler's observations to the pipeline trace so
    /// case studies report extracted parallelism alongside per-pipeline
    /// rows.
    pub fn record_scheduler(&self, stats: &crate::scheduler::SchedulerStats) {
        let mut trace = self
            .pipeline_trace
            .lock()
            .expect("pipeline trace lock poisoned");
        trace.push(("[scheduler] pipelines".to_string(), stats.pipelines as u64));
        trace.push((
            "[scheduler] initially-ready".to_string(),
            stats.initially_ready as u64,
        ));
        trace.push((
            "[scheduler] max-parallel".to_string(),
            stats.max_parallel as u64,
        ));
        trace.push((
            "[scheduler] merge-tasks".to_string(),
            self.get(&self.merge_tasks),
        ));
        trace.push((
            "[scheduler] max-merge-task-rows".to_string(),
            self.get(&self.merge_max_task_rows),
        ));
        trace.push((
            "[agg] fast-path-chunks".to_string(),
            self.get(&self.agg_fast_path_chunks),
        ));
        trace.push((
            "[agg] generic-chunks".to_string(),
            self.get(&self.agg_generic_chunks),
        ));
        trace.push((
            "[storage] blocks-pruned".to_string(),
            self.get(&self.blocks_pruned),
        ));
        trace.push((
            "[storage] blocks-scanned".to_string(),
            self.get(&self.blocks_scanned),
        ));
        trace.push((
            "[sort] rows-pruned".to_string(),
            self.get(&self.sort_rows_pruned),
        ));
        trace.push((
            "[sort] merge-task-count".to_string(),
            self.get(&self.sort_merge_tasks),
        ));
        trace.push((
            "[sort] max-run-rows".to_string(),
            self.get(&self.sort_max_run_rows),
        ));
    }

    /// Snapshot of the headline numbers.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            scan_rows: self.scan_rows.load(Ordering::Relaxed),
            bloom_probe_in: self.bloom_probe_in.load(Ordering::Relaxed),
            bloom_probe_out: self.bloom_probe_out.load(Ordering::Relaxed),
            bloom_build_rows: self.bloom_build_rows.load(Ordering::Relaxed),
            hash_build_rows: self.hash_build_rows.load(Ordering::Relaxed),
            join_probe_in: self.join_probe_in.load(Ordering::Relaxed),
            join_output_rows: self.join_output_rows.load(Ordering::Relaxed),
            intermediate_tuples: self.intermediate_tuples.load(Ordering::Relaxed),
            output_rows: self.output_rows.load(Ordering::Relaxed),
            bloom_nanos: self.bloom_nanos.load(Ordering::Relaxed),
            merge_tasks: self.merge_tasks.load(Ordering::Relaxed),
            merge_max_task_rows: self.merge_max_task_rows.load(Ordering::Relaxed),
            sched_tasks: self.sched_tasks.load(Ordering::Relaxed),
            sched_overlap_tasks: self.sched_overlap_tasks.load(Ordering::Relaxed),
            sched_max_queue_depth: self.sched_max_queue_depth.load(Ordering::Relaxed),
            sched_busy_nanos: self.sched_busy_nanos.load(Ordering::Relaxed),
            sched_wall_nanos: self.sched_wall_nanos.load(Ordering::Relaxed),
            sched_workers: self.sched_workers.load(Ordering::Relaxed),
            sched_local_hits: self.sched_local_hits.load(Ordering::Relaxed),
            sched_steals: self.sched_steals.load(Ordering::Relaxed),
            sched_priority_promotions: self.sched_priority_promotions.load(Ordering::Relaxed),
            repartition_elided_chunks: self.repartition_elided_chunks.load(Ordering::Relaxed),
            agg_fast_path_chunks: self.agg_fast_path_chunks.load(Ordering::Relaxed),
            agg_generic_chunks: self.agg_generic_chunks.load(Ordering::Relaxed),
            blocks_pruned: self.blocks_pruned.load(Ordering::Relaxed),
            blocks_scanned: self.blocks_scanned.load(Ordering::Relaxed),
            sort_rows_pruned: self.sort_rows_pruned.load(Ordering::Relaxed),
            sort_merge_tasks: self.sort_merge_tasks.load(Ordering::Relaxed),
            sort_max_run_rows: self.sort_max_run_rows.load(Ordering::Relaxed),
            verify_checks_run: self.verify_checks_run.load(Ordering::Relaxed),
            spill_bytes_written: self.spill_bytes_written.load(Ordering::Relaxed),
            spill_bytes_read: self.spill_bytes_read.load(Ordering::Relaxed),
            spill_compression_ratio_pct: self.spill_compression_ratio_pct.load(Ordering::Relaxed),
            spill_prefetch_hits: self.spill_prefetch_hits.load(Ordering::Relaxed),
            spill_prefetch_misses: self.spill_prefetch_misses.load(Ordering::Relaxed),
            spill_victim_evictions: self.spill_victim_evictions.load(Ordering::Relaxed),
            spill_io_overlap_nanos: self.spill_io_overlap_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`Metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSummary {
    pub scan_rows: u64,
    pub bloom_probe_in: u64,
    pub bloom_probe_out: u64,
    pub bloom_build_rows: u64,
    pub hash_build_rows: u64,
    pub join_probe_in: u64,
    pub join_output_rows: u64,
    pub intermediate_tuples: u64,
    pub output_rows: u64,
    pub bloom_nanos: u64,
    pub merge_tasks: u64,
    pub merge_max_task_rows: u64,
    pub sched_tasks: u64,
    pub sched_overlap_tasks: u64,
    pub sched_max_queue_depth: u64,
    pub sched_busy_nanos: u64,
    pub sched_wall_nanos: u64,
    pub sched_workers: u64,
    pub sched_local_hits: u64,
    pub sched_steals: u64,
    pub sched_priority_promotions: u64,
    pub repartition_elided_chunks: u64,
    pub agg_fast_path_chunks: u64,
    pub agg_generic_chunks: u64,
    pub blocks_pruned: u64,
    pub blocks_scanned: u64,
    pub sort_rows_pruned: u64,
    pub sort_merge_tasks: u64,
    pub sort_max_run_rows: u64,
    pub verify_checks_run: u64,
    pub spill_bytes_written: u64,
    pub spill_bytes_read: u64,
    pub spill_compression_ratio_pct: u64,
    pub spill_prefetch_hits: u64,
    pub spill_prefetch_misses: u64,
    pub spill_victim_evictions: u64,
    pub spill_io_overlap_nanos: u64,
}

impl MetricsSummary {
    /// Worker utilization of the last global-scheduler run, in percent.
    /// `sched_wall_nanos` is already summed over each worker's own
    /// thread-lifetime span, so the ratio is simply `busy / wall` — an
    /// idle stealer drags it down instead of being hidden behind a single
    /// shared clock.
    pub fn scheduler_utilization_pct(&self) -> u64 {
        utilization_pct(self.sched_busy_nanos, self.sched_wall_nanos, 1)
    }
    /// The robustness work metric: tuples processed through stateful
    /// operators. Deterministic, hardware-independent. `scan_rows` is
    /// deliberately excluded: scans are stateless and join-order-invariant,
    /// so counting them would only compress the relative work ratios the
    /// robustness experiments measure.
    pub fn total_work(&self) -> u64 {
        self.bloom_probe_in
            + self.bloom_build_rows
            + self.hash_build_rows
            + self.join_probe_in
            + self.join_output_rows
    }

    /// Cost-weighted work: Bloom operations are ≈5× cheaper per tuple than
    /// hash-table operations (the Figure 16 microbenchmark measures 2–7×),
    /// so speedup comparisons weight them at 0.2. This is the deterministic
    /// analogue of the paper's wall-time speedups.
    pub fn weighted_work(&self) -> f64 {
        0.2 * self.bloom_probe_in as f64
            + 0.2 * self.bloom_build_rows as f64
            + self.hash_build_rows as f64
            + self.join_probe_in as f64
            + self.join_output_rows as f64
    }
}

/// Shared execution context.
#[derive(Clone)]
pub struct ExecContext {
    pub metrics: Arc<Metrics>,
    /// Abort once `work_done` exceeds this many tuples (`None` = unlimited).
    pub work_budget: Option<u64>,
    work_done: Arc<AtomicU64>,
    /// Number of execution threads (1 = the paper's default single-threaded
    /// setting; 32 reproduces §5.3).
    pub threads: usize,
    /// Memory cap in bytes for transfer-phase materialization buffers
    /// (`None` = unbounded). Reproduces the "+spill" configuration.
    pub spill_limit_bytes: Option<usize>,
    /// Directory for spill files.
    pub spill_dir: PathBuf,
    /// Hash partitions per materializing sink (power of two; 1 = the
    /// classic unpartitioned sinks with a serial Combine merge). Defaults
    /// to `RPT_PARTITION_COUNT` when set.
    pub partition_count: usize,
    /// Which scheduler executes DAG runs (defaults from `RPT_SCHEDULER`).
    pub scheduler: SchedulerKind,
    /// Global worker-pool size (defaults to `available_parallelism()`).
    /// Only the global scheduler reads this; the scoped scheduler keeps
    /// the legacy `pipeline_parallelism × threads` layering.
    pub workers: usize,
    /// Emit per-task `[scheduler]` lifecycle trace entries
    /// (enqueue/start/finish with pipeline+partition ids). Defaults from
    /// `RPT_SCHED_TRACE=1`; meant for debugging hangs, so it is off unless
    /// asked for.
    pub sched_trace: bool,
    /// Allow aggregate sinks to take the fixed-width packed-key fast path
    /// when the group key is eligible (defaults from `RPT_AGG_FAST`; `off`
    /// forces the generic encoded-key tables everywhere).
    pub agg_fast: bool,
    /// Serve table scans from the block-encoded layout (zone-map pruning,
    /// dictionary-backed string vectors). Defaults from
    /// `RPT_STORAGE_ENCODING`; `off` scans the raw flat layout.
    pub storage_encoding: bool,
    /// Plan-verification mode (defaults from `RPT_PLAN_VERIFY`; debug
    /// builds default to `Strict`). Gates the runtime Preserve-route
    /// checks and the observed-access shadow log.
    pub verify: VerifyMode,
    /// Query-wide memory governor all materializing sinks register with
    /// (`None` = no global budget, only per-buffer caps apply). Built from
    /// `QueryOptions::memory_budget_bytes` / `RPT_MEMORY_BUDGET`.
    pub governor: Option<Arc<rpt_storage::MemoryGovernor>>,
    /// Write spill runs in the block-encoded format (defaults from
    /// `RPT_SPILL_ENCODING`; `off` uses the legacy decoded chunk format).
    pub spill_encoding: bool,
    /// Prefetch+decode spilled runs on SpillIo pool tasks ahead of the
    /// merge (defaults from `RPT_SPILL_PREFETCH`).
    pub spill_prefetch: bool,
    /// Process-unique query id baked into spill file names (orphan-sweep
    /// forensics and lifecycle tests).
    pub query_id: u64,
}

/// Process-wide query-id allocator for [`ExecContext::query_id`].
static QUERY_ID: AtomicU64 = AtomicU64::new(0);

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::new()
    }
}

impl ExecContext {
    pub fn new() -> Self {
        ExecContext {
            metrics: Arc::new(Metrics::new()),
            work_budget: None,
            work_done: Arc::new(AtomicU64::new(0)),
            threads: 1,
            spill_limit_bytes: None,
            spill_dir: std::env::temp_dir(),
            partition_count: rpt_common::partition_count_from_env(),
            scheduler: SchedulerKind::from_env(),
            workers: default_worker_count(),
            sched_trace: std::env::var("RPT_SCHED_TRACE").is_ok_and(|v| v == "1"),
            agg_fast: agg_fast_from_env(),
            storage_encoding: storage_encoding_from_env(),
            verify: VerifyMode::from_env(),
            governor: memory_budget_from_env()
                .map(|b| Arc::new(rpt_storage::MemoryGovernor::new(b))),
            spill_encoding: spill_encoding_from_env(),
            spill_prefetch: spill_prefetch_from_env(),
            query_id: QUERY_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Set the plan-verification mode.
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }

    /// Enable or disable the fixed-width aggregation fast path.
    pub fn with_agg_fast(mut self, agg_fast: bool) -> Self {
        self.agg_fast = agg_fast;
        self
    }

    /// Enable or disable the block-encoded storage read path.
    pub fn with_storage_encoding(mut self, on: bool) -> Self {
        self.storage_encoding = on;
        self
    }

    /// Select the DAG scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Size the global worker pool.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable per-task scheduler lifecycle tracing.
    pub fn with_sched_trace(mut self) -> Self {
        self.sched_trace = true;
        self
    }

    pub fn with_budget(mut self, budget: u64) -> Self {
        self.work_budget = Some(budget);
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_spill(mut self, limit_bytes: usize, dir: impl Into<PathBuf>) -> Self {
        self.spill_limit_bytes = Some(limit_bytes);
        self.spill_dir = dir.into();
        self
    }

    /// Set the sink partition count (normalized to a power of two).
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partition_count = rpt_common::normalize_partition_count(partitions);
        self
    }

    /// Install a query-wide memory governor with the given byte budget
    /// (`None` removes it).
    pub fn with_memory_budget(mut self, budget_bytes: Option<usize>) -> Self {
        self.governor = budget_bytes.map(|b| Arc::new(rpt_storage::MemoryGovernor::new(b)));
        self
    }

    /// Choose the spill format: block-encoded (default) or legacy decoded.
    pub fn with_spill_encoding(mut self, on: bool) -> Self {
        self.spill_encoding = on;
        self
    }

    /// Enable or disable SpillIo restore prefetch tasks.
    pub fn with_spill_prefetch(mut self, on: bool) -> Self {
        self.spill_prefetch = on;
        self
    }

    /// Charge `n` tuples of work; error once over budget.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<()> {
        let done = self.work_done.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(budget) = self.work_budget {
            if done > budget {
                return Err(Error::BudgetExceeded {
                    processed: done,
                    budget,
                });
            }
        }
        Ok(())
    }

    pub fn work_done(&self) -> u64 {
        self.work_done.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_enforced() {
        let ctx = ExecContext::new().with_budget(100);
        assert!(ctx.charge(60).is_ok());
        assert!(ctx.charge(40).is_ok());
        let err = ctx.charge(1).unwrap_err();
        assert!(err.is_budget());
        assert_eq!(ctx.work_done(), 101);
    }

    #[test]
    fn unlimited_by_default() {
        let ctx = ExecContext::new();
        assert!(ctx.charge(u64::MAX / 2).is_ok());
    }

    #[test]
    fn metrics_roundtrip() {
        let m = Metrics::new();
        m.add(&m.join_output_rows, 7);
        m.add(&m.join_output_rows, 3);
        m.record_pipeline("join a⋈b", 10);
        let s = m.summary();
        assert_eq!(s.join_output_rows, 10);
        assert_eq!(m.trace(), vec![("join a⋈b".to_string(), 10)]);
        assert_eq!(s.total_work(), 10);
    }

    #[test]
    fn utilization_zero_wall_is_safe() {
        // Sub-microsecond query: wall span rounds to zero but workers did
        // record busy time — never divide by zero, report saturated.
        assert_eq!(utilization_pct(1, 0, 4), 100);
        assert_eq!(utilization_pct(0, 0, 4), 0);
        // Zero workers behaves like zero wall.
        assert_eq!(utilization_pct(5, 100, 0), 100);
        // Overflowing numerator saturates instead of wrapping.
        assert_eq!(utilization_pct(u64::MAX, 1, 1), 100);
        // Normal case still exact.
        assert_eq!(utilization_pct(50, 100, 1), 50);
        assert_eq!(utilization_pct(50, 100, 2), 25);
    }

    #[test]
    fn verify_mode_gates() {
        assert!(VerifyMode::Strict.enabled() && VerifyMode::Strict.strict());
        assert!(VerifyMode::Warn.enabled() && !VerifyMode::Warn.strict());
        assert!(!VerifyMode::Off.enabled() && !VerifyMode::Off.strict());
    }

    #[test]
    fn verify_checks_metric_roundtrip() {
        let m = Metrics::new();
        m.add(&m.verify_checks_run, 3);
        assert_eq!(m.summary().verify_checks_run, 3);
    }

    #[test]
    fn context_clone_shares_counters() {
        let ctx = ExecContext::new().with_budget(10);
        let ctx2 = ctx.clone();
        ctx.charge(6).unwrap();
        assert!(ctx2.charge(6).is_err());
    }
}
