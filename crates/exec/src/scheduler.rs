//! Dependency-DAG pipeline scheduler.
//!
//! `Executor::run` executes pipelines strictly in plan order, which
//! serializes work that is actually independent — e.g. the per-relation
//! CreateBF builds of the forward transfer pass (§4.2) touch disjoint
//! buffers and filters, so nothing orders them relative to each other.
//! This module derives the real partial order from each pipeline's
//! [`ResourceId`] read/write sets and executes the DAG with a small worker
//! pool: a pipeline becomes *ready* once every pipeline whose writes it
//! reads has finalized; up to `max_concurrent` ready pipelines run at a
//! time, each still using morsel-level parallelism internally.
//!
//! The scheduler is deterministic with respect to results: resources are
//! write-once ([`Resources`]), every consumer is ordered after its
//! producer, and ready pipelines are dispatched lowest-index-first — with
//! `max_concurrent == 1` the execution order is exactly the stable
//! topological order of the plan (which, for plans out of the sequential
//! planner, is the plan order itself).

use crate::context::ExecContext;
use crate::operators::{ResourceId, Resources};
use crate::pipeline::{run_physical, PipelinePlan};
use rpt_common::{Error, Result};
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Read/write sets of one schedulable node.
#[derive(Debug, Clone, Default)]
pub struct NodeDeps {
    pub reads: Vec<ResourceId>,
    pub writes: Vec<ResourceId>,
}

impl NodeDeps {
    /// Partition-granular form: whole-buffer ids become one
    /// `ResourceId::BufferPart` grain per hash partition (idempotent; see
    /// [`crate::operators::expand_partition_grains`]). The planner records
    /// this form in the `PhysicalPlan` IR so the global scheduler can gate
    /// a consumer's partition-`p` tasks on the producer sealing `p` alone;
    /// the scoped scheduler treats grains opaquely and derives the same
    /// pipeline-level edges either way.
    pub fn expand_partitions(&self, partitions: usize) -> NodeDeps {
        NodeDeps {
            reads: crate::operators::expand_partition_grains(&self.reads, partitions),
            writes: crate::operators::expand_partition_grains(&self.writes, partitions),
        }
    }
}

/// What the scheduler observed while running a DAG; recorded into the
/// metrics trace so case studies can see the extracted parallelism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Number of pipelines executed.
    pub pipelines: usize,
    /// Nodes ready at the start — the width of the first wave.
    pub initially_ready: usize,
    /// Maximum number of pipelines observed running at the same time.
    pub max_parallel: usize,
}

/// The dependency DAG in adjacency form: `edges[p]` lists the nodes that
/// must wait for `p`; `indegree[c]` counts how many nodes `c` waits for.
pub(crate) struct Dag {
    pub(crate) edges: Vec<Vec<usize>>,
    pub(crate) indegree: Vec<usize>,
}

/// Build the DAG: node `c` depends on node `p` (p < runs-before > c) when
/// `p` writes a resource `c` reads, or — defensively, the planner never
/// emits this — when both write the same resource (ordered by index).
pub(crate) fn build_dag(deps: &[NodeDeps]) -> Dag {
    let n = deps.len();
    let mut writer: HashMap<ResourceId, Vec<usize>> = HashMap::new();
    for (i, d) in deps.iter().enumerate() {
        for &w in &d.writes {
            writer.entry(w).or_default().push(i);
        }
    }
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    let add_edge = |edges: &mut Vec<Vec<usize>>, indegree: &mut Vec<usize>, p: usize, c: usize| {
        if p != c && !edges[p].contains(&c) {
            edges[p].push(c);
            indegree[c] += 1;
        }
    };
    for (c, d) in deps.iter().enumerate() {
        for r in &d.reads {
            if let Some(ps) = writer.get(r) {
                for &p in ps {
                    add_edge(&mut edges, &mut indegree, p, c);
                }
            }
        }
    }
    // Write-write conflicts: serialize in index order.
    for ps in writer.values() {
        for pair in ps.windows(2) {
            add_edge(&mut edges, &mut indegree, pair[0], pair[1]);
        }
    }
    Dag { edges, indegree }
}

/// Kahn's algorithm; `Error::Plan` if the dependencies contain a cycle.
pub(crate) fn check_acyclic(dag: &Dag) -> Result<()> {
    let n = dag.indegree.len();
    let mut indegree = dag.indegree.clone();
    let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut seen = 0;
    while let Some(p) = stack.pop() {
        seen += 1;
        for &c in &dag.edges[p] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                stack.push(c);
            }
        }
    }
    if seen != n {
        let stuck: Vec<usize> = (0..n).filter(|&i| indegree[i] > 0).collect();
        return Err(Error::Plan(format!(
            "pipeline dependency cycle involving pipelines {stuck:?}"
        )));
    }
    Ok(())
}

struct SchedState {
    ready: Vec<usize>, // kept sorted descending; pop() yields lowest index
    indegree: Vec<usize>,
    running: usize,
    completed: usize,
    max_parallel: usize,
    error: Option<Error>,
}

impl SchedState {
    fn pop_ready(&mut self) -> Option<usize> {
        self.ready.pop()
    }

    fn push_ready(&mut self, node: usize) {
        self.ready.push(node);
        self.ready.sort_unstable_by(|a, b| b.cmp(a));
    }
}

/// Run `nodes` respecting `deps`, calling `run(i)` for each node, with at
/// most `max_concurrent` nodes in flight. Returns observed stats, the
/// first error raised by a node, or `Error::Plan` on a dependency cycle.
pub fn run_dag<F>(deps: &[NodeDeps], max_concurrent: usize, run: F) -> Result<SchedulerStats>
where
    F: Fn(usize) -> Result<()> + Sync,
{
    let n = deps.len();
    if n == 0 {
        return Ok(SchedulerStats::default());
    }
    let dag = build_dag(deps);
    check_acyclic(&dag)?;

    let initially_ready = dag.indegree.iter().filter(|&&d| d == 0).count();
    let workers = max_concurrent.max(1).min(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| dag.indegree[i] == 0).collect();
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let state = Mutex::new(SchedState {
        ready,
        indegree: dag.indegree.clone(),
        running: 0,
        completed: 0,
        max_parallel: 0,
        error: None,
    });
    let cvar = Condvar::new();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let node = {
                    let mut s = state.lock().expect("scheduler state poisoned");
                    loop {
                        if s.error.is_some() || s.completed == n {
                            return;
                        }
                        if let Some(i) = s.pop_ready() {
                            s.running += 1;
                            s.max_parallel = s.max_parallel.max(s.running);
                            break i;
                        }
                        s = cvar.wait(s).expect("scheduler state poisoned");
                    }
                };

                let result = run(node);

                let mut s = state.lock().expect("scheduler state poisoned");
                s.running -= 1;
                match result {
                    Ok(()) => {
                        s.completed += 1;
                        for &c in &dag.edges[node] {
                            s.indegree[c] -= 1;
                            if s.indegree[c] == 0 {
                                s.push_ready(c);
                            }
                        }
                    }
                    Err(e) => {
                        if s.error.is_none() {
                            s.error = Some(e);
                        }
                    }
                }
                drop(s);
                cvar.notify_all();
            });
        }
    });

    let mut s = state.into_inner().expect("scheduler state poisoned");
    if let Some(e) = s.error.take() {
        return Err(e);
    }
    debug_assert_eq!(s.completed, n);
    Ok(SchedulerStats {
        pipelines: n,
        initially_ready,
        max_parallel: s.max_parallel,
    })
}

/// Lower a pipeline list and execute it as a dependency DAG, with the
/// read/write sets supplied by the caller — this is how the planner's
/// `PhysicalPlan` IR (which records dependencies at compile time) drives
/// execution. Stats are appended to the metrics trace (`[scheduler] …`
/// entries).
pub fn run_pipelines_dag_with_deps(
    pipelines: &[PipelinePlan],
    deps: &[NodeDeps],
    ctx: &ExecContext,
    res: &Resources,
    max_concurrent: usize,
) -> Result<SchedulerStats> {
    debug_assert_eq!(pipelines.len(), deps.len());
    let phys: Vec<_> = pipelines.iter().map(PipelinePlan::lower).collect();
    let stats = run_dag(deps, max_concurrent, |i| run_physical(&phys[i], ctx, res))?;
    ctx.metrics.record_scheduler(&stats);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;
    use std::time::Duration;

    fn node(reads: Vec<ResourceId>, writes: Vec<ResourceId>) -> NodeDeps {
        NodeDeps { reads, writes }
    }

    use ResourceId::{Buffer, Filter, HashTable};

    /// (a) Topological execution: every producer finishes before any of
    /// its consumers starts, across many concurrent runs.
    #[test]
    fn dependencies_respected() {
        // 0 → {1, 2} → 3 (a diamond), 4 independent.
        let deps = vec![
            node(vec![], vec![Buffer(0)]),
            node(vec![Buffer(0)], vec![Filter(0)]),
            node(vec![Buffer(0)], vec![HashTable(0)]),
            node(vec![Filter(0), HashTable(0)], vec![Buffer(1)]),
            node(vec![], vec![Buffer(2)]),
        ];
        for max_concurrent in [1, 2, 5] {
            let log = StdMutex::new(Vec::new());
            run_dag(&deps, max_concurrent, |i| {
                log.lock().unwrap().push(i);
                Ok(())
            })
            .unwrap();
            let order = log.into_inner().unwrap();
            assert_eq!(order.len(), 5);
            let pos = |x: usize| order.iter().position(|&i| i == x).unwrap();
            assert!(pos(0) < pos(1));
            assert!(pos(0) < pos(2));
            assert!(pos(1) < pos(3));
            assert!(pos(2) < pos(3));
        }
    }

    /// With a single worker the dispatch order is the stable topological
    /// order (lowest ready index first).
    #[test]
    fn single_worker_is_stable_topo_order() {
        let deps = vec![
            node(vec![], vec![Buffer(0)]),
            node(vec![], vec![Buffer(1)]),
            node(vec![Buffer(1)], vec![Buffer(2)]),
            node(vec![Buffer(0), Buffer(2)], vec![Buffer(3)]),
        ];
        let log = StdMutex::new(Vec::new());
        run_dag(&deps, 1, |i| {
            log.lock().unwrap().push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(log.into_inner().unwrap(), vec![0, 1, 2, 3]);
    }

    /// (b) A dependency cycle is reported as `Error::Plan`, not a hang.
    #[test]
    fn cycle_is_plan_error() {
        let deps = vec![
            node(vec![Buffer(1)], vec![Buffer(0)]),
            node(vec![Buffer(0)], vec![Buffer(1)]),
        ];
        let err = run_dag(&deps, 2, |_| Ok(())).unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "got {err}");
        // Nodes reachable only through the cycle are reported too.
        let deps = vec![
            node(vec![], vec![Buffer(9)]),
            node(vec![Buffer(9), Filter(0)], vec![HashTable(0)]),
            node(vec![HashTable(0)], vec![Filter(0)]),
        ];
        let err = run_dag(&deps, 2, |_| Ok(())).unwrap_err();
        assert!(matches!(err, Error::Plan(_)), "got {err}");
    }

    /// Independent nodes genuinely overlap: both must be in flight at the
    /// same moment before either may finish (rendezvous via condvar with a
    /// timeout, so a sequential scheduler fails rather than deadlocks).
    #[test]
    fn independent_nodes_run_concurrently() {
        let deps = vec![node(vec![], vec![Buffer(0)]), node(vec![], vec![Buffer(1)])];
        let pair = (StdMutex::new(0usize), Condvar::new());
        let stats = run_dag(&deps, 2, |_| {
            let (lock, cv) = &pair;
            let mut inside = lock.lock().unwrap();
            *inside += 1;
            cv.notify_all();
            let deadline = Duration::from_secs(10);
            while *inside < 2 {
                let (guard, timeout) = cv.wait_timeout(inside, deadline).unwrap();
                inside = guard;
                if timeout.timed_out() {
                    return Err(Error::Exec(
                        "rendezvous timed out: nodes did not overlap".into(),
                    ));
                }
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.max_parallel, 2);
        assert_eq!(stats.initially_ready, 2);
    }

    /// A node error cancels the run and propagates.
    #[test]
    fn node_error_propagates() {
        let deps = vec![
            node(vec![], vec![Buffer(0)]),
            node(vec![Buffer(0)], vec![Buffer(1)]),
            node(vec![Buffer(1)], vec![Buffer(2)]),
        ];
        let ran = AtomicUsize::new(0);
        let err = run_dag(&deps, 2, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 1 {
                Err(Error::Exec("boom".into()))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert!(matches!(err, Error::Exec(_)));
        // Node 2 never ran: its producer failed.
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    /// Write-write conflicts (never emitted by the planner) are serialized
    /// by index rather than racing.
    #[test]
    fn write_write_serialized() {
        let deps = vec![
            node(vec![], vec![Buffer(0)]),
            node(vec![], vec![Buffer(0)]),
            node(vec![Buffer(0)], vec![Buffer(1)]),
        ];
        let log = StdMutex::new(Vec::new());
        run_dag(&deps, 4, |i| {
            log.lock().unwrap().push(i);
            Ok(())
        })
        .unwrap();
        let order = log.into_inner().unwrap();
        let pos = |x: usize| order.iter().position(|&i| i == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn empty_dag_is_noop() {
        let stats = run_dag(&[], 4, |_| Ok(())).unwrap();
        assert_eq!(stats, SchedulerStats::default());
    }
}
