//! Pipelines and the push-based executor.
//!
//! A query compiles into an ordered list of [`PipelinePlan`]s, mirroring
//! DuckDB's execution model (§4.1, Figure 3): each pipeline pulls chunks
//! from its *source*, pushes them through streaming *operators*, and
//! terminates at a *sink* (a pipeline breaker). The RPT integration (§4.2,
//! §4.3, Figure 5) adds:
//!
//! * `SinkSpec::Buffer` with [`BloomSink`]s — the **CreateBF** operator:
//!   buffers the incoming chunks (spilling if configured) and builds one
//!   Bloom filter per requested key set in `Finalize`; the buffer then acts
//!   as the source of a later pipeline;
//! * `OpSpec::ProbeBloom` — the **ProbeBF** operator: probes a previously
//!   built filter and refines the chunk's selection vector via the
//!   bitmask → selection conversion.
//!
//! Multi-threaded execution is morsel-driven: workers claim source chunks
//! from an atomic counter, maintain thread-local sink state (`Sink`), and
//! the main thread merges (`Combine`) and finalizes (`Finalize`).

use crate::aggregate::AggregateState;
use crate::context::ExecContext;
use crate::expr::{AggExpr, Expr};
use crate::hash_table::JoinHashTable;
use rpt_bloom::{bitmask_to_selection, BloomFilter};
use rpt_common::hash::hash_columns;
use rpt_common::{DataChunk, DataType, Error, Result, Schema, Vector};
use rpt_storage::{SpillBuffer, Table};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where a pipeline reads its chunks from.
#[derive(Clone)]
pub enum SourceSpec {
    /// Scan an in-memory table.
    Table(Arc<Table>),
    /// Read the materialized output of an earlier pipeline (e.g. a
    /// `CreateBF` buffer acting as a source).
    Buffer(usize),
}

/// A streaming (non-breaking) operator.
#[derive(Clone)]
pub enum OpSpec {
    /// Refine the selection with a predicate.
    Filter(Expr),
    /// Replace the chunk with evaluated expressions (flattens).
    Project(Vec<Expr>),
    /// ProbeBF: drop rows whose key misses the Bloom filter.
    ProbeBloom { filter_id: usize, key_cols: Vec<usize> },
    /// Hash-join probe against a built table; appends the listed build-side
    /// columns to the chunk. One output row per match (duplicating).
    JoinProbe {
        ht_id: usize,
        key_cols: Vec<usize>,
        build_output_cols: Vec<usize>,
    },
    /// Exact semi-join probe (Yannakakis reducer): keep rows with ≥1 match.
    SemiProbe { ht_id: usize, key_cols: Vec<usize> },
}

/// Request to build one Bloom filter inside a buffering sink.
#[derive(Clone)]
pub struct BloomSink {
    pub filter_id: usize,
    pub key_cols: Vec<usize>,
    /// Sizing hint (pre-reduction cardinality of the source).
    pub expected_keys: usize,
    pub fpr: f64,
}

/// Pipeline-terminating operator.
#[derive(Clone)]
pub enum SinkSpec {
    /// Materialize chunks into buffer `buf_id`, building the requested
    /// Bloom filters along the way (CreateBF). With an empty `blooms` list
    /// this is a plain collect sink.
    Buffer {
        buf_id: usize,
        blooms: Vec<BloomSink>,
    },
    /// Build a join hash table keyed on `key_cols`. `blooms` optionally
    /// builds Bloom filters over the same stream — this is how the BloomJoin
    /// baseline (§6.1) attaches a filter to each hash-join build side.
    HashBuild {
        ht_id: usize,
        key_cols: Vec<usize>,
        blooms: Vec<BloomSink>,
    },
    /// Hash aggregation; result goes to buffer `buf_id`.
    Aggregate {
        buf_id: usize,
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: Vec<DataType>,
        output_schema: Schema,
    },
}

/// One pipeline: source → ops → sink.
#[derive(Clone)]
pub struct PipelinePlan {
    /// Human-readable label (shows up in the metrics trace / case studies).
    pub label: String,
    pub source: SourceSpec,
    pub ops: Vec<OpSpec>,
    pub sink: SinkSpec,
    /// Whether rows into this sink count toward `intermediate_tuples`.
    /// (True for everything except the final output collect.)
    pub intermediate: bool,
    /// Schema of chunks entering the sink (needed for buffer spill files).
    pub sink_schema: Schema,
}

/// Executor state shared across a query's pipelines.
pub struct Executor {
    pub ctx: ExecContext,
    buffers: Vec<Option<Arc<Vec<DataChunk>>>>,
    filters: Vec<Option<Arc<BloomFilter>>>,
    tables: Vec<Option<Arc<JoinHashTable>>>,
}

impl Executor {
    pub fn new(ctx: ExecContext, num_buffers: usize, num_filters: usize, num_tables: usize) -> Self {
        Executor {
            ctx,
            buffers: vec![None; num_buffers],
            filters: vec![None; num_filters],
            tables: vec![None; num_tables],
        }
    }

    /// Execute pipelines in order.
    pub fn run(&mut self, pipelines: &[PipelinePlan]) -> Result<()> {
        for p in pipelines {
            self.run_pipeline(p)?;
        }
        Ok(())
    }

    /// Materialized chunks of a buffer.
    pub fn buffer(&self, id: usize) -> Result<Arc<Vec<DataChunk>>> {
        self.buffers
            .get(id)
            .and_then(|b| b.clone())
            .ok_or_else(|| Error::Exec(format!("buffer {id} not materialized")))
    }

    pub fn buffer_rows(&self, id: usize) -> u64 {
        self.buffers
            .get(id)
            .and_then(|b| b.as_ref())
            .map_or(0, |chunks| chunks.iter().map(|c| c.num_rows() as u64).sum())
    }

    pub fn filter(&self, id: usize) -> Result<Arc<BloomFilter>> {
        self.filters
            .get(id)
            .and_then(|f| f.clone())
            .ok_or_else(|| Error::Exec(format!("bloom filter {id} not built")))
    }

    pub fn hash_table(&self, id: usize) -> Result<Arc<JoinHashTable>> {
        self.tables
            .get(id)
            .and_then(|t| t.clone())
            .ok_or_else(|| Error::Exec(format!("hash table {id} not built")))
    }

    fn source_chunks(&self, src: &SourceSpec) -> Result<Arc<Vec<DataChunk>>> {
        Ok(match src {
            SourceSpec::Table(t) => Arc::new(t.default_chunks()),
            SourceSpec::Buffer(id) => self.buffer(*id)?,
        })
    }

    fn run_pipeline(&mut self, p: &PipelinePlan) -> Result<()> {
        let chunks = self.source_chunks(&p.source)?;
        let threads = self.ctx.threads.min(chunks.len()).max(1);
        let mut states: Vec<SinkState> = Vec::with_capacity(threads);

        if threads == 1 {
            let mut state = SinkState::new(p, &self.ctx)?;
            for c in chunks.iter() {
                self.ctx.charge(c.num_rows() as u64)?;
                if let Some(out) = self.apply_ops(c.clone(), &p.ops)? {
                    state.sink(out, &self.ctx)?;
                }
            }
            states.push(state);
        } else {
            let next = AtomicUsize::new(0);
            let ctx = &self.ctx;
            let filters = &self.filters;
            let tables = &self.tables;
            let results: Vec<Result<SinkState>> = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for _ in 0..threads {
                    handles.push(scope.spawn(|_| -> Result<SinkState> {
                        let mut state = SinkState::new(p, ctx)?;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= chunks.len() {
                                break;
                            }
                            ctx.charge(chunks[i].num_rows() as u64)?;
                            if let Some(out) =
                                apply_ops_inner(chunks[i].clone(), &p.ops, ctx, filters, tables)?
                            {
                                state.sink(out, ctx)?;
                            }
                        }
                        Ok(state)
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
            .expect("thread scope failed");
            for r in results {
                states.push(r?);
            }
        }

        // Combine + Finalize.
        let mut iter = states.into_iter();
        let mut merged = iter.next().expect("at least one sink state");
        for s in iter {
            merged.combine(s)?;
        }
        let rows = merged.rows();
        if p.intermediate {
            self.ctx
                .metrics
                .add(&self.ctx.metrics.intermediate_tuples, rows);
        } else {
            self.ctx.metrics.add(&self.ctx.metrics.output_rows, rows);
        }
        self.ctx.metrics.record_pipeline(&p.label, rows);
        merged.finalize(self)?;
        Ok(())
    }

    fn apply_ops(&self, chunk: DataChunk, ops: &[OpSpec]) -> Result<Option<DataChunk>> {
        apply_ops_inner(chunk, ops, &self.ctx, &self.filters, &self.tables)
    }
}

/// Gather key columns over the logical rows of a chunk.
fn gather_keys(chunk: &DataChunk, key_cols: &[usize]) -> Vec<Vector> {
    key_cols
        .iter()
        .map(|&k| match &chunk.selection {
            Some(sel) => chunk.columns[k].take(sel),
            None => chunk.columns[k].clone(),
        })
        .collect()
}

fn apply_ops_inner(
    mut chunk: DataChunk,
    ops: &[OpSpec],
    ctx: &ExecContext,
    filters: &[Option<Arc<BloomFilter>>],
    tables: &[Option<Arc<JoinHashTable>>],
) -> Result<Option<DataChunk>> {
    let m = &ctx.metrics;
    for op in ops {
        if chunk.is_logically_empty() {
            return Ok(None);
        }
        match op {
            OpSpec::Filter(e) => {
                let sel = e.eval_selection(&chunk)?;
                chunk.refine_selection(&sel);
            }
            OpSpec::Project(exprs) => {
                let cols: Vec<Vector> =
                    exprs.iter().map(|e| e.eval(&chunk)).collect::<Result<_>>()?;
                chunk = DataChunk::new(cols);
            }
            OpSpec::ProbeBloom { filter_id, key_cols } => {
                let filter = filters
                    .get(*filter_id)
                    .and_then(|f| f.as_ref())
                    .ok_or_else(|| {
                        Error::Exec(format!("bloom filter {filter_id} not built"))
                    })?;
                let n = chunk.num_rows();
                let t0 = Instant::now();
                let gathered = gather_keys(&chunk, key_cols);
                let refs: Vec<&Vector> = gathered.iter().collect();
                let hashes = hash_columns(&refs, n);
                let mask = filter.probe_hashes_bitmask(&hashes);
                let mut keep = Vec::new();
                bitmask_to_selection(&mask, n, &mut keep);
                m.add(&m.bloom_nanos, t0.elapsed().as_nanos() as u64);
                m.add(&m.bloom_probe_in, n as u64);
                m.add(&m.bloom_probe_out, keep.len() as u64);
                chunk.refine_selection(&keep);
            }
            OpSpec::JoinProbe {
                ht_id,
                key_cols,
                build_output_cols,
            } => {
                let ht = tables
                    .get(*ht_id)
                    .and_then(|t| t.as_ref())
                    .ok_or_else(|| Error::Exec(format!("hash table {ht_id} not built")))?;
                m.add(&m.join_probe_in, chunk.num_rows() as u64);
                let mut probe_rows = Vec::new();
                let mut build_rows = Vec::new();
                ht.probe(&chunk, key_cols, &mut probe_rows, &mut build_rows);
                let out_n = probe_rows.len();
                ctx.charge(out_n as u64)?;
                m.add(&m.join_output_rows, out_n as u64);
                // logical → physical probe indices
                let phys: Vec<u32> = probe_rows
                    .iter()
                    .map(|&l| chunk.physical_index(l as usize) as u32)
                    .collect();
                let mut cols: Vec<Vector> =
                    chunk.columns.iter().map(|c| c.take(&phys)).collect();
                for &bc in build_output_cols {
                    cols.push(ht.data.columns[bc].take(&build_rows));
                }
                chunk = DataChunk::new(cols);
            }
            OpSpec::SemiProbe { ht_id, key_cols } => {
                let ht = tables
                    .get(*ht_id)
                    .and_then(|t| t.as_ref())
                    .ok_or_else(|| Error::Exec(format!("hash table {ht_id} not built")))?;
                let keep = ht.semi_probe(&chunk, key_cols);
                chunk.refine_selection(&keep);
            }
        }
    }
    if chunk.is_logically_empty() {
        Ok(None)
    } else {
        Ok(Some(chunk))
    }
}

/// Insert the key hashes of a chunk into thread-local Bloom filters
/// (the Sink step of CreateBF / the BloomJoin build side).
fn insert_into_blooms(
    chunk: &DataChunk,
    blooms: &mut [(BloomSink, BloomFilter)],
    ctx: &ExecContext,
) {
    if blooms.is_empty() {
        return;
    }
    let m = &ctx.metrics;
    let t0 = Instant::now();
    for (spec, filter) in blooms.iter_mut() {
        let gathered = gather_keys(chunk, &spec.key_cols);
        let refs: Vec<&Vector> = gathered.iter().collect();
        let hashes = hash_columns(&refs, chunk.num_rows());
        for h in hashes {
            if h != u64::MAX {
                filter.insert_hash(h);
            }
        }
    }
    m.add(&m.bloom_nanos, t0.elapsed().as_nanos() as u64);
    m.add(
        &m.bloom_build_rows,
        chunk.num_rows() as u64 * blooms.len() as u64,
    );
}

/// Thread-local sink state (the `Sink`/`Combine`/`Finalize` triple).
enum SinkState {
    Buffer {
        buf_id: usize,
        buf: SpillBuffer,
        blooms: Vec<(BloomSink, BloomFilter)>,
        rows: u64,
    },
    HashBuild {
        ht_id: usize,
        key_cols: Vec<usize>,
        blooms: Vec<(BloomSink, BloomFilter)>,
        chunks: Vec<DataChunk>,
        schema: Schema,
        rows: u64,
    },
    Aggregate {
        buf_id: usize,
        state: Option<AggregateState>,
        output_schema: Schema,
        rows: u64,
    },
}

impl SinkState {
    fn new(p: &PipelinePlan, ctx: &ExecContext) -> Result<SinkState> {
        Ok(match &p.sink {
            SinkSpec::Buffer { buf_id, blooms } => {
                let per_thread_limit = ctx
                    .spill_limit_bytes
                    .map(|l| (l / ctx.threads).max(1))
                    .unwrap_or(usize::MAX);
                let buf = SpillBuffer::new(
                    p.sink_schema.clone(),
                    per_thread_limit,
                    ctx.spill_dir.clone(),
                );
                let blooms = blooms
                    .iter()
                    .map(|b| {
                        (
                            b.clone(),
                            BloomFilter::with_capacity(b.expected_keys, b.fpr),
                        )
                    })
                    .collect();
                SinkState::Buffer {
                    buf_id: *buf_id,
                    buf,
                    blooms,
                    rows: 0,
                }
            }
            SinkSpec::HashBuild {
                ht_id,
                key_cols,
                blooms,
            } => SinkState::HashBuild {
                ht_id: *ht_id,
                key_cols: key_cols.clone(),
                blooms: blooms
                    .iter()
                    .map(|b| {
                        (
                            b.clone(),
                            BloomFilter::with_capacity(b.expected_keys, b.fpr),
                        )
                    })
                    .collect(),
                chunks: Vec::new(),
                schema: p.sink_schema.clone(),
                rows: 0,
            },
            SinkSpec::Aggregate {
                buf_id,
                group_cols,
                aggs,
                input_types,
                output_schema,
            } => SinkState::Aggregate {
                buf_id: *buf_id,
                state: Some(AggregateState::new(
                    group_cols.clone(),
                    aggs.clone(),
                    input_types,
                )?),
                output_schema: output_schema.clone(),
                rows: 0,
            },
        })
    }

    fn sink(&mut self, chunk: DataChunk, ctx: &ExecContext) -> Result<()> {
        let n = chunk.num_rows() as u64;
        let m = &ctx.metrics;
        match self {
            SinkState::Buffer {
                buf, blooms, rows, ..
            } => {
                insert_into_blooms(&chunk, blooms, ctx);
                buf.push(chunk)?;
                *rows += n;
            }
            SinkState::HashBuild {
                chunks,
                blooms,
                rows,
                ..
            } => {
                insert_into_blooms(&chunk, blooms, ctx);
                m.add(&m.hash_build_rows, n);
                chunks.push(chunk.flattened());
                *rows += n;
            }
            SinkState::Aggregate { state, rows, .. } => {
                state
                    .as_mut()
                    .expect("aggregate state consumed")
                    .update(&chunk)?;
                *rows += n;
            }
        }
        Ok(())
    }

    fn combine(&mut self, other: SinkState) -> Result<()> {
        match (self, other) {
            (
                SinkState::Buffer {
                    buf, blooms, rows, ..
                },
                SinkState::Buffer {
                    buf: obuf,
                    blooms: oblooms,
                    rows: orows,
                    ..
                },
            ) => {
                for c in obuf.into_chunks()? {
                    buf.push(c)?;
                }
                for ((_, f), (_, of)) in blooms.iter_mut().zip(oblooms.iter()) {
                    f.merge(of).map_err(Error::Exec)?;
                }
                *rows += orows;
            }
            (
                SinkState::HashBuild {
                    chunks,
                    blooms,
                    rows,
                    ..
                },
                SinkState::HashBuild {
                    chunks: ochunks,
                    blooms: oblooms,
                    rows: orows,
                    ..
                },
            ) => {
                chunks.extend(ochunks);
                for ((_, f), (_, of)) in blooms.iter_mut().zip(oblooms.iter()) {
                    f.merge(of).map_err(Error::Exec)?;
                }
                *rows += orows;
            }
            (
                SinkState::Aggregate { state, rows, .. },
                SinkState::Aggregate {
                    state: ostate,
                    rows: orows,
                    ..
                },
            ) => {
                state
                    .as_mut()
                    .expect("aggregate state consumed")
                    .merge(ostate.expect("other aggregate state consumed"));
                *rows += orows;
            }
            _ => return Err(Error::Exec("combining mismatched sink states".into())),
        }
        Ok(())
    }

    fn rows(&self) -> u64 {
        match self {
            SinkState::Buffer { rows, .. }
            | SinkState::HashBuild { rows, .. }
            | SinkState::Aggregate { rows, .. } => *rows,
        }
    }

    fn finalize(self, exec: &mut Executor) -> Result<()> {
        match self {
            SinkState::Buffer {
                buf_id,
                buf,
                blooms,
                ..
            } => {
                exec.buffers[buf_id] = Some(Arc::new(buf.into_chunks()?));
                for (spec, filter) in blooms {
                    exec.filters[spec.filter_id] = Some(Arc::new(filter));
                }
            }
            SinkState::HashBuild {
                ht_id,
                key_cols,
                blooms,
                chunks,
                schema,
                ..
            } => {
                // An empty build side must still carry its column arity so
                // probe-side output chunks have the right shape.
                let table = if chunks.is_empty() {
                    JoinHashTable::build(&[DataChunk::empty_like(&schema)], key_cols)?
                } else {
                    JoinHashTable::build(&chunks, key_cols)?
                };
                exec.tables[ht_id] = Some(Arc::new(table));
                for (spec, filter) in blooms {
                    exec.filters[spec.filter_id] = Some(Arc::new(filter));
                }
            }
            SinkState::Aggregate {
                buf_id,
                state,
                output_schema,
                ..
            } => {
                let out = state
                    .expect("aggregate state consumed")
                    .finalize(&output_schema)?;
                exec.buffers[buf_id] = Some(Arc::new(vec![out]));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use rpt_common::{Field, ScalarValue};

    fn table(name: &str, ids: Vec<i64>, vals: Vec<i64>) -> Arc<Table> {
        Arc::new(
            Table::new(
                name,
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ]),
                vec![Vector::from_i64(ids), Vector::from_i64(vals)],
            )
            .unwrap(),
        )
    }

    fn collect_pipeline(
        src: SourceSpec,
        ops: Vec<OpSpec>,
        buf_id: usize,
        schema: Schema,
    ) -> PipelinePlan {
        PipelinePlan {
            label: "collect".into(),
            source: src,
            ops,
            sink: SinkSpec::Buffer {
                buf_id,
                blooms: vec![],
            },
            intermediate: false,
            sink_schema: schema,
        }
    }

    fn two_col_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
        ])
    }

    #[test]
    fn scan_filter_collect() {
        let t = table("t", (0..10).collect(), (0..10).map(|x| x * 2).collect());
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 0);
        let p = collect_pipeline(
            SourceSpec::Table(t),
            vec![OpSpec::Filter(Expr::cmp(
                CmpOp::Gt,
                Expr::col(0),
                Expr::lit(ScalarValue::Int64(6)),
            ))],
            0,
            two_col_schema(),
        );
        exec.run(&[p]).unwrap();
        assert_eq!(exec.buffer_rows(0), 3);
        let chunks = exec.buffer(0).unwrap();
        assert_eq!(chunks[0].value(0, 0), ScalarValue::Int64(7));
    }

    #[test]
    fn hash_join_two_pipelines() {
        let build = table("b", vec![1, 2, 3], vec![100, 200, 300]);
        let probe = table("p", vec![2, 2, 3, 9], vec![-1, -2, -3, -4]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 1);
        let p1 = PipelinePlan {
            label: "build".into(),
            source: SourceSpec::Table(build),
            ops: vec![],
            sink: SinkSpec::HashBuild {
                ht_id: 0,
                key_cols: vec![0],
                blooms: vec![],
            },
            intermediate: true,
            sink_schema: two_col_schema(),
        };
        let p2 = collect_pipeline(
            SourceSpec::Table(probe),
            vec![OpSpec::JoinProbe {
                ht_id: 0,
                key_cols: vec![0],
                build_output_cols: vec![1],
            }],
            0,
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Int64),
                Field::new("bv", DataType::Int64),
            ]),
        );
        exec.run(&[p1, p2]).unwrap();
        assert_eq!(exec.buffer_rows(0), 3); // 2,2,3 match
        let s = exec.ctx.metrics.summary();
        assert_eq!(s.join_output_rows, 3);
        assert_eq!(s.hash_build_rows, 3);
        assert_eq!(s.intermediate_tuples, 3);
        assert_eq!(s.output_rows, 3);
        // joined values present
        let chunks = exec.buffer(0).unwrap();
        let mut joined: Vec<(i64, i64)> = chunks
            .iter()
            .flat_map(|c| {
                c.rows().into_iter().map(|r| {
                    (r[0].as_i64().unwrap(), r[2].as_i64().unwrap())
                })
            })
            .collect();
        joined.sort_unstable();
        assert_eq!(joined, vec![(2, 200), (2, 200), (3, 300)]);
    }

    #[test]
    fn create_and_probe_bloom() {
        let small = table("s", vec![5, 6], vec![0, 0]);
        let big = table("b", (0..100).collect(), (0..100).collect());
        let mut exec = Executor::new(ExecContext::new(), 2, 1, 0);
        // Pipeline 1: CreateBF over `small` on id.
        let p1 = PipelinePlan {
            label: "createbf s".into(),
            source: SourceSpec::Table(small),
            ops: vec![],
            sink: SinkSpec::Buffer {
                buf_id: 0,
                blooms: vec![BloomSink {
                    filter_id: 0,
                    key_cols: vec![0],
                    expected_keys: 2,
                    fpr: 0.02,
                }],
            },
            intermediate: true,
            sink_schema: two_col_schema(),
        };
        // Pipeline 2: scan big, ProbeBF, collect.
        let p2 = collect_pipeline(
            SourceSpec::Table(big),
            vec![OpSpec::ProbeBloom {
                filter_id: 0,
                key_cols: vec![0],
            }],
            1,
            two_col_schema(),
        );
        exec.run(&[p1, p2]).unwrap();
        let survivors = exec.buffer_rows(1);
        // No false negatives: both 5 and 6 survive; FPR 2% on 98 others →
        // allow a little slack.
        assert!((2..=8).contains(&survivors), "survivors = {survivors}");
        let s = exec.ctx.metrics.summary();
        assert_eq!(s.bloom_probe_in, 100);
        assert_eq!(s.bloom_build_rows, 2);
        assert!(s.bloom_nanos > 0);
    }

    #[test]
    fn aggregate_pipeline() {
        let t = table("t", vec![1, 1, 2, 2, 2], vec![10, 20, 30, 40, 50]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 0);
        let p = PipelinePlan {
            label: "agg".into(),
            source: SourceSpec::Table(t),
            ops: vec![],
            sink: SinkSpec::Aggregate {
                buf_id: 0,
                group_cols: vec![0],
                aggs: vec![AggExpr {
                    func: crate::expr::AggFunc::Sum,
                    input: Some(Expr::col(1)),
                    alias: "s".into(),
                }],
                input_types: vec![DataType::Int64, DataType::Int64],
                output_schema: Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("s", DataType::Int64),
                ]),
            },
            intermediate: false,
            sink_schema: two_col_schema(),
        };
        exec.run(&[p]).unwrap();
        let chunks = exec.buffer(0).unwrap();
        assert_eq!(chunks[0].num_rows(), 2);
        assert_eq!(chunks[0].value(1, 0), ScalarValue::Int64(30));
        assert_eq!(chunks[0].value(1, 1), ScalarValue::Int64(120));
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let ids: Vec<i64> = (0..20_000).map(|i| i % 97).collect();
        let vals: Vec<i64> = (0..20_000).collect();
        let t1 = table("t", ids.clone(), vals.clone());
        let t4 = table("t", ids, vals);
        let run = |t: Arc<Table>, threads: usize| -> i64 {
            let mut exec = Executor::new(
                ExecContext::new().with_threads(threads),
                1,
                0,
                0,
            );
            let p = PipelinePlan {
                label: "agg".into(),
                source: SourceSpec::Table(t),
                ops: vec![OpSpec::Filter(Expr::cmp(
                    CmpOp::Lt,
                    Expr::col(0),
                    Expr::lit(ScalarValue::Int64(50)),
                ))],
                sink: SinkSpec::Aggregate {
                    buf_id: 0,
                    group_cols: vec![],
                    aggs: vec![AggExpr {
                        func: crate::expr::AggFunc::Sum,
                        input: Some(Expr::col(1)),
                        alias: "s".into(),
                    }],
                    input_types: vec![DataType::Int64, DataType::Int64],
                    output_schema: Schema::new(vec![Field::new("s", DataType::Int64)]),
                },
                intermediate: false,
                sink_schema: two_col_schema(),
            };
            exec.run(&[p]).unwrap();
            let chunks = exec.buffer(0).unwrap();
            chunks[0].value(0, 0).as_i64().unwrap()
        };
        assert_eq!(run(t1, 1), run(t4, 4));
    }

    #[test]
    fn budget_aborts_blowup() {
        // Cross-product-like blowup: every probe row matches every build row.
        let build = table("b", vec![7; 1000], (0..1000).collect());
        let probe = table("p", vec![7; 1000], (0..1000).collect());
        let ctx = ExecContext::new().with_budget(10_000);
        let mut exec = Executor::new(ctx, 1, 0, 1);
        let p1 = PipelinePlan {
            label: "build".into(),
            source: SourceSpec::Table(build),
            ops: vec![],
            sink: SinkSpec::HashBuild {
                ht_id: 0,
                key_cols: vec![0],
                blooms: vec![],
            },
            intermediate: true,
            sink_schema: two_col_schema(),
        };
        let p2 = collect_pipeline(
            SourceSpec::Table(probe),
            vec![OpSpec::JoinProbe {
                ht_id: 0,
                key_cols: vec![0],
                build_output_cols: vec![1],
            }],
            0,
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Int64),
                Field::new("bv", DataType::Int64),
            ]),
        );
        let err = exec.run(&[p1, p2]).unwrap_err();
        assert!(err.is_budget(), "expected budget abort, got {err}");
    }

    #[test]
    fn semi_probe_reduces_without_duplication() {
        let source = table("s", vec![1, 1, 2], vec![0, 0, 0]);
        let target = table("t", vec![1, 2, 3, 1], vec![9, 9, 9, 9]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 1);
        let p1 = PipelinePlan {
            label: "build".into(),
            source: SourceSpec::Table(source),
            ops: vec![],
            sink: SinkSpec::HashBuild {
                ht_id: 0,
                key_cols: vec![0],
                blooms: vec![],
            },
            intermediate: true,
            sink_schema: two_col_schema(),
        };
        let p2 = collect_pipeline(
            SourceSpec::Table(target),
            vec![OpSpec::SemiProbe {
                ht_id: 0,
                key_cols: vec![0],
            }],
            0,
            two_col_schema(),
        );
        exec.run(&[p1, p2]).unwrap();
        assert_eq!(exec.buffer_rows(0), 3); // rows with keys 1,2,1 (3 excluded)
    }

    #[test]
    fn buffer_as_source_chains_pipelines() {
        let t = table("t", (0..10).collect(), (0..10).collect());
        let mut exec = Executor::new(ExecContext::new(), 2, 0, 0);
        let p1 = collect_pipeline(SourceSpec::Table(t), vec![], 0, two_col_schema());
        let p2 = collect_pipeline(
            SourceSpec::Buffer(0),
            vec![OpSpec::Filter(Expr::cmp(
                CmpOp::Lt,
                Expr::col(0),
                Expr::lit(ScalarValue::Int64(3)),
            ))],
            1,
            two_col_schema(),
        );
        exec.run(&[p1, p2]).unwrap();
        assert_eq!(exec.buffer_rows(1), 3);
    }

    #[test]
    fn spill_enabled_buffer_roundtrips() {
        let dir = std::env::temp_dir().join("rpt_exec_spill_test");
        let t = table("t", (0..5000).collect(), (0..5000).collect());
        let ctx = ExecContext::new().with_spill(1024, &dir); // tiny cap
        let mut exec = Executor::new(ctx, 1, 0, 0);
        let p = collect_pipeline(SourceSpec::Table(t), vec![], 0, two_col_schema());
        exec.run(&[p]).unwrap();
        assert_eq!(exec.buffer_rows(0), 5000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn projection_computes_expressions() {
        let t = table("t", vec![1, 2], vec![10, 20]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 0);
        let p = collect_pipeline(
            SourceSpec::Table(t),
            vec![OpSpec::Project(vec![Expr::Arith {
                op: crate::expr::ArithOp::Add,
                left: Box::new(Expr::col(0)),
                right: Box::new(Expr::col(1)),
            }])],
            0,
            Schema::new(vec![Field::new("sum", DataType::Int64)]),
        );
        exec.run(&[p]).unwrap();
        let chunks = exec.buffer(0).unwrap();
        assert_eq!(chunks[0].value(0, 1), ScalarValue::Int64(22));
    }
}
