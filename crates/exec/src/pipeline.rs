//! Pipeline specs, lowering, and the push-based pipeline driver.
//!
//! A query compiles into [`PipelinePlan`]s, mirroring DuckDB's execution
//! model (§4.1, Figure 3): each pipeline pulls chunks from its *source*,
//! pushes them through streaming *operators*, and terminates at a *sink*
//! (a pipeline breaker). The RPT integration (§4.2, §4.3, Figure 5) adds
//! the CreateBF sink and the ProbeBF streaming operator.
//!
//! The enums here ([`SourceSpec`], [`OpSpec`], [`SinkSpec`]) are a thin
//! declarative layer: [`PipelinePlan::lower`] turns a spec into a
//! [`PhysicalPipeline`] of trait objects from [`crate::operators`], which
//! is what [`run_physical`] executes. Multi-threaded execution is
//! morsel-driven: workers claim source chunks from an atomic counter,
//! maintain thread-local sink state (`Sink`), and the driver merges
//! (`Combine`) and publishes (`Finalize`). Pipelines themselves are
//! ordered by the DAG scheduler in [`crate::scheduler`] based on the
//! resources they read and write.

use crate::context::ExecContext;
use crate::expr::{AggExpr, Expr};
use crate::hash_table::PartitionedHashTable;
use crate::operators::{
    aggregate::AggregateFactory, buffer::BufferSinkFactory, hash_build::HashBuildFactory,
    BufferScan, Filter, JoinProbe, Operator, ProbeBloom, Project, ResourceId, Resources, ScanPrune,
    SemiProbe, SinkFactory, Source, TableScan,
};
use rpt_bloom::BloomFilter;
use rpt_common::{DataChunk, DataType, Error, Result, Schema};
use rpt_storage::Table;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub use crate::operators::create_bf::BloomSink;

/// Where a pipeline reads its chunks from.
#[derive(Clone)]
pub enum SourceSpec {
    /// Scan an in-memory table.
    Table(Arc<Table>),
    /// Scan an in-memory table with planner-recorded block-pruning
    /// opportunities: zone-map-checkable literal conjuncts of the pushed
    /// filter plus transferred Bloom filters whose key range can rule out
    /// whole blocks ([`ScanPrune`]).
    Scan { table: Arc<Table>, prune: ScanPrune },
    /// Read the materialized output of an earlier pipeline (e.g. a
    /// `CreateBF` buffer acting as a source).
    Buffer(usize),
}

impl SourceSpec {
    /// Lower onto the operator trait layer.
    pub fn lower(&self) -> Box<dyn Source> {
        match self {
            SourceSpec::Table(t) => Box::new(TableScan::new(t.clone())),
            SourceSpec::Scan { table, prune } => {
                Box::new(TableScan::with_prune(table.clone(), prune.clone()))
            }
            SourceSpec::Buffer(id) => Box::new(BufferScan::new(*id)),
        }
    }
}

/// A streaming (non-breaking) operator.
#[derive(Clone)]
pub enum OpSpec {
    /// Refine the selection with a predicate.
    Filter(Expr),
    /// Replace the chunk with evaluated expressions (flattens).
    Project(Vec<Expr>),
    /// ProbeBF: drop rows whose key misses the Bloom filter.
    ProbeBloom {
        filter_id: usize,
        key_cols: Vec<usize>,
    },
    /// Hash-join probe against a built table; appends the listed build-side
    /// columns to the chunk. One output row per match (duplicating).
    JoinProbe {
        ht_id: usize,
        key_cols: Vec<usize>,
        build_output_cols: Vec<usize>,
    },
    /// Exact semi-join probe (Yannakakis reducer): keep rows with ≥1 match.
    SemiProbe { ht_id: usize, key_cols: Vec<usize> },
}

impl OpSpec {
    /// Lower onto the operator trait layer.
    pub fn lower(&self) -> Box<dyn Operator> {
        match self {
            OpSpec::Filter(e) => Box::new(Filter::new(e.clone())),
            OpSpec::Project(exprs) => Box::new(Project::new(exprs.clone())),
            OpSpec::ProbeBloom {
                filter_id,
                key_cols,
            } => Box::new(ProbeBloom::new(*filter_id, key_cols.clone())),
            OpSpec::JoinProbe {
                ht_id,
                key_cols,
                build_output_cols,
            } => Box::new(JoinProbe::new(
                *ht_id,
                key_cols.clone(),
                build_output_cols.clone(),
            )),
            OpSpec::SemiProbe { ht_id, key_cols } => {
                Box::new(SemiProbe::new(*ht_id, key_cols.clone()))
            }
        }
    }
}

/// Pipeline-terminating operator.
#[derive(Clone)]
pub enum SinkSpec {
    /// Materialize chunks into buffer `buf_id`, building the requested
    /// Bloom filters along the way (CreateBF). With an empty `blooms` list
    /// this is a plain collect sink.
    Buffer {
        buf_id: usize,
        blooms: Vec<BloomSink>,
    },
    /// Build a join hash table keyed on `key_cols`. `blooms` optionally
    /// builds Bloom filters over the same stream — this is how the BloomJoin
    /// baseline (§6.1) attaches a filter to each hash-join build side.
    HashBuild {
        ht_id: usize,
        key_cols: Vec<usize>,
        blooms: Vec<BloomSink>,
    },
    /// Hash aggregation; result goes to buffer `buf_id`.
    Aggregate {
        buf_id: usize,
        group_cols: Vec<usize>,
        aggs: Vec<AggExpr>,
        input_types: Vec<DataType>,
        output_schema: Schema,
        /// Per *input column*: the table dictionary of a dictionary-coded
        /// `Utf8` column (planner-attached), which lets a string group key
        /// pack its codes into the fixed-width fast path. Empty = none.
        key_dicts: Vec<Option<Arc<rpt_common::Utf8Dict>>>,
    },
    /// Partitioned sort / TopK over the incoming stream (`ORDER BY`
    /// [`LIMIT n [OFFSET k]`]); the globally ordered result goes to buffer
    /// `buf_id`. `keys` index the sink-input columns; a present `limit`
    /// bounds every partition run at `limit + offset` rows (TopK).
    Sort {
        buf_id: usize,
        keys: Vec<crate::operators::SortKey>,
        limit: Option<usize>,
        offset: usize,
    },
}

impl SinkSpec {
    /// Lower onto the operator trait layer; `sink_schema` is the schema of
    /// chunks entering the sink (needed for spill files and empty builds).
    pub fn lower(&self, sink_schema: &Schema) -> Box<dyn SinkFactory> {
        match self {
            SinkSpec::Buffer { buf_id, blooms } => Box::new(BufferSinkFactory::new(
                *buf_id,
                sink_schema.clone(),
                blooms.clone(),
            )),
            SinkSpec::HashBuild {
                ht_id,
                key_cols,
                blooms,
            } => Box::new(HashBuildFactory::new(
                *ht_id,
                key_cols.clone(),
                sink_schema.clone(),
                blooms.clone(),
            )),
            SinkSpec::Aggregate {
                buf_id,
                group_cols,
                aggs,
                input_types,
                output_schema,
                key_dicts,
            } => Box::new(AggregateFactory::new(
                *buf_id,
                group_cols.clone(),
                aggs.clone(),
                input_types.clone(),
                output_schema.clone(),
                key_dicts.clone(),
            )),
            SinkSpec::Sort {
                buf_id,
                keys,
                limit,
                offset,
            } => Box::new(crate::operators::SortSinkFactory::new(
                *buf_id,
                keys.clone(),
                *limit,
                *offset,
                sink_schema.clone(),
            )),
        }
    }
}

/// How a pipeline's sink routes incoming rows onto its hash partitions.
///
/// `Radix` is the general case: the sink hashes its key columns and
/// radix-scatters every chunk across `partition_count` runs. `Preserve` is
/// the *repartition elision* fast path the planner selects when the source
/// buffer is already distributed on the sink's key layout: the driver reads
/// the source partition-by-partition and hands whole partition-`p` chunks
/// to [`crate::operators::Sink::sink_part`], skipping the hash + scatter
/// entirely (counted in `Metrics::repartition_elided_chunks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteMode {
    /// Hash the sink keys and radix-scatter rows (always correct).
    #[default]
    Radix,
    /// Feed whole partition-`p` chunks straight into partition-`p` state.
    Preserve,
}

/// One pipeline: source → ops → sink.
#[derive(Clone)]
pub struct PipelinePlan {
    /// Human-readable label (shows up in the metrics trace / case studies).
    pub label: String,
    pub source: SourceSpec,
    pub ops: Vec<OpSpec>,
    pub sink: SinkSpec,
    /// Whether rows into this sink count toward `intermediate_tuples`.
    /// (True for everything except the final output collect.)
    pub intermediate: bool,
    /// Schema of chunks entering the sink (needed for buffer spill files).
    pub sink_schema: Schema,
    /// Sink routing mode; `Preserve` only when the planner proved the
    /// source distribution matches the sink's required distribution.
    pub route: RouteMode,
}

impl PipelinePlan {
    /// Lower the spec onto the operator trait layer.
    pub fn lower(&self) -> PhysicalPipeline {
        PhysicalPipeline {
            label: self.label.clone(),
            source: self.source.lower(),
            ops: self.ops.iter().map(OpSpec::lower).collect(),
            sink: self.sink.lower(&self.sink_schema),
            intermediate: self.intermediate,
            route: self.route,
        }
    }

    /// Read/write resource sets, derived from one lowering of the
    /// operator layer. Use this (not separate `reads`/`writes` calls) so
    /// the spec is lowered only once per dependency query.
    pub fn node_deps(&self) -> crate::scheduler::NodeDeps {
        let phys = self.lower();
        crate::scheduler::NodeDeps {
            reads: phys.reads(),
            writes: phys.writes(),
        }
    }
}

/// A lowered pipeline: trait objects ready for the driver.
pub struct PhysicalPipeline {
    pub label: String,
    pub source: Box<dyn Source>,
    pub ops: Vec<Box<dyn Operator>>,
    pub sink: Box<dyn SinkFactory>,
    pub intermediate: bool,
    pub route: RouteMode,
}

impl PhysicalPipeline {
    /// Resources read by the source and the streaming operators.
    pub fn reads(&self) -> Vec<ResourceId> {
        let mut r = self.source.reads();
        for op in &self.ops {
            r.extend(op.reads());
        }
        r.sort_unstable();
        r.dedup();
        r
    }

    /// Resources published by the sink.
    pub fn writes(&self) -> Vec<ResourceId> {
        self.sink.writes()
    }
}

/// Push one chunk through a pipeline's operator chain. `None` = the chunk
/// was filtered to nothing (short-circuits the remaining operators).
pub(crate) fn push_through(
    ops: &[Box<dyn Operator>],
    mut chunk: DataChunk,
    ctx: &ExecContext,
    res: &Resources,
) -> Result<Option<DataChunk>> {
    for op in ops {
        if chunk.is_logically_empty() {
            return Ok(None);
        }
        match op.execute(chunk, ctx, res)? {
            Some(out) => chunk = out,
            None => return Ok(None),
        }
    }
    if chunk.is_logically_empty() {
        Ok(None)
    } else {
        Ok(Some(chunk))
    }
}

/// Record the pipeline's row metrics once every worker state is collected.
pub(crate) fn record_pipeline_rows(
    p: &PhysicalPipeline,
    states: &[Box<dyn crate::operators::Sink>],
    ctx: &ExecContext,
) -> u64 {
    let rows: u64 = states.iter().map(|s| s.rows()).sum();
    let m = &ctx.metrics;
    if p.intermediate {
        m.add(&m.intermediate_tuples, rows);
    } else {
        m.add(&m.output_rows, rows);
    }
    m.record_pipeline(&p.label, rows);
    rows
}

/// Serial `Combine` + `Finalize` of the collected worker states
/// (unpartitioned sinks).
pub(crate) fn combine_finalize(
    states: Vec<Box<dyn crate::operators::Sink>>,
    res: &Resources,
) -> Result<()> {
    let mut iter = states.into_iter();
    let mut merged = iter.next().expect("at least one sink state");
    for s in iter {
        merged.combine(s)?;
    }
    merged.finalize(res)
}

/// What the morsel workers hand over to the merge phase. The *last* morsel
/// worker to finish prepares this; every worker then claims partition
/// merge tasks from it — the same scoped threads run both phases, no fresh
/// thread scope is spawned for the merge.
enum MergePhase {
    /// Serial sink (or error): nothing left for the workers to do.
    Done,
    /// Partitioned sink: claim partitions from `next_part`.
    Merge(Arc<Box<dyn crate::operators::PartitionMerger>>),
}

struct PipelineShared {
    states: Mutex<Vec<Box<dyn crate::operators::Sink>>>,
    /// Morsel workers still running; the one that drops this to zero
    /// prepares the merge phase.
    remaining: AtomicUsize,
    phase: Mutex<Option<MergePhase>>,
    phase_ready: Condvar,
    next_part: AtomicUsize,
    failed: AtomicBool,
    error: Mutex<Option<rpt_common::Error>>,
}

impl PipelineShared {
    fn fail(&self, e: rpt_common::Error) {
        self.failed.store(true, Ordering::Release);
        let mut slot = self.error.lock().expect("pipeline error lock poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

/// Execute one lowered pipeline: morsel-parallel Sink, then the merge —
/// per-partition tasks claimed by the *same* workers for partitioned
/// sinks, serial Combine + Finalize otherwise.
pub fn run_physical(p: &PhysicalPipeline, ctx: &ExecContext, res: &Resources) -> Result<()> {
    // `Preserve` route (repartition elision): read the source partition by
    // partition so whole partition-`p` chunks can be fed straight into the
    // sink's partition-`p` state. `chunk_parts[i]` is chunk `i`'s hash
    // partition; partitions concatenate in order, so the flat list equals
    // `source.chunks()` row-for-row and the serial path stays
    // bit-deterministic.
    let preserve = p.route == RouteMode::Preserve;
    if preserve && p.source.partitioned_input().is_none() {
        return Err(Error::Exec(
            "Preserve route requires a partitioned source".into(),
        ));
    }
    let (chunks, chunk_parts): (Arc<crate::operators::ChunkList>, Option<Vec<usize>>) = if preserve
    {
        let mut flat = Vec::new();
        let mut parts = Vec::new();
        for part in 0..ctx.partition_count.max(1) {
            for c in p.source.partition_chunks(ctx, res, part)?.iter() {
                flat.push(c.clone());
                parts.push(part);
            }
        }
        (Arc::new(flat), Some(parts))
    } else {
        (p.source.chunks(ctx, res)?, None)
    };
    // The same workers later claim the per-partition merge tasks, so a
    // partitioned sink sizes the scope for whichever phase is wider — a
    // one-chunk source must not serialize an 8-partition merge.
    let threads = if p.sink.partitioned_merge(ctx) {
        ctx.threads
            .min(chunks.len().max(ctx.partition_count))
            .max(1)
    } else {
        ctx.threads.min(chunks.len()).max(1)
    };

    if threads == 1 {
        let mut state = p.sink.make(ctx)?;
        for (i, c) in chunks.iter().enumerate() {
            ctx.charge(c.num_rows() as u64)?;
            if let Some(out) = push_through(&p.ops, c.as_ref().clone(), ctx, res)? {
                match &chunk_parts {
                    Some(parts) => state.sink_part(out, parts[i], ctx)?,
                    None => state.sink(out, ctx)?,
                }
            }
        }
        let states = vec![state];
        record_pipeline_rows(p, &states, ctx);
        if p.sink.partitioned_merge(ctx) {
            return p.sink.merge_partitioned(&p.label, states, ctx, res);
        }
        return combine_finalize(states, res);
    }

    let next = AtomicUsize::new(0);
    let shared = PipelineShared {
        states: Mutex::new(Vec::with_capacity(threads)),
        remaining: AtomicUsize::new(threads),
        phase: Mutex::new(None),
        phase_ready: Condvar::new(),
        next_part: AtomicUsize::new(0),
        failed: AtomicBool::new(false),
        error: Mutex::new(None),
    };
    let merger_out: OnceLock<Arc<Box<dyn crate::operators::PartitionMerger>>> = OnceLock::new();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Phase 1: claim morsels into a thread-local sink state.
                // Panics are contained (→ `fail`) so the barrier below is
                // always reached and peers never block forever.
                let morsels =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<()> {
                        let mut state = p.sink.make(ctx)?;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= chunks.len() || shared.failed.load(Ordering::Acquire) {
                                break;
                            }
                            ctx.charge(chunks[i].num_rows() as u64)?;
                            if let Some(out) =
                                push_through(&p.ops, chunks[i].as_ref().clone(), ctx, res)?
                            {
                                match &chunk_parts {
                                    Some(parts) => state.sink_part(out, parts[i], ctx)?,
                                    None => state.sink(out, ctx)?,
                                }
                            }
                        }
                        shared
                            .states
                            .lock()
                            .expect("pipeline states lock poisoned")
                            .push(state);
                        Ok(())
                    }))
                    .unwrap_or_else(|_| {
                        Err(rpt_common::Error::Exec("pipeline worker panicked".into()))
                    });
                if let Err(e) = morsels {
                    shared.fail(e);
                }

                // Barrier: the last worker decides the merge phase (again
                // panic-contained — an undecided phase would strand peers).
                if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let decided = if shared.failed.load(Ordering::Acquire) {
                        MergePhase::Done
                    } else {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let states = std::mem::take(
                                &mut *shared.states.lock().expect("pipeline states lock poisoned"),
                            );
                            record_pipeline_rows(p, &states, ctx);
                            if p.sink.partitioned_merge(ctx) {
                                match p.sink.make_merger(states, ctx) {
                                    Ok(m) => {
                                        let m = Arc::new(m);
                                        let _ = merger_out.set(m.clone());
                                        MergePhase::Merge(m)
                                    }
                                    Err(e) => {
                                        shared.fail(e);
                                        MergePhase::Done
                                    }
                                }
                            } else {
                                if let Err(e) = combine_finalize(states, res) {
                                    shared.fail(e);
                                }
                                MergePhase::Done
                            }
                        }))
                        .unwrap_or_else(|_| {
                            shared.fail(rpt_common::Error::Exec(
                                "pipeline merge setup panicked".into(),
                            ));
                            MergePhase::Done
                        })
                    };
                    *shared.phase.lock().expect("pipeline phase lock poisoned") = Some(decided);
                    shared.phase_ready.notify_all();
                }

                // Phase 2: every worker claims partition merge tasks.
                let merger = {
                    let mut phase = shared.phase.lock().expect("pipeline phase lock poisoned");
                    while phase.is_none() {
                        phase = shared
                            .phase_ready
                            .wait(phase)
                            .expect("pipeline phase lock poisoned");
                    }
                    match phase.as_ref().expect("phase just checked") {
                        MergePhase::Done => return,
                        MergePhase::Merge(m) => m.clone(),
                    }
                };
                loop {
                    let q = shared.next_part.fetch_add(1, Ordering::Relaxed);
                    if q >= merger.partitions() || shared.failed.load(Ordering::Acquire) {
                        break;
                    }
                    let merged = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        merger.merge_partition(q, ctx, res)
                    }))
                    .unwrap_or_else(|_| Err(rpt_common::Error::Exec("merge task panicked".into())));
                    if let Err(e) = merged {
                        shared.fail(e);
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = shared
        .error
        .lock()
        .expect("pipeline error lock poisoned")
        .take()
    {
        return Err(e);
    }
    if let Some(merger) = merger_out.get() {
        merger.finish(ctx, res)?;
        ctx.metrics
            .record_merge(&p.label, merger.partitions() as u64, merger.max_task_rows());
    }
    Ok(())
}

/// Executor state shared across a query's pipelines: the execution context
/// plus the write-once resource slots.
pub struct Executor {
    pub ctx: ExecContext,
    res: Arc<Resources>,
}

impl Executor {
    pub fn new(
        ctx: ExecContext,
        num_buffers: usize,
        num_filters: usize,
        num_tables: usize,
    ) -> Self {
        let mut res =
            Resources::with_partitions(num_buffers, num_filters, num_tables, ctx.partition_count);
        if ctx.verify.enabled() {
            // Verify mode: shadow-log every resource access so the driver
            // can reconcile observed accesses against the declared deps.
            res = res.with_access_log();
        }
        Executor {
            ctx,
            res: Arc::new(res),
        }
    }

    /// The shared resource slots.
    pub fn resources(&self) -> &Resources {
        &self.res
    }

    /// Execute pipelines sequentially, in the given order.
    pub fn run(&mut self, pipelines: &[PipelinePlan]) -> Result<()> {
        for p in pipelines {
            let phys = p.lower();
            run_physical(&phys, &self.ctx, &self.res)?;
        }
        Ok(())
    }

    /// Execute pipelines as a dependency DAG: pipelines whose read sets
    /// don't overlap other pipelines' write sets run concurrently. Derives
    /// the read/write sets from the pipelines and delegates to
    /// [`Executor::run_dag_with_deps`] — there is exactly one execution
    /// path per [`crate::context::SchedulerKind`].
    pub fn run_dag(
        &mut self,
        pipelines: &[PipelinePlan],
        max_concurrent: usize,
    ) -> Result<crate::scheduler::SchedulerStats> {
        let deps: Vec<crate::scheduler::NodeDeps> =
            pipelines.iter().map(PipelinePlan::node_deps).collect();
        self.run_dag_with_deps(pipelines, &deps, max_concurrent)
    }

    /// [`Executor::run_dag`] with caller-supplied read/write sets (the
    /// planner's `PhysicalPlan` records them at compile time).
    ///
    /// Dispatches on `ctx.scheduler`: the default [`SchedulerKind::Global`]
    /// runs every pipeline's morsel and merge tasks on one worker pool of
    /// `ctx.workers` threads with partition-granular readiness
    /// (`max_concurrent` is ignored — the pool *is* the concurrency cap);
    /// [`SchedulerKind::Scoped`] keeps the legacy two-level model where up
    /// to `max_concurrent` pipelines each spawn their own morsel scope.
    ///
    /// [`SchedulerKind::Global`]: crate::context::SchedulerKind::Global
    /// [`SchedulerKind::Scoped`]: crate::context::SchedulerKind::Scoped
    pub fn run_dag_with_deps(
        &mut self,
        pipelines: &[PipelinePlan],
        deps: &[crate::scheduler::NodeDeps],
        max_concurrent: usize,
    ) -> Result<crate::scheduler::SchedulerStats> {
        match self.ctx.scheduler {
            // `Stealing` shares the global engine; the engine swaps its
            // shared FIFO for per-worker deques + an injector when it sees
            // `ctx.scheduler == Stealing`.
            crate::context::SchedulerKind::Global | crate::context::SchedulerKind::Stealing => {
                crate::global::run_pipelines_global(
                    pipelines,
                    deps,
                    &self.ctx,
                    &self.res,
                    self.ctx.workers,
                )
            }
            crate::context::SchedulerKind::Scoped => crate::scheduler::run_pipelines_dag_with_deps(
                pipelines,
                deps,
                &self.ctx,
                &self.res,
                max_concurrent,
            ),
        }
    }

    /// Materialized chunks of a buffer (all partitions, partition order).
    pub fn buffer(&self, id: usize) -> Result<Arc<crate::operators::ChunkList>> {
        self.res.buffer(id)
    }

    /// Chunks of one sealed buffer partition.
    pub fn buffer_partition(
        &self,
        id: usize,
        part: usize,
    ) -> Result<Arc<crate::operators::ChunkList>> {
        self.res.buffer_partition(id, part)
    }

    pub fn buffer_rows(&self, id: usize) -> u64 {
        self.res.buffer_rows(id)
    }

    pub fn filter(&self, id: usize) -> Result<Arc<BloomFilter>> {
        self.res.filter(id)
    }

    pub fn hash_table(&self, id: usize) -> Result<Arc<PartitionedHashTable>> {
        self.res.hash_table(id)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use rpt_common::{Field, ScalarValue, Vector};

    fn table(name: &str, ids: Vec<i64>, vals: Vec<i64>) -> Arc<Table> {
        Arc::new(
            Table::new(
                name,
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ]),
                vec![Vector::from_i64(ids), Vector::from_i64(vals)],
            )
            .unwrap(),
        )
    }

    fn collect_pipeline(
        src: SourceSpec,
        ops: Vec<OpSpec>,
        buf_id: usize,
        schema: Schema,
    ) -> PipelinePlan {
        PipelinePlan {
            label: "collect".into(),
            source: src,
            ops,
            sink: SinkSpec::Buffer {
                buf_id,
                blooms: vec![],
            },
            intermediate: false,
            route: RouteMode::Radix,
            sink_schema: schema,
        }
    }

    fn two_col_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Int64),
        ])
    }

    #[test]
    fn scan_filter_collect() {
        let t = table("t", (0..10).collect(), (0..10).map(|x| x * 2).collect());
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 0);
        let p = collect_pipeline(
            SourceSpec::Table(t),
            vec![OpSpec::Filter(Expr::cmp(
                CmpOp::Gt,
                Expr::col(0),
                Expr::lit(ScalarValue::Int64(6)),
            ))],
            0,
            two_col_schema(),
        );
        exec.run(&[p]).unwrap();
        assert_eq!(exec.buffer_rows(0), 3);
        let chunks = exec.buffer(0).unwrap();
        assert_eq!(chunks[0].value(0, 0), ScalarValue::Int64(7));
    }

    #[test]
    fn hash_join_two_pipelines() {
        let build = table("b", vec![1, 2, 3], vec![100, 200, 300]);
        let probe = table("p", vec![2, 2, 3, 9], vec![-1, -2, -3, -4]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 1);
        let p1 = PipelinePlan {
            label: "build".into(),
            source: SourceSpec::Table(build),
            ops: vec![],
            sink: SinkSpec::HashBuild {
                ht_id: 0,
                key_cols: vec![0],
                blooms: vec![],
            },
            intermediate: true,
            route: RouteMode::Radix,
            sink_schema: two_col_schema(),
        };
        let p2 = collect_pipeline(
            SourceSpec::Table(probe),
            vec![OpSpec::JoinProbe {
                ht_id: 0,
                key_cols: vec![0],
                build_output_cols: vec![1],
            }],
            0,
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Int64),
                Field::new("bv", DataType::Int64),
            ]),
        );
        exec.run(&[p1, p2]).unwrap();
        assert_eq!(exec.buffer_rows(0), 3); // 2,2,3 match
        let s = exec.ctx.metrics.summary();
        assert_eq!(s.join_output_rows, 3);
        assert_eq!(s.hash_build_rows, 3);
        assert_eq!(s.intermediate_tuples, 3);
        assert_eq!(s.output_rows, 3);
        // joined values present
        let chunks = exec.buffer(0).unwrap();
        let mut joined: Vec<(i64, i64)> = chunks
            .iter()
            .flat_map(|c| {
                c.rows()
                    .into_iter()
                    .map(|r| (r[0].as_i64().unwrap(), r[2].as_i64().unwrap()))
            })
            .collect();
        joined.sort_unstable();
        assert_eq!(joined, vec![(2, 200), (2, 200), (3, 300)]);
    }

    #[test]
    fn create_and_probe_bloom() {
        let small = table("s", vec![5, 6], vec![0, 0]);
        let big = table("b", (0..100).collect(), (0..100).collect());
        let mut exec = Executor::new(ExecContext::new(), 2, 1, 0);
        // Pipeline 1: CreateBF over `small` on id.
        let p1 = PipelinePlan {
            label: "createbf s".into(),
            source: SourceSpec::Table(small),
            ops: vec![],
            sink: SinkSpec::Buffer {
                buf_id: 0,
                blooms: vec![BloomSink {
                    filter_id: 0,
                    key_cols: vec![0],
                    expected_keys: 2,
                    fpr: 0.02,
                }],
            },
            intermediate: true,
            route: RouteMode::Radix,
            sink_schema: two_col_schema(),
        };
        // Pipeline 2: scan big, ProbeBF, collect.
        let p2 = collect_pipeline(
            SourceSpec::Table(big),
            vec![OpSpec::ProbeBloom {
                filter_id: 0,
                key_cols: vec![0],
            }],
            1,
            two_col_schema(),
        );
        exec.run(&[p1, p2]).unwrap();
        let survivors = exec.buffer_rows(1);
        // No false negatives: both 5 and 6 survive; FPR 2% on 98 others →
        // allow a little slack.
        assert!((2..=8).contains(&survivors), "survivors = {survivors}");
        let s = exec.ctx.metrics.summary();
        assert_eq!(s.bloom_probe_in, 100);
        assert_eq!(s.bloom_build_rows, 2);
        assert!(s.bloom_nanos > 0);
    }

    #[test]
    fn aggregate_pipeline() {
        let t = table("t", vec![1, 1, 2, 2, 2], vec![10, 20, 30, 40, 50]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 0);
        let p = PipelinePlan {
            label: "agg".into(),
            source: SourceSpec::Table(t),
            ops: vec![],
            sink: SinkSpec::Aggregate {
                buf_id: 0,
                group_cols: vec![0],
                aggs: vec![AggExpr {
                    func: crate::expr::AggFunc::Sum,
                    input: Some(Expr::col(1)),
                    alias: "s".into(),
                }],
                input_types: vec![DataType::Int64, DataType::Int64],
                output_schema: Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("s", DataType::Int64),
                ]),
                key_dicts: vec![],
            },
            intermediate: false,
            route: RouteMode::Radix,
            sink_schema: two_col_schema(),
        };
        exec.run(&[p]).unwrap();
        // Chunk layout depends on the partition count; compare row sets.
        let mut rows: Vec<(i64, i64)> = exec
            .buffer(0)
            .unwrap()
            .iter()
            .flat_map(|c| {
                c.rows()
                    .into_iter()
                    .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            })
            .collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![(1, 30), (2, 120)]);
    }

    /// The partitioned aggregate sink produces the same groups as the
    /// unpartitioned path, each group sealed in the partition its key
    /// hashes to, and no merge task covers the full group set.
    #[test]
    fn partitioned_aggregate_matches_unpartitioned() {
        let run = |partitions: usize, threads: usize| {
            let t = table(
                "t",
                (0..5000).map(|i| i % 97).collect(),
                (0..5000).collect(),
            );
            let ctx = ExecContext::new()
                .with_threads(threads)
                .with_partitions(partitions);
            let mut exec = Executor::new(ctx, 1, 0, 0);
            let p = PipelinePlan {
                label: "agg".into(),
                source: SourceSpec::Table(t),
                ops: vec![],
                sink: SinkSpec::Aggregate {
                    buf_id: 0,
                    group_cols: vec![0],
                    aggs: vec![
                        AggExpr {
                            func: crate::expr::AggFunc::Sum,
                            input: Some(Expr::col(1)),
                            alias: "s".into(),
                        },
                        AggExpr::count_star("c"),
                    ],
                    input_types: vec![DataType::Int64, DataType::Int64],
                    output_schema: Schema::new(vec![
                        Field::new("id", DataType::Int64),
                        Field::new("s", DataType::Int64),
                        Field::new("c", DataType::Int64),
                    ]),
                    key_dicts: vec![],
                },
                intermediate: false,
                route: RouteMode::Radix,
                sink_schema: two_col_schema(),
            };
            exec.run(&[p]).unwrap();
            let mut rows: Vec<(i64, i64, i64)> = exec
                .buffer(0)
                .unwrap()
                .iter()
                .flat_map(|c| {
                    c.rows().into_iter().map(|r| {
                        (
                            r[0].as_i64().unwrap(),
                            r[1].as_i64().unwrap(),
                            r[2].as_i64().unwrap(),
                        )
                    })
                })
                .collect();
            rows.sort_unstable();
            (rows, exec)
        };
        let (base, _) = run(1, 1);
        assert_eq!(base.len(), 97);
        for (partitions, threads) in [(2, 1), (8, 1), (8, 4)] {
            let (rows, exec) = run(partitions, threads);
            assert_eq!(rows, base, "partitions={partitions} threads={threads}");
            // Groups sit in the partition their key hashes to.
            let partitioner = rpt_common::Partitioner::new(partitions);
            for p in 0..partitions {
                for chunk in exec.buffer_partition(0, p).unwrap().iter() {
                    for row in chunk.rows() {
                        let key = row[0].as_i64().unwrap();
                        assert_eq!(
                            partitioner.of_hash(rpt_common::hash::hash_i64(key)),
                            p,
                            "group {key} in wrong partition"
                        );
                    }
                }
            }
            // One merge task per partition; none saw all 97 groups.
            let s = exec.ctx.metrics.summary();
            assert_eq!(s.merge_tasks, partitions as u64);
            assert!(
                s.merge_max_task_rows < 97,
                "a merge task covered the full group set: {s:?}"
            );
        }
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let ids: Vec<i64> = (0..20_000).map(|i| i % 97).collect();
        let vals: Vec<i64> = (0..20_000).collect();
        let t1 = table("t", ids.clone(), vals.clone());
        let t4 = table("t", ids, vals);
        let run = |t: Arc<Table>, threads: usize| -> i64 {
            let mut exec = Executor::new(ExecContext::new().with_threads(threads), 1, 0, 0);
            let p = PipelinePlan {
                label: "agg".into(),
                source: SourceSpec::Table(t),
                ops: vec![OpSpec::Filter(Expr::cmp(
                    CmpOp::Lt,
                    Expr::col(0),
                    Expr::lit(ScalarValue::Int64(50)),
                ))],
                sink: SinkSpec::Aggregate {
                    buf_id: 0,
                    group_cols: vec![],
                    aggs: vec![AggExpr {
                        func: crate::expr::AggFunc::Sum,
                        input: Some(Expr::col(1)),
                        alias: "s".into(),
                    }],
                    input_types: vec![DataType::Int64, DataType::Int64],
                    output_schema: Schema::new(vec![Field::new("s", DataType::Int64)]),
                    key_dicts: vec![],
                },
                intermediate: false,
                route: RouteMode::Radix,
                sink_schema: two_col_schema(),
            };
            exec.run(&[p]).unwrap();
            let chunks = exec.buffer(0).unwrap();
            chunks[0].value(0, 0).as_i64().unwrap()
        };
        assert_eq!(run(t1, 1), run(t4, 4));
    }

    /// The partitioned sinks (hash build + collect buffer) produce the same
    /// join result as the unpartitioned path, and every buffer partition
    /// seals independently with only its own rows.
    #[test]
    fn partitioned_pipelines_match_unpartitioned() {
        let run = |partitions: usize, threads: usize| {
            let build = table("b", (0..100).collect(), (0..100).map(|x| x * 10).collect());
            let probe = table("p", (0..300).map(|i| i % 120).collect(), (0..300).collect());
            let ctx = ExecContext::new()
                .with_threads(threads)
                .with_partitions(partitions);
            let mut exec = Executor::new(ctx, 1, 0, 1);
            let p1 = PipelinePlan {
                label: "build".into(),
                source: SourceSpec::Table(build),
                ops: vec![],
                sink: SinkSpec::HashBuild {
                    ht_id: 0,
                    key_cols: vec![0],
                    blooms: vec![],
                },
                intermediate: true,
                route: RouteMode::Radix,
                sink_schema: two_col_schema(),
            };
            let p2 = collect_pipeline(
                SourceSpec::Table(probe),
                vec![OpSpec::JoinProbe {
                    ht_id: 0,
                    key_cols: vec![0],
                    build_output_cols: vec![1],
                }],
                0,
                Schema::new(vec![
                    Field::new("id", DataType::Int64),
                    Field::new("v", DataType::Int64),
                    Field::new("bv", DataType::Int64),
                ]),
            );
            exec.run(&[p1, p2]).unwrap();
            let mut rows: Vec<Vec<ScalarValue>> = exec
                .buffer(0)
                .unwrap()
                .iter()
                .flat_map(|c| c.rows())
                .collect();
            rows.sort_by_key(|r| (r[0].as_i64(), r[1].as_i64(), r[2].as_i64()));
            (rows, exec)
        };
        let (base, _) = run(1, 1);
        for (partitions, threads) in [(2, 1), (8, 1), (8, 4)] {
            let (rows, exec) = run(partitions, threads);
            assert_eq!(rows, base, "partitions={partitions} threads={threads}");
            // The hash table really is partitioned, with all rows present.
            let ht = exec.hash_table(0).unwrap();
            assert_eq!(ht.num_partitions(), partitions);
            assert_eq!(ht.num_rows(), 100);
            // Every partitioned merge recorded tasks; none saw all 250
            // joined rows.
            let s = exec.ctx.metrics.summary();
            assert!(s.merge_tasks >= 2 * partitions as u64, "{s:?}");
            assert!(s.merge_max_task_rows < 250, "{s:?}");
        }
    }

    #[test]
    fn budget_aborts_blowup() {
        // Cross-product-like blowup: every probe row matches every build row.
        let build = table("b", vec![7; 1000], (0..1000).collect());
        let probe = table("p", vec![7; 1000], (0..1000).collect());
        let ctx = ExecContext::new().with_budget(10_000);
        let mut exec = Executor::new(ctx, 1, 0, 1);
        let p1 = PipelinePlan {
            label: "build".into(),
            source: SourceSpec::Table(build),
            ops: vec![],
            sink: SinkSpec::HashBuild {
                ht_id: 0,
                key_cols: vec![0],
                blooms: vec![],
            },
            intermediate: true,
            route: RouteMode::Radix,
            sink_schema: two_col_schema(),
        };
        let p2 = collect_pipeline(
            SourceSpec::Table(probe),
            vec![OpSpec::JoinProbe {
                ht_id: 0,
                key_cols: vec![0],
                build_output_cols: vec![1],
            }],
            0,
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Int64),
                Field::new("bv", DataType::Int64),
            ]),
        );
        let err = exec.run(&[p1, p2]).unwrap_err();
        assert!(err.is_budget(), "expected budget abort, got {err}");
    }

    #[test]
    fn semi_probe_reduces_without_duplication() {
        let source = table("s", vec![1, 1, 2], vec![0, 0, 0]);
        let target = table("t", vec![1, 2, 3, 1], vec![9, 9, 9, 9]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 1);
        let p1 = PipelinePlan {
            label: "build".into(),
            source: SourceSpec::Table(source),
            ops: vec![],
            sink: SinkSpec::HashBuild {
                ht_id: 0,
                key_cols: vec![0],
                blooms: vec![],
            },
            intermediate: true,
            route: RouteMode::Radix,
            sink_schema: two_col_schema(),
        };
        let p2 = collect_pipeline(
            SourceSpec::Table(target),
            vec![OpSpec::SemiProbe {
                ht_id: 0,
                key_cols: vec![0],
            }],
            0,
            two_col_schema(),
        );
        exec.run(&[p1, p2]).unwrap();
        assert_eq!(exec.buffer_rows(0), 3); // rows with keys 1,2,1 (3 excluded)
    }

    #[test]
    fn buffer_as_source_chains_pipelines() {
        let t = table("t", (0..10).collect(), (0..10).collect());
        let mut exec = Executor::new(ExecContext::new(), 2, 0, 0);
        let p1 = collect_pipeline(SourceSpec::Table(t), vec![], 0, two_col_schema());
        let p2 = collect_pipeline(
            SourceSpec::Buffer(0),
            vec![OpSpec::Filter(Expr::cmp(
                CmpOp::Lt,
                Expr::col(0),
                Expr::lit(ScalarValue::Int64(3)),
            ))],
            1,
            two_col_schema(),
        );
        exec.run(&[p1, p2]).unwrap();
        assert_eq!(exec.buffer_rows(1), 3);
    }

    #[test]
    fn spill_enabled_buffer_roundtrips() {
        let dir = std::env::temp_dir().join("rpt_exec_spill_test");
        let t = table("t", (0..5000).collect(), (0..5000).collect());
        let ctx = ExecContext::new().with_spill(1024, &dir); // tiny cap
        let mut exec = Executor::new(ctx, 1, 0, 0);
        let p = collect_pipeline(SourceSpec::Table(t), vec![], 0, two_col_schema());
        exec.run(&[p]).unwrap();
        assert_eq!(exec.buffer_rows(0), 5000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn projection_computes_expressions() {
        let t = table("t", vec![1, 2], vec![10, 20]);
        let mut exec = Executor::new(ExecContext::new(), 1, 0, 0);
        let p = collect_pipeline(
            SourceSpec::Table(t),
            vec![OpSpec::Project(vec![Expr::Arith {
                op: crate::expr::ArithOp::Add,
                left: Box::new(Expr::col(0)),
                right: Box::new(Expr::col(1)),
            }])],
            0,
            Schema::new(vec![Field::new("sum", DataType::Int64)]),
        );
        exec.run(&[p]).unwrap();
        // Chunk layout depends on the partition count; compare row sets.
        let mut sums: Vec<i64> = exec
            .buffer(0)
            .unwrap()
            .iter()
            .flat_map(|c| c.rows().into_iter().map(|r| r[0].as_i64().unwrap()))
            .collect();
        sums.sort_unstable();
        assert_eq!(sums, vec![11, 22]);
    }
}
